#include "mpc/machine.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/csv.hpp"
#include "fault/injector.hpp"
#include "mpc/comm.hpp"
#include "trace/metrics.hpp"
#include "trace/recorder.hpp"

namespace hs::mpc {

// trace::CollectiveOp mirrors SiteKind value-for-value so the machine can
// cast between them when recording; keep both enums in lockstep.
static_assert(trace::kCollectiveOpCount == 9);
static_assert(static_cast<int>(trace::CollectiveOp::Bcast) ==
              static_cast<int>(Machine::SiteKind::Bcast));
static_assert(static_cast<int>(trace::CollectiveOp::Barrier) ==
              static_cast<int>(Machine::SiteKind::Barrier));
static_assert(static_cast<int>(trace::CollectiveOp::Reduce) ==
              static_cast<int>(Machine::SiteKind::Reduce));
static_assert(static_cast<int>(trace::CollectiveOp::Allreduce) ==
              static_cast<int>(Machine::SiteKind::Allreduce));
static_assert(static_cast<int>(trace::CollectiveOp::AllreduceRabenseifner) ==
              static_cast<int>(Machine::SiteKind::AllreduceRabenseifner));
static_assert(static_cast<int>(trace::CollectiveOp::ReduceScatter) ==
              static_cast<int>(Machine::SiteKind::ReduceScatter));
static_assert(static_cast<int>(trace::CollectiveOp::Gather) ==
              static_cast<int>(Machine::SiteKind::Gather));
static_assert(static_cast<int>(trace::CollectiveOp::Scatter) ==
              static_cast<int>(Machine::SiteKind::Scatter));
static_assert(static_cast<int>(trace::CollectiveOp::Allgather) ==
              static_cast<int>(Machine::SiteKind::Allgather));

Machine::Machine(desim::Engine& engine,
                 std::shared_ptr<const net::NetworkModel> net,
                 MachineConfig config)
    : engine_(&engine), net_(std::move(net)), config_(config) {
  HS_REQUIRE(net_ != nullptr);
  HS_REQUIRE(config_.ranks >= 1);
  HS_REQUIRE(config_.gamma_flop >= 0.0);
  HS_REQUIRE_MSG(config_.rank_gamma.empty() ||
                     config_.rank_gamma.size() ==
                         static_cast<std::size_t>(config_.ranks),
                 "rank_gamma needs one multiplier per rank (got "
                     << config_.rank_gamma.size() << " for " << config_.ranks
                     << " ranks)");
  for (double g : config_.rank_gamma)
    HS_REQUIRE_MSG(g > 0.0, "rank_gamma multipliers must be > 0, got " << g);
  hockney_ = dynamic_cast<const net::HockneyModel*>(net_.get());
  HS_REQUIRE_MSG(
      config_.collective_mode != CollectiveMode::ClosedForm || hockney_,
      "ClosedForm collectives require a homogeneous HockneyModel network; "
      "use PointToPoint mode with topology-aware models");
  const std::size_t page_count =
      (static_cast<std::size_t>(config_.ranks) +
       static_cast<std::size_t>(kRankPageSize) - 1) /
      static_cast<std::size_t>(kRankPageSize);
  pages_.resize(page_count);
  if (config_.eager_rank_state)
    for (auto& page : pages_) materialize_page(page);
  // Context 0 is the world communicator.
  std::vector<int> world_members(static_cast<std::size_t>(config_.ranks));
  for (int r = 0; r < config_.ranks; ++r)
    world_members[static_cast<std::size_t>(r)] = r;
  context_for(world_members);
}

double Machine::alpha() const {
  HS_REQUIRE_MSG(hockney_, "alpha() requires a HockneyModel network");
  return hockney_->alpha();
}

double Machine::beta() const {
  HS_REQUIRE_MSG(hockney_, "beta() requires a HockneyModel network");
  return hockney_->beta();
}

Comm Machine::world(int self) {
  HS_REQUIRE(self >= 0 && self < config_.ranks);
  return Comm(this, /*ctx=*/0, /*rank=*/self);
}

void Machine::materialize_page(std::unique_ptr<RankPage>& page) {
  page = std::make_unique<RankPage>();
  ++pages_materialized_;
}

double Machine::commit_transfer(int src, int dst, int ctx, int tag,
                                double send_post, double recv_post,
                                ConstBuf send_buf, Buf recv_buf) {
  HS_REQUIRE_MSG(send_buf.count() == recv_buf.count(),
                 "send/recv size mismatch: " << send_buf.count() << " vs "
                                             << recv_buf.count()
                                             << " elements (src=" << src
                                             << " dst=" << dst << ")");
  HS_REQUIRE_MSG(send_buf.is_real() == recv_buf.is_real(),
                 "mixing real and phantom payloads in one transfer");
  auto& src_port = rank_state(src).port;
  auto& dst_port = rank_state(dst).port;
  const double start = std::max({send_post, recv_post, src_port.send_free,
                                 dst_port.recv_free});
  const double base_time = net_->transfer_time(src, dst, send_buf.bytes());
  double wire_time = base_time;
  if (fault_ != nullptr && fault_->active()) {
    // The injector replaces the analytic wire time with the full faulty
    // timeline (degradation, slowdown stretching, drop/backoff retries);
    // the ports stay occupied for all of it, so faults feed back into
    // single-port serialization like any other long transfer.
    wire_time = fault_
                    ->transfer(src, dst, send_buf.bytes(), start,
                               net_->transfer_time(src, dst, 0), base_time)
                    .elapsed;
  }
  const double completion = start + wire_time;
  src_port.send_free = completion;
  dst_port.recv_free = completion;
  src_port.send_busy += completion - start;
  dst_port.recv_busy += completion - start;
  if (send_buf.is_real() && send_buf.count() > 0)
    std::memcpy(recv_buf.data(), send_buf.data(),
                send_buf.count() * sizeof(double));
  ++messages_;
  bytes_ += send_buf.bytes();
  transfer_latency_s_.add(completion - start);
  if (transfer_log_ != nullptr)
    transfer_log_->record(
        {start, completion, src, dst, send_buf.bytes(), ctx, tag});
  if (recorder_ != nullptr)
    recorder_->add_transfer(
        {start, completion, src, dst, send_buf.bytes(), ctx, tag});
  return completion;
}

void TransferLog::write_csv(std::ostream& out) const {
  CsvWriter csv(out);
  csv.header({"start", "end", "src", "dst", "bytes", "ctx", "tag"});
  for (const auto& record : records_)
    csv.row(record.start, record.end, record.src, record.dst,
            static_cast<long long>(record.bytes), record.ctx, record.tag);
}

bool Machine::post_send(int src, int dst, int ctx, int tag, ConstBuf buf,
                        desim::Gate* gate, DeadlinePending* deadline) {
  HS_REQUIRE(src >= 0 && src < config_.ranks);
  HS_REQUIRE(dst >= 0 && dst < config_.ranks);
  HS_REQUIRE_MSG(src != dst, "self-messages are not modeled; restructure the "
                             "algorithm to skip local transfers");
  RankState& receiver = rank_state(dst);
  if (PendingOp* match = receiver.pending_recvs.find(src, ctx, tag)) {
    const PendingOp recv = *match;
    receiver.pending_recvs.remove(match);
    if (recv.deadline != nullptr) {
      recv.deadline->matched = true;
      engine_->cancel_timer(recv.deadline->timer);
    }
    if (deadline != nullptr) deadline->matched = true;
    Buf recv_buf = recv.data != nullptr
                       ? Buf(std::span<double>(const_cast<double*>(recv.data),
                                               recv.count))
                       : Buf::phantom(recv.count);
    const double completion = commit_transfer(
        src, dst, ctx, tag, engine_->now(), recv.post_time, buf, recv_buf);
    recv.gate->fire_at(completion);
    gate->fire_at(completion);
    return true;
  }
  receiver.pending_sends.push(
      {engine_->now(), buf.data(), buf.count(), gate, deadline, src, ctx, tag});
  return false;
}

bool Machine::post_recv(int src, int dst, int ctx, int tag, Buf buf,
                        desim::Gate* gate, DeadlinePending* deadline) {
  HS_REQUIRE(src >= 0 && src < config_.ranks);
  HS_REQUIRE(dst >= 0 && dst < config_.ranks);
  HS_REQUIRE_MSG(src != dst, "self-messages are not modeled; restructure the "
                             "algorithm to skip local transfers");
  RankState& receiver = rank_state(dst);
  if (PendingOp* match = receiver.pending_sends.find(src, ctx, tag)) {
    const PendingOp send = *match;
    receiver.pending_sends.remove(match);
    if (send.deadline != nullptr) {
      send.deadline->matched = true;
      engine_->cancel_timer(send.deadline->timer);
    }
    if (deadline != nullptr) deadline->matched = true;
    ConstBuf send_buf =
        send.data != nullptr
            ? ConstBuf(std::span<const double>(send.data, send.count))
            : ConstBuf::phantom(send.count);
    const double completion = commit_transfer(
        src, dst, ctx, tag, send.post_time, engine_->now(), send_buf, buf);
    send.gate->fire_at(completion);
    gate->fire_at(completion);
    return true;
  }
  receiver.pending_recvs.push(
      {engine_->now(), buf.data(), buf.count(), gate, deadline, src, ctx, tag});
  return false;
}

Request Machine::isend(int src, int dst, int ctx, int tag, ConstBuf buf) {
  Request request(*engine_);
  post_send(src, dst, ctx, tag, buf, request.gate(), nullptr);
  return request;
}

Request Machine::irecv(int src, int dst, int ctx, int tag, Buf buf) {
  Request request(*engine_);
  post_recv(src, dst, ctx, tag, buf, request.gate(), nullptr);
  return request;
}

void Machine::withdraw(int dst, bool is_send, const DeadlinePending* state) {
  RankState& receiver = rank_state(dst);
  OpList& list = is_send ? receiver.pending_sends : receiver.pending_recvs;
  PendingOp* op = list.find_deadline(state);
  HS_ASSERT(op != nullptr && "withdraw: expired op not found in its list");
  list.remove(op);
}

desim::Task<bool> Machine::send_before(int src, int dst, int ctx, int tag,
                                       ConstBuf buf, double deadline) {
  HS_REQUIRE_MSG(deadline >= engine_->now(), "send_before deadline is in "
                                             "the past");
  Request request(*engine_);
  DeadlinePending state;
  if (!post_send(src, dst, ctx, tag, buf, request.gate(), &state)) {
    co_await deadline_race(request.gate(), deadline, &state);
    if (!state.matched) {
      withdraw(dst, /*is_send=*/true, &state);
      ++timeouts_;
      if (fault_ != nullptr) fault_->note_timeout(src, dst, engine_->now());
      co_return false;
    }
  }
  co_await request.wait();
  co_return true;
}

desim::Task<bool> Machine::recv_before(int src, int dst, int ctx, int tag,
                                       Buf buf, double deadline) {
  HS_REQUIRE_MSG(deadline >= engine_->now(), "recv_before deadline is in "
                                             "the past");
  Request request(*engine_);
  DeadlinePending state;
  if (!post_recv(src, dst, ctx, tag, buf, request.gate(), &state)) {
    co_await deadline_race(request.gate(), deadline, &state);
    if (!state.matched) {
      withdraw(dst, /*is_send=*/false, &state);
      ++timeouts_;
      if (fault_ != nullptr) fault_->note_timeout(dst, src, engine_->now());
      co_return false;
    }
  }
  co_await request.wait();
  co_return true;
}

double Machine::compute_duration(int rank, double base) const {
  HS_REQUIRE(rank >= 0 && rank < config_.ranks);
  if (!config_.rank_gamma.empty())
    base *= config_.rank_gamma[static_cast<std::size_t>(rank)];
  if (fault_ == nullptr || !fault_->active()) return base;
  return fault_->compute_seconds(rank, engine_->now(), base);
}

int Machine::context_for(const std::vector<int>& world_members) {
  HS_REQUIRE(!world_members.empty());
  for (int member : world_members)
    HS_REQUIRE(member >= 0 && member < config_.ranks);
  auto [it, inserted] =
      context_ids_.try_emplace(world_members, static_cast<int>(contexts_.size()));
  if (inserted) {
    Context ctx;
    ctx.members = world_members;
    ctx.op_seq.assign(world_members.size(), 0);
    contexts_.push_back(std::move(ctx));
  }
  return it->second;
}

const std::vector<int>& Machine::context_members(int ctx) const {
  HS_REQUIRE(ctx >= 0 && ctx < static_cast<int>(contexts_.size()));
  return contexts_[static_cast<std::size_t>(ctx)].members;
}

std::uint64_t Machine::next_collective_seq(int ctx, int member_index) {
  auto& context = contexts_[static_cast<std::size_t>(ctx)];
  HS_REQUIRE(member_index >= 0 &&
             member_index < static_cast<int>(context.members.size()));
  return context.op_seq[static_cast<std::size_t>(member_index)]++;
}

ScratchArena& Machine::scratch_arena(int ctx) {
  HS_REQUIRE(ctx >= 0 && ctx < static_cast<int>(contexts_.size()));
  return *contexts_[static_cast<std::size_t>(ctx)].arena;
}

Machine::Site& Machine::site_for(int ctx, std::uint64_t seq, SiteKind kind,
                                 int expected) {
  const std::uint64_t key = (static_cast<std::uint64_t>(ctx) << 40) | seq;
  Site& site = sites_[key];
  if (site.expected == 0) {
    site.kind = kind;
    site.expected = expected;
    site.participants.reserve(static_cast<std::size_t>(expected));
  }
  HS_REQUIRE_MSG(site.kind == kind,
                 "collective mismatch: ranks issued different collectives at "
                 "the same sequence point");
  site.max_entry = std::max(site.max_entry, engine_->now());
  return site;
}

void Machine::complete_site(int ctx, std::uint64_t key, Site& site) {
  double duration = 0.0;
  const int p = site.expected;
  const std::uint64_t total_bytes =
      site.bytes * static_cast<std::uint64_t>(p);
  switch (site.kind) {
    case SiteKind::Bcast:
      duration = net::bcast_time(site.algo, p, site.bytes, alpha(), beta());
      break;
    case SiteKind::Barrier:
      duration = net::barrier_time(p, alpha());
      break;
    case SiteKind::Reduce:
      duration = net::reduce_time(p, site.bytes, alpha(), beta());
      break;
    case SiteKind::Allreduce:
      duration = net::allreduce_time(p, site.bytes, alpha(), beta());
      break;
    case SiteKind::AllreduceRabenseifner:
      duration =
          net::allreduce_rabenseifner_time(p, site.bytes, alpha(), beta());
      break;
    case SiteKind::ReduceScatter:
      duration = net::reduce_scatter_time(p, site.bytes, alpha(), beta());
      break;
    case SiteKind::Gather:
      duration = net::gather_time(p, total_bytes, alpha(), beta());
      break;
    case SiteKind::Scatter:
      duration = net::scatter_time(p, total_bytes, alpha(), beta());
      break;
    case SiteKind::Allgather:
      duration = net::allgather_time(p, total_bytes, alpha(), beta());
      break;
  }
  const double completion = site.max_entry + duration;
  deliver_site_payloads(ctx, site);
  // Wire-accounting convention: a closed-form collective charges
  // (p-1) * per-member-bytes — one full payload per non-root member, i.e.
  // exactly what a binomial tree moves for bcast/reduce and what the
  // chunked collectives (gather/scatter/allgather with per-member chunks)
  // move in total. Bandwidth-saving algorithms (scatter+allgather bcast,
  // Rabenseifner) really move a different volume; the convention trades
  // that fidelity for counters that stay comparable between PointToPoint
  // and ClosedForm runs of the same program (locked by
  // tests/mpc/test_closed_form.cpp). See DESIGN.md "Observability".
  const std::uint64_t wire_bytes =
      site.bytes * static_cast<std::uint64_t>(p > 1 ? p - 1 : 0);
  messages_ += static_cast<std::uint64_t>(p > 1 ? p - 1 : 0);
  bytes_ += wire_bytes;
  if (transfer_log_ != nullptr || recorder_ != nullptr) {
    // Synthetic visibility record for the whole site (there are no real
    // per-message transfers to log in this mode). Root is reported as a
    // world rank; rootless collectives use -1.
    const auto& members = contexts_[static_cast<std::size_t>(ctx)].members;
    const int root_world =
        site.root_index >= 0 &&
                site.root_index < static_cast<int>(members.size())
            ? members[static_cast<std::size_t>(site.root_index)]
            : -1;
    const std::uint64_t seq = key & ((std::uint64_t{1} << 40) - 1);
    if (transfer_log_ != nullptr)
      transfer_log_->record({site.max_entry, completion, root_world, -1,
                             wire_bytes, ctx,
                             -(static_cast<int>(site.kind) + 1)});
    if (recorder_ != nullptr)
      recorder_->add_site({site.max_entry, completion,
                           static_cast<trace::CollectiveOp>(site.kind), ctx,
                           seq, root_world, wire_bytes, p});
  }
  for (auto& participant : site.participants)
    participant.gate->fire_at(completion);
  sites_.erase(key);
}

void Machine::note_collective(SiteKind kind, int algo_index,
                              std::uint64_t bytes) noexcept {
  const auto k = static_cast<std::size_t>(kind);
  ++collective_calls_[k];
  collective_bytes_[k] += bytes;
  if (algo_index >= 0 && algo_index < kBcastAlgos)
    ++bcast_algo_calls_[static_cast<std::size_t>(algo_index)];
}

void Machine::collect_metrics(trace::MetricsRegistry& metrics) const {
  metrics.add_counter("mpc.messages", messages_);
  metrics.add_counter("mpc.wire_bytes", bytes_);
  if (!transfer_latency_s_.empty())
    metrics.histogram("mpc.transfer.latency_s").merge(transfer_latency_s_);
  if (timeouts_ > 0) metrics.add_counter("mpc.timeouts", timeouts_);
  if (fault_ != nullptr && fault_->active()) fault_->collect_metrics(metrics);
  for (int k = 0; k < kSiteKinds; ++k) {
    const auto index = static_cast<std::size_t>(k);
    if (collective_calls_[index] == 0) continue;
    const std::string name(
        trace::to_string(static_cast<trace::CollectiveOp>(k)));
    metrics.add_counter("mpc.collective." + name + ".calls",
                        collective_calls_[index]);
    metrics.add_counter("mpc.collective." + name + ".bytes",
                        collective_bytes_[index]);
  }
  for (int a = 0; a < kBcastAlgos; ++a) {
    const auto index = static_cast<std::size_t>(a);
    if (bcast_algo_calls_[index] == 0) continue;
    const std::string name(net::to_string(static_cast<net::BcastAlgo>(a)));
    metrics.add_counter("mpc.bcast_algo." + name + ".calls",
                        bcast_algo_calls_[index]);
  }
  double send_max = 0.0;
  double recv_max = 0.0;
  double send_total = 0.0;
  double recv_total = 0.0;
  // Unmaterialized pages are ranks that never touched the network: zero
  // busy time by construction, so skipping them leaves the gauges exact.
  for (const auto& page : pages_) {
    if (page == nullptr) continue;
    for (const RankState& rank : page->ranks) {
      send_max = std::max(send_max, rank.port.send_busy);
      recv_max = std::max(recv_max, rank.port.recv_busy);
      send_total += rank.port.send_busy;
      recv_total += rank.port.recv_busy;
    }
  }
  metrics.set_gauge("mpc.port.send_busy_max_s", send_max);
  metrics.set_gauge("mpc.port.recv_busy_max_s", recv_max);
  metrics.set_gauge("mpc.port.send_busy_total_s", send_total);
  metrics.set_gauge("mpc.port.recv_busy_total_s", recv_total);
}

void Machine::deliver_site_payloads(int ctx, Site& site) {
  switch (site.kind) {
    case SiteKind::Barrier:
      return;
    case SiteKind::Bcast: {
      if (!site.root_buf.is_real() || site.root_buf.count() == 0) return;
      for (auto& participant : site.participants) {
        Buf& buf = participant.recv;
        if (buf.data() != nullptr && buf.data() != site.root_buf.data())
          std::memcpy(buf.data(), site.root_buf.data(),
                      site.root_buf.count() * sizeof(double));
      }
      return;
    }
    case SiteKind::Reduce:
    case SiteKind::Allreduce:
    case SiteKind::AllreduceRabenseifner:
    case SiteKind::ReduceScatter: {
      // Sum all real contributions; deliver to the root (Reduce), to every
      // member (Allreduce), or chunk-wise (ReduceScatter). Phantom sites
      // must stay allocation-free, so scan for real contributions *before*
      // touching the accumulator.
      const std::size_t count = site.participants.empty()
                                    ? 0
                                    : site.participants.front().send.count();
      if (count == 0) return;
      bool any_real = false;
      for (const auto& participant : site.participants)
        if (participant.send.is_real() && participant.send.data() != nullptr) {
          any_real = true;
          break;
        }
      if (!any_real) return;
      ScratchArena::Lease sum_lease = scratch_arena(ctx).acquire(count);
      double* sum = sum_lease.data();
      std::fill_n(sum, count, 0.0);
      for (auto& participant : site.participants) {
        if (!participant.send.is_real() || participant.send.data() == nullptr)
          continue;
        const double* src = participant.send.data();
        for (std::size_t i = 0; i < count; ++i) sum[i] += src[i];
      }
      if (site.kind == SiteKind::ReduceScatter) {
        const std::size_t chunk =
            count / static_cast<std::size_t>(site.expected);
        for (auto& participant : site.participants) {
          if (participant.recv.data() == nullptr) continue;
          std::memcpy(participant.recv.data(),
                      sum + static_cast<std::size_t>(participant.member_index) *
                                chunk,
                      chunk * sizeof(double));
        }
        return;
      }
      for (auto& participant : site.participants) {
        const bool wants_result =
            site.kind != SiteKind::Reduce ||
            participant.member_index == site.root_index;
        if (wants_result && participant.recv.data() != nullptr)
          std::memcpy(participant.recv.data(), sum, count * sizeof(double));
      }
      return;
    }
    case SiteKind::Gather: {
      // Root's recv gets chunk j at offset j*chunk.
      Site::Participant* root = nullptr;
      for (auto& participant : site.participants)
        if (participant.member_index == site.root_index) root = &participant;
      if (root == nullptr || root->recv.data() == nullptr) return;
      for (auto& participant : site.participants) {
        if (participant.send.data() == nullptr) continue;
        const std::size_t chunk = participant.send.count();
        std::memcpy(root->recv.data() +
                        static_cast<std::size_t>(participant.member_index) *
                            chunk,
                    participant.send.data(), chunk * sizeof(double));
      }
      return;
    }
    case SiteKind::Scatter: {
      Site::Participant* root = nullptr;
      for (auto& participant : site.participants)
        if (participant.member_index == site.root_index) root = &participant;
      if (root == nullptr || root->send.data() == nullptr) return;
      for (auto& participant : site.participants) {
        if (participant.recv.data() == nullptr) continue;
        const std::size_t chunk = participant.recv.count();
        std::memcpy(participant.recv.data(),
                    root->send.data() +
                        static_cast<std::size_t>(participant.member_index) *
                            chunk,
                    chunk * sizeof(double));
      }
      return;
    }
    case SiteKind::Allgather: {
      for (auto& receiver : site.participants) {
        if (receiver.recv.data() == nullptr) continue;
        for (auto& sender : site.participants) {
          if (sender.send.data() == nullptr) continue;
          const std::size_t chunk = sender.send.count();
          std::memcpy(receiver.recv.data() +
                          static_cast<std::size_t>(sender.member_index) *
                              chunk,
                      sender.send.data(), chunk * sizeof(double));
        }
      }
      return;
    }
  }
}

void Machine::join_bcast(int ctx, std::uint64_t seq, desim::Gate* gate,
                         int root_index, ConstBuf send_view, Buf recv_view,
                         net::BcastAlgo algo) {
  auto& context = contexts_[static_cast<std::size_t>(ctx)];
  Site& site = site_for(ctx, seq, SiteKind::Bcast,
                        static_cast<int>(context.members.size()));
  site.root_index = root_index;
  site.algo = algo;
  // The root is the participant carrying the send view (non-roots pass an
  // empty ConstBuf).
  if (send_view.data() != nullptr || send_view.count() > 0) {
    site.root_buf = send_view;
    site.bytes = send_view.bytes();
  }
  site.participants.push_back({gate, -1, ConstBuf{}, recv_view});
  ++site.arrived;
  if (site.arrived == site.expected) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(ctx) << 40) | seq;
    complete_site(ctx, key, site);
  }
}

void Machine::join_barrier(int ctx, std::uint64_t seq, desim::Gate* gate) {
  auto& context = contexts_[static_cast<std::size_t>(ctx)];
  Site& site = site_for(ctx, seq, SiteKind::Barrier,
                        static_cast<int>(context.members.size()));
  site.participants.push_back({gate, -1, ConstBuf{}, Buf{}});
  ++site.arrived;
  if (site.arrived == site.expected) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(ctx) << 40) | seq;
    complete_site(ctx, key, site);
  }
}

void Machine::join_data_collective(SiteKind kind, int ctx, std::uint64_t seq,
                                   desim::Gate* gate, int member_index,
                                   int root_index, ConstBuf send_view,
                                   Buf recv_view) {
  auto& context = contexts_[static_cast<std::size_t>(ctx)];
  Site& site = site_for(ctx, seq, kind,
                        static_cast<int>(context.members.size()));
  site.root_index = root_index;
  // Per-member payload size: the contribution size for reduce-family and
  // gather/allgather, the received chunk for scatter.
  const std::uint64_t member_bytes =
      kind == SiteKind::Scatter ? recv_view.bytes() : send_view.bytes();
  site.bytes = std::max(site.bytes, member_bytes);
  site.participants.push_back({gate, member_index, send_view, recv_view});
  ++site.arrived;
  if (site.arrived == site.expected) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(ctx) << 40) | seq;
    complete_site(ctx, key, site);
  }
}

}  // namespace hs::mpc
