// Collective operations, implemented on top of point-to-point transfers.
//
// Broadcast offers the algorithm menu the paper discusses (Section II-B):
// flat tree, binomial tree, van de Geijn scatter + ring allgather,
// scatter + recursive-doubling allgather, pipelined chain, and an
// MPICH-style automatic dispatch on (message size, rank count). On a flat
// Hockney network with power-of-two rank counts, each implementation's
// simulated completion time matches the closed forms in net/bcast_cost.hpp
// (asserted by tests), which is what lets CollectiveMode::ClosedForm charge
// the formula instead of routing O(p) messages at BlueGene/P scale.
//
// All collectives follow MPI ordering rules: every member of the
// communicator must call the same collectives in the same order. Payloads
// may be phantom (see buffer.hpp).
#pragma once

#include <optional>

#include "desim/task.hpp"
#include "mpc/comm.hpp"
#include "net/bcast_cost.hpp"

namespace hs::mpc {

/// Broadcast `buf` (root's contents to everyone). `algo` defaults to the
/// machine's configured broadcast algorithm.
desim::Task<void> bcast(Comm comm, int root, Buf buf,
                        std::optional<net::BcastAlgo> algo = std::nullopt);

/// Element-wise sum reduction to `root`. `recv` is significant only at the
/// root and may alias `send` there.
desim::Task<void> reduce(Comm comm, int root, ConstBuf send, Buf recv);

enum class AllreduceAlgo {
  ReduceBcast,   // binomial reduce + binomial broadcast (latency-friendly)
  Rabenseifner,  // recursive-halving reduce-scatter + recursive-doubling
                 // allgather: bandwidth-optimal (power-of-two ranks; other
                 // counts fall back to ReduceBcast)
};

/// Element-wise sum to everyone; `recv` significant everywhere.
desim::Task<void> allreduce(Comm comm, ConstBuf send, Buf recv,
                            AllreduceAlgo algo = AllreduceAlgo::ReduceBcast);

/// Recursive-halving reduce-scatter: rank r receives elements
/// [r*chunk, (r+1)*chunk) of the element-wise sum, chunk = send.count() /
/// size. Requires size | send.count(); power-of-two ranks take the
/// recursive-halving path, others reduce-then-scatter.
desim::Task<void> reduce_scatter(Comm comm, ConstBuf send, Buf recv_chunk);

/// Binomial-tree gather: rank r's `send` lands at recv_all[r*send.count()].
/// All ranks must pass equally sized `send`; `recv_all` significant at root
/// with count == size * send.count().
desim::Task<void> gather(Comm comm, int root, ConstBuf send, Buf recv_all);

/// Inverse of gather (binomial scatter of equal chunks).
desim::Task<void> scatter(Comm comm, int root, ConstBuf send_all, Buf recv);

/// Ring allgather: every rank ends with all contributions, in rank order.
desim::Task<void> allgather(Comm comm, ConstBuf send, Buf recv_all);

/// Dissemination barrier.
desim::Task<void> barrier(Comm comm);

}  // namespace hs::mpc
