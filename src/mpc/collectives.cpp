#include "mpc/collectives.hpp"

#include <cstring>
#include <vector>

#include "trace/recorder.hpp"

namespace hs::mpc {

namespace {

// Identity fields for a collective's trace span (start/end are stamped by
// the guard). Only called when a recorder is attached.
trace::CollectiveSpan span_for(const Comm& comm, trace::CollectiveOp op,
                               std::uint64_t seq, int root_comm_rank,
                               std::uint64_t bytes, int algo,
                               bool closed_form) {
  trace::CollectiveSpan span;
  span.rank = comm.my_world_rank();
  span.op = op;
  span.algo = algo;
  span.ctx = comm.context();
  span.seq = seq;
  span.root = root_comm_rank >= 0 ? comm.world_rank(root_comm_rank) : -1;
  span.bytes = bytes;
  span.closed_form = closed_form;
  return span;
}

// Reserved (negative) tag space for collective-internal traffic. Every
// collective call consumes one sequence number per communicator (see
// Machine::next_collective_seq) and derives its tags from (phase kind,
// sequence), so two collectives in flight concurrently on one communicator
// (communication/computation overlap) can never cross-match. Within one
// collective, per-pair FIFO matching keeps multi-round phases ordered.
enum CollectivePhase : int {
  kPhaseBcast = 0,
  kPhaseScatter = 1,
  kPhaseAllgather = 2,
  kPhaseReduce = 3,
  kPhaseGather = 4,
  kPhaseBarrier = 5,
  kPhaseReduceScatter = 6,
};

int collective_tag(CollectivePhase phase, std::uint64_t seq) {
  constexpr std::uint64_t kSeqSpace = 1u << 26;
  return -static_cast<int>(1 + static_cast<std::uint64_t>(phase) +
                           16 * (seq % kSeqSpace));
}

// Blocking one-shot transfers inside collectives use comm.send_op/recv_op
// (TransferOp awaiters): same rendezvous semantics and event schedule as
// the old isend+wait helper coroutines, but the gate lives in the awaiting
// collective's frame — no child coroutine and no Request allocation per
// tree edge, which is most of what a 2^20-rank broadcast does.

bool is_power_of_two(int p) { return p > 0 && (p & (p - 1)) == 0; }

// Chunk layout for scatter/allgather phases: `count` elements split into
// `p` nearly equal chunks (first count%p chunks get one extra element).
struct Chunks {
  std::size_t count;
  int p;
  std::size_t offset(int chunk) const {
    const auto c = static_cast<std::size_t>(chunk);
    const std::size_t base = count / static_cast<std::size_t>(p);
    const std::size_t rem = count % static_cast<std::size_t>(p);
    return c * base + std::min(c, rem);
  }
  std::size_t size(int chunk) const {
    return offset(chunk + 1) - offset(chunk);
  }
  // Element range covering chunks [a, b).
  std::size_t range_offset(int a) const { return offset(a); }
  std::size_t range_size(int a, int b) const { return offset(b) - offset(a); }
};

// ---------------------------------------------------------------------
// Broadcast algorithm implementations. All work in root-relative ranks:
// rel = (rank - root + p) % p, so the tree is rooted at relative 0.
// ---------------------------------------------------------------------

desim::Task<void> bcast_flat(Comm comm, int root, Buf buf, int tag) {
  const int p = comm.size();
  if (comm.rank() == root) {
    for (int r = 0; r < p; ++r)
      if (r != root) co_await comm.send_op(r, buf, tag);
  } else {
    co_await comm.recv_op(root, buf, tag);
  }
}

// Recursive-halving scatter of `buf`'s chunk ranges (used by the van de
// Geijn variants). On return, relative rank r holds chunk r in place.
desim::Task<void> scatter_ranges(Comm comm, int root, Buf buf,
                                 const Chunks& chunks, int tag) {
  const int p = comm.size();
  const int rel = (comm.rank() - root + p) % p;
  auto abs_rank = [&](int r) { return (r + root) % p; };

  int lo = 0, hi = p;
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo + 1) / 2;  // left half gets the ceiling
    const std::size_t off = chunks.range_offset(mid);
    const std::size_t len = chunks.range_size(mid, hi);
    if (rel < mid) {
      if (rel == lo && len > 0)
        co_await comm.send_op(abs_rank(mid), buf.slice(off, len), tag);
      hi = mid;
    } else {
      if (rel == mid && len > 0)
        co_await comm.recv_op(abs_rank(lo), buf.slice(off, len), tag);
      lo = mid;
    }
  }
}

// Ring allgather of the chunk layout: after p-1 rounds every relative rank
// holds all chunks. Chunk c travels around the relative ring.
desim::Task<void> allgather_ring_ranges(Comm comm, int root, Buf buf,
                                        const Chunks& chunks, int tag) {
  const int p = comm.size();
  const int rel = (comm.rank() - root + p) % p;
  auto abs_rank = [&](int r) { return (r + root) % p; };
  const int right = abs_rank((rel + 1) % p);
  const int left = abs_rank((rel - 1 + p) % p);

  for (int round = 0; round < p - 1; ++round) {
    const int send_chunk = ((rel - round) % p + p) % p;
    const int recv_chunk = ((rel - round - 1) % p + p) % p;
    PostedOp send_op = comm.send_posted(
        right, buf.slice(chunks.offset(send_chunk), chunks.size(send_chunk)),
        tag);
    PostedOp recv_op = comm.recv_posted(
        left, buf.slice(chunks.offset(recv_chunk), chunks.size(recv_chunk)),
        tag);
    co_await send_op.wait();
    co_await recv_op.wait();
  }
}

// Recursive-doubling allgather (power-of-two rank counts): round k
// exchanges aligned blocks of 2^k chunks with partner rel ^ 2^k.
desim::Task<void> allgather_recdbl_ranges(Comm comm, int root, Buf buf,
                                          const Chunks& chunks, int tag) {
  const int p = comm.size();
  const int rel = (comm.rank() - root + p) % p;
  auto abs_rank = [&](int r) { return (r + root) % p; };

  for (int mask = 1; mask < p; mask <<= 1) {
    const int partner = rel ^ mask;
    const int my_base = rel & ~(mask - 1);
    const int partner_base = my_base ^ mask;
    PostedOp send_op = comm.send_posted(
        abs_rank(partner),
        buf.slice(chunks.range_offset(my_base),
                  chunks.range_size(my_base, my_base + mask)),
        tag);
    PostedOp recv_op = comm.recv_posted(
        abs_rank(partner),
        buf.slice(chunks.range_offset(partner_base),
                  chunks.range_size(partner_base, partner_base + mask)),
        tag);
    co_await send_op.wait();
    co_await recv_op.wait();
  }
}

desim::Task<void> bcast_scatter_allgather(Comm comm, int root, Buf buf,
                                          bool ring, std::uint64_t seq) {
  const Chunks chunks{buf.count(), comm.size()};
  co_await scatter_ranges(comm, root, buf, chunks,
                          collective_tag(kPhaseScatter, seq));
  const int allgather_tag = collective_tag(kPhaseAllgather, seq);
  if (ring)
    co_await allgather_ring_ranges(comm, root, buf, chunks, allgather_tag);
  else
    co_await allgather_recdbl_ranges(comm, root, buf, chunks, allgather_tag);
}

desim::Task<void> bcast_pipelined(Comm comm, int root, Buf buf, int tag) {
  const int p = comm.size();
  const int rel = (comm.rank() - root + p) % p;
  auto abs_rank = [&](int r) { return (r + root) % p; };

  const std::uint64_t bytes = buf.bytes();
  const std::uint64_t segments =
      bytes == 0 ? 1
                 : (bytes + net::kPipelineSegmentBytes - 1) /
                       net::kPipelineSegmentBytes;
  const std::size_t seg_elems =
      (buf.count() + static_cast<std::size_t>(segments) - 1) /
      static_cast<std::size_t>(segments);

  auto segment = [&](std::uint64_t k) {
    const std::size_t off = static_cast<std::size_t>(k) * seg_elems;
    const std::size_t len = std::min(seg_elems, buf.count() - off);
    return buf.slice(off, len);
  };

  const bool has_right = rel + 1 < p;
  if (rel == 0) {
    for (std::uint64_t k = 0; k < segments; ++k)
      co_await comm.send_op(abs_rank(1), segment(k), tag);
    co_return;
  }
  // Interior/last rank: receive segment k+1 while forwarding segment k.
  // The overlapped next-segment receive keeps a movable Request (PostedOp
  // is pinned and this one is conditional); the pipeline algorithm is off
  // the scale-frontier path.
  co_await comm.recv_op(abs_rank(rel - 1), segment(0), tag);
  for (std::uint64_t k = 0; k < segments; ++k) {
    Request next_recv;
    if (k + 1 < segments)
      next_recv = comm.irecv_internal(abs_rank(rel - 1), segment(k + 1), tag);
    if (has_right) co_await comm.send_op(abs_rank(rel + 1), segment(k), tag);
    if (next_recv.valid()) co_await next_recv.wait();
  }
}

}  // namespace

desim::Task<void> bcast(Comm comm, int root, Buf buf,
                        std::optional<net::BcastAlgo> algo_opt) {
  const int p = comm.size();
  HS_REQUIRE(root >= 0 && root < p);
  if (p == 1) co_return;
  Machine& machine = comm.machine();
  net::BcastAlgo algo = algo_opt.value_or(machine.config().bcast_algo);
  const std::uint64_t seq =
      machine.next_collective_seq(comm.context(), comm.rank());
  const bool closed_form =
      machine.config().collective_mode == CollectiveMode::ClosedForm;
  const net::BcastAlgo resolved = net::resolve_auto(algo, p, buf.bytes());
  machine.note_collective(Machine::SiteKind::Bcast,
                          static_cast<int>(resolved), buf.bytes());
  trace::Recorder* recorder = machine.recorder();
  trace::CollectiveSpanGuard trace_guard(
      recorder, comm.engine(),
      recorder ? span_for(comm, trace::CollectiveOp::Bcast, seq, root,
                          buf.bytes(), static_cast<int>(resolved),
                          closed_form)
               : trace::CollectiveSpan{});

  if (closed_form) {
    desim::Gate gate(comm.engine());
    const bool is_root = comm.rank() == root;
    machine.join_bcast(comm.context(), seq, &gate, root,
                       is_root ? ConstBuf(buf) : ConstBuf{},
                       is_root ? Buf{} : buf, algo);
    co_await gate.wait();
    co_return;
  }

  const int tag = collective_tag(kPhaseBcast, seq);
  if (resolved == net::BcastAlgo::Binomial) {
    // Inlined in the bcast frame rather than delegated to a child
    // coroutine: binomial is the scale frontier's tree (2^20-rank runs pin
    // it), and at that scale the second frame's allocate/resume/destroy
    // per member call is a measurable share of wall time.
    const int rel = (comm.rank() - root + p) % p;
    auto abs_rank = [&](int r) { return (r + root) % p; };
    int mask = 1;
    while (mask < p) {
      if (rel & mask) {
        co_await comm.recv_op(abs_rank(rel - mask), buf, tag);
        break;
      }
      mask <<= 1;
    }
    // Send to sub-trees, furthest first.
    mask >>= 1;
    while (mask > 0) {
      if (rel + mask < p)
        co_await comm.send_op(abs_rank(rel + mask), buf, tag);
      mask >>= 1;
    }
    co_return;
  }
  switch (resolved) {
    case net::BcastAlgo::Flat:
      co_await bcast_flat(comm, root, buf, tag);
      break;
    case net::BcastAlgo::Binomial:
      HS_REQUIRE_MSG(false, "binomial handled above");
      break;
    case net::BcastAlgo::ScatterRingAllgather:
      co_await bcast_scatter_allgather(comm, root, buf, /*ring=*/true, seq);
      break;
    case net::BcastAlgo::ScatterRecDblAllgather:
      if (is_power_of_two(p))
        co_await bcast_scatter_allgather(comm, root, buf, /*ring=*/false, seq);
      else  // recursive doubling needs a power of two; MPICH falls to ring
        co_await bcast_scatter_allgather(comm, root, buf, /*ring=*/true, seq);
      break;
    case net::BcastAlgo::Pipelined:
      co_await bcast_pipelined(comm, root, buf, tag);
      break;
    case net::BcastAlgo::MpichAuto:
      HS_REQUIRE_MSG(false, "resolve_auto returned MpichAuto");
  }
}

desim::Task<void> reduce(Comm comm, int root, ConstBuf send, Buf recv) {
  const int p = comm.size();
  HS_REQUIRE(root >= 0 && root < p);
  const int rel = (comm.rank() - root + p) % p;
  auto abs_rank = [&](int r) { return (r + root) % p; };
  const std::size_t count = send.count();

  if (p == 1) {
    if (send.is_real() && recv.is_real() && count > 0 &&
        recv.data() != send.data())
      std::memcpy(recv.data(), send.data(), count * sizeof(double));
    co_return;
  }

  Machine& machine = comm.machine();
  const std::uint64_t seq =
      machine.next_collective_seq(comm.context(), comm.rank());
  const bool closed_form =
      machine.config().collective_mode == CollectiveMode::ClosedForm;
  machine.note_collective(Machine::SiteKind::Reduce, -1, send.bytes());
  trace::Recorder* recorder = machine.recorder();
  trace::CollectiveSpanGuard trace_guard(
      recorder, comm.engine(),
      recorder ? span_for(comm, trace::CollectiveOp::Reduce, seq, root,
                          send.bytes(), -1, closed_form)
               : trace::CollectiveSpan{});

  if (closed_form) {
    desim::Gate gate(comm.engine());
    machine.join_data_collective(Machine::SiteKind::Reduce, comm.context(),
                                 seq, &gate, comm.rank(), root, send,
                                 comm.rank() == root ? recv : Buf{});
    co_await gate.wait();
    co_return;
  }

  const int tag = collective_tag(kPhaseReduce, seq);
  const bool real = send.is_real();
  // Accumulator holds my partial sum; scratch receives child contributions.
  // Real payloads stage through the communicator's arena (no per-call
  // allocation in steady state); phantom payloads stage nothing at all.
  ScratchArena::Lease acc_lease, scratch_lease;
  if (real && count > 0) {
    ScratchArena& arena = comm.machine().scratch_arena(comm.context());
    acc_lease = arena.acquire_copy(send.data(), count);
    scratch_lease = arena.acquire(count);
  }
  Buf acc = real ? acc_lease.buf() : Buf::phantom(count);
  Buf scratch = real ? scratch_lease.buf() : Buf::phantom(count);

  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      co_await comm.send_op(abs_rank(rel - mask), acc, tag);
      break;
    }
    if (rel + mask < p) {
      co_await comm.recv_op(abs_rank(rel + mask), scratch, tag);
      if (real)
        for (std::size_t i = 0; i < count; ++i)
          acc.data()[i] += scratch.data()[i];
    }
    mask <<= 1;
  }

  if (rel == 0 && real && count > 0) {
    HS_REQUIRE_MSG(recv.is_real() && recv.count() == count,
                   "reduce: root recv buffer mismatch");
    std::memcpy(recv.data(), acc.data(), count * sizeof(double));
  }
}

namespace {

// Recursive-halving reduce-scatter over a full-size working buffer (power
// of two ranks, uniform chunks). On return, work[rank*chunk .. +chunk)
// holds the caller's share of the element-wise sum. Phantom-aware: when
// `real` is false both buffers are phantom and only wire traffic is
// modeled; otherwise `scratch` must be a real buffer of work.count().
desim::Task<void> reduce_scatter_halving(Comm comm, Buf work, Buf scratch,
                                         bool real, std::uint64_t seq) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t count = work.count();
  const std::size_t chunk = count / static_cast<std::size_t>(p);
  const int tag = collective_tag(kPhaseReduceScatter, seq);

  int lo = 0, hi = p;
  while (hi - lo > 1) {
    const int half = (hi - lo) / 2;
    const int mid = lo + half;
    const int partner = rank ^ half;
    const bool lower = rank < mid;
    // I keep [keep_lo, keep_hi) and ship the other half's range.
    const int ship_lo = lower ? mid : lo;
    const int ship_hi = lower ? hi : mid;
    const int keep_lo = lower ? lo : mid;
    const std::size_t ship_off = static_cast<std::size_t>(ship_lo) * chunk;
    const std::size_t ship_len =
        static_cast<std::size_t>(ship_hi - ship_lo) * chunk;
    const std::size_t keep_off = static_cast<std::size_t>(keep_lo) * chunk;

    PostedOp send_op = comm.send_posted(
        partner, ConstBuf(work).slice(ship_off, ship_len), tag);
    Buf recv_buf =
        real ? scratch.slice(0, ship_len) : Buf::phantom(ship_len);
    PostedOp recv_op = comm.recv_posted(partner, recv_buf, tag);
    co_await send_op.wait();
    co_await recv_op.wait();
    if (real)
      for (std::size_t i = 0; i < ship_len; ++i)
        work.data()[keep_off + i] += scratch.data()[i];
    if (lower)
      hi = mid;
    else
      lo = mid;
  }
}

desim::Task<void> allreduce_rabenseifner(Comm comm, ConstBuf send, Buf recv,
                                         std::uint64_t seq) {
  const int p = comm.size();
  const std::size_t count = send.count();
  HS_REQUIRE_MSG(count % static_cast<std::size_t>(p) == 0,
                 "Rabenseifner allreduce requires size | count");
  const bool real = send.is_real();
  ScratchArena::Lease work_lease, scratch_lease;
  if (real && count > 0) {
    ScratchArena& arena = comm.machine().scratch_arena(comm.context());
    work_lease = arena.acquire_copy(send.data(), count);
    scratch_lease = arena.acquire(count);
  }
  Buf work = real ? work_lease.buf() : Buf::phantom(count);
  Buf scratch = real ? scratch_lease.buf() : Buf::phantom(count);
  co_await reduce_scatter_halving(comm, work, scratch, real, seq);
  // Recursive-doubling allgather of the per-rank chunks (root 0: ranks are
  // already absolute).
  const Chunks chunks{count, p};
  co_await allgather_recdbl_ranges(comm, 0, work, chunks,
                                   collective_tag(kPhaseAllgather, seq));
  if (real && count > 0) {
    HS_REQUIRE_MSG(recv.is_real() && recv.count() == count,
                   "allreduce: recv buffer mismatch");
    std::memcpy(recv.data(), work.data(), count * sizeof(double));
  }
}

}  // namespace

desim::Task<void> reduce_scatter(Comm comm, ConstBuf send, Buf recv_chunk) {
  const int p = comm.size();
  const std::size_t count = send.count();
  HS_REQUIRE_MSG(count % static_cast<std::size_t>(p) == 0,
                 "reduce_scatter requires size | send.count()");
  const std::size_t chunk = count / static_cast<std::size_t>(p);
  HS_REQUIRE_MSG(recv_chunk.count() == chunk,
                 "reduce_scatter: recv must hold send.count()/size elements");
  if (p == 1) {
    if (send.is_real() && recv_chunk.is_real() && count > 0 &&
        recv_chunk.data() != send.data())
      std::memcpy(recv_chunk.data(), send.data(), count * sizeof(double));
    co_return;
  }

  Machine& machine = comm.machine();
  const std::uint64_t seq =
      machine.next_collective_seq(comm.context(), comm.rank());
  const bool closed_form =
      machine.config().collective_mode == CollectiveMode::ClosedForm;
  machine.note_collective(Machine::SiteKind::ReduceScatter, -1, send.bytes());
  trace::Recorder* recorder = machine.recorder();
  trace::CollectiveSpanGuard trace_guard(
      recorder, comm.engine(),
      recorder ? span_for(comm, trace::CollectiveOp::ReduceScatter, seq, -1,
                          send.bytes(), -1, closed_form)
               : trace::CollectiveSpan{});

  if (closed_form) {
    desim::Gate gate(comm.engine());
    machine.join_data_collective(Machine::SiteKind::ReduceScatter,
                                 comm.context(), seq, &gate, comm.rank(),
                                 /*root_index=*/0, send, recv_chunk);
    co_await gate.wait();
    co_return;
  }

  const bool real = send.is_real();
  if ((p & (p - 1)) == 0) {
    ScratchArena::Lease work_lease, scratch_lease;
    if (real && count > 0) {
      ScratchArena& arena = machine.scratch_arena(comm.context());
      work_lease = arena.acquire_copy(send.data(), count);
      scratch_lease = arena.acquire(count);
    }
    Buf work = real ? work_lease.buf() : Buf::phantom(count);
    Buf scratch = real ? scratch_lease.buf() : Buf::phantom(count);
    co_await reduce_scatter_halving(comm, work, scratch, real, seq);
    if (real && count > 0)
      std::memcpy(recv_chunk.data(),
                  work.data() + static_cast<std::size_t>(comm.rank()) * chunk,
                  chunk * sizeof(double));
    co_return;
  }

  // Non-power-of-two: reduce to rank 0, then scatter the chunks.
  ScratchArena::Lease full_lease;
  Buf full = Buf{};
  if (comm.rank() == 0) {
    if (real && count > 0)
      full_lease = machine.scratch_arena(comm.context()).acquire(count);
    full = real ? full_lease.buf() : Buf::phantom(count);
  } else if (!real) {
    full = Buf::phantom(count);
  }
  co_await reduce(comm, 0, send, full);
  co_await scatter(comm, 0,
                   comm.rank() == 0 ? ConstBuf(full) : ConstBuf{},
                   recv_chunk);
}

desim::Task<void> allreduce(Comm comm, ConstBuf send, Buf recv,
                            AllreduceAlgo algo) {
  const int p = comm.size();
  const bool pow2 = (p & (p - 1)) == 0;
  const bool rabenseifner =
      algo == AllreduceAlgo::Rabenseifner && pow2 && p > 1 &&
      send.count() % static_cast<std::size_t>(p) == 0;

  Machine& machine = comm.machine();
  if (p > 1 &&
      machine.config().collective_mode == CollectiveMode::ClosedForm) {
    const std::uint64_t seq =
        machine.next_collective_seq(comm.context(), comm.rank());
    const auto kind = rabenseifner ? Machine::SiteKind::AllreduceRabenseifner
                                   : Machine::SiteKind::Allreduce;
    machine.note_collective(kind, -1, send.bytes());
    trace::Recorder* recorder = machine.recorder();
    trace::CollectiveSpanGuard trace_guard(
        recorder, comm.engine(),
        recorder ? span_for(comm, static_cast<trace::CollectiveOp>(kind), seq,
                            -1, send.bytes(), -1, /*closed_form=*/true)
                 : trace::CollectiveSpan{});
    desim::Gate gate(comm.engine());
    machine.join_data_collective(kind, comm.context(), seq, &gate, comm.rank(),
                                 /*root_index=*/0, send, recv);
    co_await gate.wait();
    co_return;
  }
  if (rabenseifner) {
    const std::uint64_t seq =
        machine.next_collective_seq(comm.context(), comm.rank());
    machine.note_collective(Machine::SiteKind::AllreduceRabenseifner, -1,
                            send.bytes());
    trace::Recorder* recorder = machine.recorder();
    trace::CollectiveSpanGuard trace_guard(
        recorder, comm.engine(),
        recorder ? span_for(comm, trace::CollectiveOp::AllreduceRabenseifner,
                            seq, -1, send.bytes(), -1, /*closed_form=*/false)
                 : trace::CollectiveSpan{});
    co_await allreduce_rabenseifner(comm, send, recv, seq);
    co_return;
  }
  // The default point-to-point allreduce delegates: the nested reduce and
  // bcast calls consume their own sequence numbers and record their own
  // spans/counters, so there is nothing separate to trace here.
  co_await reduce(comm, 0, send, recv);
  co_await bcast(comm, 0, recv, net::BcastAlgo::Binomial);
}

desim::Task<void> gather(Comm comm, int root, ConstBuf send, Buf recv_all) {
  const int p = comm.size();
  HS_REQUIRE(root >= 0 && root < p);
  const int rel = (comm.rank() - root + p) % p;
  auto abs_rank = [&](int r) { return (r + root) % p; };
  const std::size_t chunk = send.count();
  const bool real = send.is_real();

  if (rel == 0)
    HS_REQUIRE_MSG(recv_all.count() == chunk * static_cast<std::size_t>(p),
                   "gather: recv buffer must hold size*send.count elements");
  if (p == 1) {
    if (real && chunk > 0 && recv_all.data() != send.data())
      std::memcpy(recv_all.data(), send.data(), chunk * sizeof(double));
    co_return;
  }

  Machine& machine = comm.machine();
  const std::uint64_t seq =
      machine.next_collective_seq(comm.context(), comm.rank());
  const bool closed_form =
      machine.config().collective_mode == CollectiveMode::ClosedForm;
  machine.note_collective(Machine::SiteKind::Gather, -1, send.bytes());
  trace::Recorder* recorder = machine.recorder();
  trace::CollectiveSpanGuard trace_guard(
      recorder, comm.engine(),
      recorder ? span_for(comm, trace::CollectiveOp::Gather, seq, root,
                          send.bytes(), -1, closed_form)
               : trace::CollectiveSpan{});

  if (closed_form) {
    desim::Gate gate(comm.engine());
    machine.join_data_collective(Machine::SiteKind::Gather, comm.context(),
                                 seq, &gate, comm.rank(), root, send,
                                 comm.rank() == root ? recv_all : Buf{});
    co_await gate.wait();
    co_return;
  }

  const int tag = collective_tag(kPhaseGather, seq);

  // Staging buffer indexed by *relative* chunk position; the root unpacks
  // to absolute positions at the end. Every position read below is written
  // first (own chunk here, the rest by the merge receives), so the arena's
  // recycled storage needs no zero fill.
  ScratchArena::Lease stage_lease;
  if (real && chunk > 0)
    stage_lease = machine.scratch_arena(comm.context())
                      .acquire(chunk * static_cast<std::size_t>(p));
  Buf stage = real ? stage_lease.buf()
                   : Buf::phantom(chunk * static_cast<std::size_t>(p));
  if (real && chunk > 0)
    std::memcpy(stage.data() + static_cast<std::size_t>(rel) * chunk,
                send.data(), chunk * sizeof(double));

  // Reverse of the recursive-halving scatter: replay the split sequence
  // bottom-up, merging ranges.
  struct Split {
    int lo, mid, hi;
    bool sender;  // I am `mid` at this level and send [mid,hi) to lo
  };
  std::vector<Split> splits;
  {
    int lo = 0, hi = p;
    while (hi - lo > 1) {
      const int mid = lo + (hi - lo + 1) / 2;
      if (rel < mid) {
        splits.push_back({lo, mid, hi, false});
        hi = mid;
      } else {
        splits.push_back({lo, mid, hi, rel == mid});
        lo = mid;
      }
    }
  }
  for (auto it = splits.rbegin(); it != splits.rend(); ++it) {
    const std::size_t off = static_cast<std::size_t>(it->mid) * chunk;
    const std::size_t len =
        static_cast<std::size_t>(it->hi - it->mid) * chunk;
    if (it->sender) {
      co_await comm.send_op(abs_rank(it->lo), stage.slice(off, len), tag);
      break;  // after sending up, this rank is done
    }
    if (rel == it->lo && len > 0)
      co_await comm.recv_op(abs_rank(it->mid), stage.slice(off, len), tag);
  }

  if (rel == 0 && real && chunk > 0) {
    // stage[relative r] -> recv_all[absolute abs_rank(r)].
    for (int r = 0; r < p; ++r)
      std::memcpy(
          recv_all.data() + static_cast<std::size_t>(abs_rank(r)) * chunk,
          stage.data() + static_cast<std::size_t>(r) * chunk,
          chunk * sizeof(double));
  }
}

desim::Task<void> scatter(Comm comm, int root, ConstBuf send_all, Buf recv) {
  const int p = comm.size();
  HS_REQUIRE(root >= 0 && root < p);
  const int rel = (comm.rank() - root + p) % p;
  auto abs_rank = [&](int r) { return (r + root) % p; };
  const std::size_t chunk = recv.count();
  const bool real = recv.is_real();

  if (p == 1) {
    if (real && chunk > 0 && recv.data() != send_all.data())
      std::memcpy(recv.data(), send_all.data(), chunk * sizeof(double));
    co_return;
  }

  Machine& machine = comm.machine();
  const std::uint64_t seq =
      machine.next_collective_seq(comm.context(), comm.rank());
  const bool closed_form =
      machine.config().collective_mode == CollectiveMode::ClosedForm;
  machine.note_collective(Machine::SiteKind::Scatter, -1, recv.bytes());
  trace::Recorder* recorder = machine.recorder();
  trace::CollectiveSpanGuard trace_guard(
      recorder, comm.engine(),
      recorder ? span_for(comm, trace::CollectiveOp::Scatter, seq, root,
                          recv.bytes(), -1, closed_form)
               : trace::CollectiveSpan{});

  if (closed_form) {
    desim::Gate gate(comm.engine());
    machine.join_data_collective(Machine::SiteKind::Scatter, comm.context(),
                                 seq, &gate, comm.rank(), root,
                                 comm.rank() == root ? send_all : ConstBuf{},
                                 recv);
    co_await gate.wait();
    co_return;
  }

  const int tag = collective_tag(kPhaseScatter, seq);

  // Root re-stages into relative order so ranges are contiguous. As in
  // gather, each rank writes (receives) its ranges before reading them, so
  // recycled arena storage needs no zero fill.
  ScratchArena::Lease stage_lease;
  if (real && chunk > 0)
    stage_lease = machine.scratch_arena(comm.context())
                      .acquire(chunk * static_cast<std::size_t>(p));
  Buf stage = real ? stage_lease.buf()
                   : Buf::phantom(chunk * static_cast<std::size_t>(p));
  if (rel == 0 && real && chunk > 0) {
    HS_REQUIRE_MSG(send_all.count() == chunk * static_cast<std::size_t>(p),
                   "scatter: send buffer must hold size*recv.count elements");
    for (int r = 0; r < p; ++r)
      std::memcpy(stage.data() + static_cast<std::size_t>(r) * chunk,
                  send_all.data() + static_cast<std::size_t>(abs_rank(r)) * chunk,
                  chunk * sizeof(double));
  }

  int lo = 0, hi = p;
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo + 1) / 2;
    const std::size_t off = static_cast<std::size_t>(mid) * chunk;
    const std::size_t len = static_cast<std::size_t>(hi - mid) * chunk;
    if (rel < mid) {
      if (rel == lo && len > 0)
        co_await comm.send_op(abs_rank(mid), stage.slice(off, len), tag);
      hi = mid;
    } else {
      if (rel == mid && len > 0)
        co_await comm.recv_op(abs_rank(lo), stage.slice(off, len), tag);
      lo = mid;
    }
  }

  if (real && chunk > 0)
    std::memcpy(recv.data(),
                stage.data() + static_cast<std::size_t>(rel) * chunk,
                chunk * sizeof(double));
}

desim::Task<void> allgather(Comm comm, ConstBuf send, Buf recv_all) {
  const int p = comm.size();
  const std::size_t chunk = send.count();
  HS_REQUIRE_MSG(recv_all.count() == chunk * static_cast<std::size_t>(p),
                 "allgather: recv buffer must hold size*send.count elements");
  const int rank = comm.rank();
  if (send.is_real() && chunk > 0 &&
      recv_all.data() + static_cast<std::size_t>(rank) * chunk != send.data())
    std::memcpy(recv_all.data() + static_cast<std::size_t>(rank) * chunk,
                send.data(), chunk * sizeof(double));
  if (p == 1) co_return;

  Machine& machine = comm.machine();
  const std::uint64_t seq =
      machine.next_collective_seq(comm.context(), comm.rank());
  const bool closed_form =
      machine.config().collective_mode == CollectiveMode::ClosedForm;
  machine.note_collective(Machine::SiteKind::Allgather, -1, send.bytes());
  trace::Recorder* recorder = machine.recorder();
  trace::CollectiveSpanGuard trace_guard(
      recorder, comm.engine(),
      recorder ? span_for(comm, trace::CollectiveOp::Allgather, seq, -1,
                          send.bytes(), -1, closed_form)
               : trace::CollectiveSpan{});

  if (closed_form) {
    desim::Gate gate(comm.engine());
    machine.join_data_collective(Machine::SiteKind::Allgather,
                                 comm.context(), seq, &gate, comm.rank(),
                                 /*root_index=*/0, send, recv_all);
    co_await gate.wait();
    co_return;
  }

  const int tag = collective_tag(kPhaseAllgather, seq);

  const int right = (rank + 1) % p;
  const int left = (rank - 1 + p) % p;
  for (int round = 0; round < p - 1; ++round) {
    const int send_chunk = ((rank - round) % p + p) % p;
    const int recv_chunk = ((rank - round - 1) % p + p) % p;
    PostedOp send_op = comm.send_posted(
        right,
        ConstBuf(recv_all).slice(static_cast<std::size_t>(send_chunk) * chunk,
                                 chunk),
        tag);
    PostedOp recv_op = comm.recv_posted(
        left, recv_all.slice(static_cast<std::size_t>(recv_chunk) * chunk, chunk),
        tag);
    co_await send_op.wait();
    co_await recv_op.wait();
  }
}

desim::Task<void> barrier(Comm comm) {
  const int p = comm.size();
  if (p == 1) co_return;
  Machine& machine = comm.machine();
  const std::uint64_t seq =
      machine.next_collective_seq(comm.context(), comm.rank());
  const bool closed_form =
      machine.config().collective_mode == CollectiveMode::ClosedForm;
  machine.note_collective(Machine::SiteKind::Barrier, -1, 0);
  trace::Recorder* recorder = machine.recorder();
  trace::CollectiveSpanGuard trace_guard(
      recorder, comm.engine(),
      recorder ? span_for(comm, trace::CollectiveOp::Barrier, seq, -1, 0, -1,
                          closed_form)
               : trace::CollectiveSpan{});

  if (closed_form) {
    desim::Gate gate(comm.engine());
    machine.join_barrier(comm.context(), seq, &gate);
    co_await gate.wait();
    co_return;
  }

  // Dissemination barrier: round k exchanges tokens at distance 2^k.
  const int tag = collective_tag(kPhaseBarrier, seq);
  const int rank = comm.rank();
  for (int mask = 1; mask < p; mask <<= 1) {
    const int to = (rank + mask) % p;
    const int from = (rank - mask + p) % p;
    PostedOp send_op = comm.send_posted(to, ConstBuf{}, tag);
    PostedOp recv_op = comm.recv_posted(from, Buf{}, tag);
    co_await send_op.wait();
    co_await recv_op.wait();
  }
}

}  // namespace hs::mpc
