#include "mpc/comm.hpp"

#include <algorithm>

namespace hs::mpc {

Comm Comm::sub(const std::vector<int>& comm_ranks) const {
  HS_REQUIRE(!comm_ranks.empty());
  std::vector<int> world_members;
  world_members.reserve(comm_ranks.size());
  int my_new_rank = -1;
  for (std::size_t i = 0; i < comm_ranks.size(); ++i) {
    world_members.push_back(world_rank(comm_ranks[i]));
    if (comm_ranks[i] == rank_) my_new_rank = static_cast<int>(i);
  }
  HS_REQUIRE_MSG(my_new_rank >= 0,
                 "Comm::sub: calling rank must be a member of the new "
                 "communicator");
  const int ctx = machine().context_for(world_members);
  return Comm(machine_, ctx, my_new_rank);
}

desim::Task<void> Comm::send(int dst, ConstBuf buf, int tag) const {
  Request request = isend(dst, buf, tag);
  co_await request.wait();
}

desim::Task<void> Comm::recv(int src, Buf buf, int tag) const {
  Request request = irecv(src, buf, tag);
  co_await request.wait();
}

desim::Task<void> Comm::sendrecv(int dst, ConstBuf send_buf, int src,
                                 Buf recv_buf, int send_tag,
                                 int recv_tag) const {
  HS_REQUIRE(send_tag >= 0 && recv_tag >= 0);
  PostedOp send_op = send_posted(dst, send_buf, send_tag);
  PostedOp recv_op = recv_posted(src, recv_buf, recv_tag);
  co_await send_op.wait();
  co_await recv_op.wait();
}

desim::Task<void> wait_all(Request& a, Request& b) {
  co_await a.wait();
  co_await b.wait();
}

desim::Task<void> wait_all(std::vector<Request>& requests) {
  for (auto& request : requests) co_await request.wait();
}

}  // namespace hs::mpc
