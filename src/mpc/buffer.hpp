// Message payload descriptors.
//
// Every transfer in the message-passing core carries a Buf (receive side)
// or ConstBuf (send side): a span of doubles plus an element count. The
// span may be *phantom* (null data pointer with a nonzero count): the
// simulator then charges exactly the same wire time but moves no bytes.
// Phantom payloads are what make 16384-rank simulations possible on one
// host; real payloads are what make numerical verification possible.
// The two sides of one transfer must agree on both count and realness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/check.hpp"

namespace hs::mpc {

inline constexpr std::uint64_t kElementBytes = sizeof(double);

/// Mutable (receive) payload view.
class Buf {
 public:
  Buf() = default;
  /// Real payload over caller-owned storage.
  Buf(std::span<double> data)  // NOLINT(google-explicit-constructor)
      : data_(data.data()), count_(data.size()) {}

  /// Phantom payload: `elements` are charged on the wire, none are stored.
  static Buf phantom(std::size_t elements) {
    Buf b;
    b.count_ = elements;
    return b;
  }

  bool is_real() const noexcept { return data_ != nullptr || count_ == 0; }
  std::size_t count() const noexcept { return count_; }
  std::uint64_t bytes() const noexcept { return count_ * kElementBytes; }
  double* data() const noexcept { return data_; }

  /// Sub-payload [offset, offset+elements); phantom slices stay phantom.
  Buf slice(std::size_t offset, std::size_t elements) const {
    // Overflow-safe form of `offset + elements <= count_` (the naive sum
    // wraps for offsets/counts near SIZE_MAX and would accept bad slices).
    HS_REQUIRE(elements <= count_ && offset <= count_ - elements);
    Buf b;
    b.data_ = data_ == nullptr ? nullptr : data_ + offset;
    b.count_ = elements;
    return b;
  }

 private:
  double* data_ = nullptr;
  std::size_t count_ = 0;
};

/// Read-only (send) payload view.
class ConstBuf {
 public:
  ConstBuf() = default;
  ConstBuf(std::span<const double> data)  // NOLINT(google-explicit-constructor)
      : data_(data.data()), count_(data.size()) {}
  ConstBuf(Buf buf)  // NOLINT(google-explicit-constructor)
      : data_(buf.data()), count_(buf.count()) {}

  static ConstBuf phantom(std::size_t elements) {
    ConstBuf b;
    b.count_ = elements;
    return b;
  }

  bool is_real() const noexcept { return data_ != nullptr || count_ == 0; }
  std::size_t count() const noexcept { return count_; }
  std::uint64_t bytes() const noexcept { return count_ * kElementBytes; }
  const double* data() const noexcept { return data_; }

  ConstBuf slice(std::size_t offset, std::size_t elements) const {
    // See Buf::slice: overflow-safe bounds check.
    HS_REQUIRE(elements <= count_ && offset <= count_ - elements);
    ConstBuf b;
    b.data_ = data_ == nullptr ? nullptr : data_ + offset;
    b.count_ = elements;
    return b;
  }

 private:
  const double* data_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace hs::mpc
