// The simulated distributed-memory machine.
//
// A Machine binds a rank count, a network cost model, and per-rank port
// state to a discrete-event engine, and provides MPI-like point-to-point
// semantics:
//
//   * isend/irecv are plain function calls that either match an already
//     posted counterpart or register a pending operation — no coroutine
//     frame is allocated for a transfer, which keeps 16384-rank runs cheap.
//   * A transfer's wire time starts when (a) both sides have posted, (b)
//     the sender's send port is free, and (c) the receiver's receive port
//     is free — the single-port full-duplex assumption under which the
//     paper's broadcast cost formulas hold — and lasts
//     NetworkModel::transfer_time(src, dst, bytes).
//   * Blocking send/recv are awaitables over the same machinery (rendezvous
//     semantics: the sender resumes when the transfer completes).
//
// Collectives (see collectives.hpp) run either as real p2p message trees or,
// in CollectiveMode::ClosedForm, as one synchronization site per collective
// charged with the closed-form Hockney cost from net/bcast_cost.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "desim/engine.hpp"
#include "mpc/buffer.hpp"
#include "net/bcast_cost.hpp"
#include "net/model.hpp"

namespace hs::trace {
class MetricsRegistry;
class Recorder;
}  // namespace hs::trace

namespace hs::fault {
class FaultInjector;
}  // namespace hs::fault

namespace hs::mpc {

class Comm;

enum class CollectiveMode {
  PointToPoint,  // collectives route every tree message through the network
  ClosedForm,    // collectives charge closed-form Hockney costs (bcast/barrier)
};

struct MachineConfig {
  int ranks = 1;
  CollectiveMode collective_mode = CollectiveMode::PointToPoint;
  /// Default broadcast algorithm for collectives that don't override it.
  net::BcastAlgo bcast_algo = net::BcastAlgo::MpichAuto;
  /// Seconds per floating-point operation, used by Machine::compute.
  double gamma_flop = 0.0;
  /// Materialize every rank's port/mailbox state up front instead of
  /// page-lazily on first touch. Simulation results are bit-identical
  /// either way (locked by tests/mpc/test_lazy_ranks.cpp); the knob exists
  /// so that test can compare the two paths and so memory studies can
  /// measure the lazy savings. Default lazy: a phase that touches only a
  /// rank subset (hierarchical broadcast frontiers) materializes only
  /// those ranks' pages.
  bool eager_rank_state = false;
  /// Static per-rank compute speed multipliers (heterogeneous platforms):
  /// empty means homogeneous, otherwise exactly `ranks` entries, each > 0,
  /// and Machine::compute on rank r charges flops * gamma_flop *
  /// rank_gamma[r]. A multiplier > 1 is a permanently slow rank — the
  /// static analogue of the fault subsystem's RankSlowdown with an
  /// infinite window (pinned equivalent by tests/mpc/test_hetero.cpp).
  /// Communication is unaffected.
  std::vector<double> rank_gamma = {};
};

/// Optional per-transfer event recorder. Attach one to a Machine to dump
/// a timeline of every committed transfer (virtual start/end, endpoints,
/// size) — the raw material for Gantt-style visualization and for
/// debugging overlap schedules.
struct TransferRecord {
  double start = 0.0;
  double end = 0.0;
  int src = -1;
  int dst = -1;
  std::uint64_t bytes = 0;
  int ctx = 0;
  int tag = 0;
};

class TransferLog {
 public:
  void record(const TransferRecord& record) { records_.push_back(record); }
  const std::vector<TransferRecord>& records() const noexcept {
    return records_;
  }
  void clear() { records_.clear(); }

  /// RFC-4180 CSV with a header row.
  void write_csv(std::ostream& out) const;

 private:
  std::vector<TransferRecord> records_;
};

/// Reusable staging storage for real-payload collectives.
///
/// Point-to-point collective implementations (reduce trees, scatter/gather
/// staging, Rabenseifner working buffers) need temporary double storage per
/// call. Allocating a fresh std::vector per collective costs an allocation
/// and a page-fault storm on every SUMMA step; the arena instead recycles
/// buffers through a free list, so steady-state collectives reuse the same
/// few allocations. Checkouts are RAII Leases and may interleave arbitrarily
/// across suspended coroutines (release order does not matter: each Lease
/// owns its vector while checked out).
///
/// Phantom runs never touch the arena — phantom payloads stage nothing.
class ScratchArena {
 public:
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : arena_(std::exchange(other.arena_, nullptr)),
          storage_(std::move(other.storage_)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        arena_ = std::exchange(other.arena_, nullptr);
        storage_ = std::move(other.storage_);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    double* data() noexcept { return storage_.data(); }
    std::size_t count() const noexcept { return storage_.size(); }
    Buf buf() noexcept { return Buf(std::span<double>(storage_)); }
    std::vector<double>& storage() noexcept { return storage_; }

   private:
    friend class ScratchArena;
    Lease(ScratchArena* arena, std::vector<double>&& storage) noexcept
        : arena_(arena), storage_(std::move(storage)) {}
    void release() noexcept {
      if (arena_ == nullptr) return;
      try {
        arena_->free_.push_back(std::move(storage_));
      } catch (...) {
        // Free-list growth failed; the storage is simply dropped.
      }
      arena_ = nullptr;
    }
    ScratchArena* arena_ = nullptr;
    std::vector<double> storage_;
  };

  /// Check out `count` elements. Contents are *unspecified* (recycled
  /// buffers keep stale values); callers that need zeros must fill.
  Lease acquire(std::size_t count) {
    std::vector<double> storage = take();
    storage.resize(count);
    return Lease(this, std::move(storage));
  }

  /// Check out a buffer initialized as a copy of [src, src+count).
  Lease acquire_copy(const double* src, std::size_t count) {
    std::vector<double> storage = take();
    storage.assign(src, src + count);
    return Lease(this, std::move(storage));
  }

 private:
  std::vector<double> take() {
    if (free_.empty()) return {};
    std::vector<double> storage = std::move(free_.back());
    free_.pop_back();
    return storage;
  }
  std::vector<std::vector<double>> free_;
};

/// Handle returned by isend/irecv; must be waited (or the op must be known
/// complete) before destruction. Movable, not copyable.
class Request {
 public:
  Request() = default;
  explicit Request(desim::Engine& engine)
      : state_(std::make_unique<State>(engine)) {}
  Request(Request&&) noexcept = default;
  Request& operator=(Request&&) noexcept = default;

  bool valid() const noexcept { return state_ != nullptr; }
  bool complete() const noexcept { return state_ && state_->gate.fired(); }

  /// Awaitable: resumes once the transfer has completed.
  auto wait() {
    HS_REQUIRE_MSG(state_ != nullptr, "waiting on an empty Request");
    return state_->gate.wait();
  }

  desim::Gate* gate() noexcept { return state_ ? &state_->gate : nullptr; }

 private:
  struct State {
    explicit State(desim::Engine& engine) : gate(engine) {}
    // Two Requests per message round-trip; recycle the states.
    static void* operator new(std::size_t size) {
      return desim::FramePool::allocate(size);
    }
    static void operator delete(void* ptr, std::size_t size) noexcept {
      desim::FramePool::deallocate(ptr, size);
    }
    desim::Gate gate;
  };
  std::unique_ptr<State> state_;
};

class Machine {
 public:
  Machine(desim::Engine& engine, std::shared_ptr<const net::NetworkModel> net,
          MachineConfig config);

  desim::Engine& engine() noexcept { return *engine_; }
  int ranks() const noexcept { return config_.ranks; }
  const MachineConfig& config() const noexcept { return config_; }
  const net::NetworkModel& network() const noexcept { return *net_; }

  /// Communicator over all ranks; `self` is the calling rank's world rank.
  Comm world(int self);

  /// Nonblocking point-to-point. Ranks are world ranks; `ctx` is the
  /// communicator context (cross-context messages never match).
  Request isend(int src, int dst, int ctx, int tag, ConstBuf buf);
  Request irecv(int src, int dst, int ctx, int tag, Buf buf);

  /// Deadline-bounded blocking point-to-point. The deadline bounds the
  /// rendezvous *match*: a counterpart posted at or before `deadline`
  /// (regular events at the deadline instant win the race against expiry)
  /// commits the transfer, the call awaits its completion — possibly past
  /// the deadline — and resolves true. If no counterpart arrives in time,
  /// the pending op is withdrawn at `deadline` exactly (an abandoned
  /// deadline never advances virtual time beyond it), a timeout is
  /// counted, and the call resolves false.
  desim::Task<bool> send_before(int src, int dst, int ctx, int tag,
                                ConstBuf buf, double deadline);
  desim::Task<bool> recv_before(int src, int dst, int ctx, int tag, Buf buf,
                                double deadline);

  /// Awaitable compute charge: `flops * gamma_flop` virtual seconds.
  auto compute(double flops) {
    HS_REQUIRE(flops >= 0.0);
    return engine_->sleep(flops * config_.gamma_flop);
  }

  /// Awaitable compute charge attributed to `rank`: identical to
  /// compute(flops) unless a fault injector with an active slowdown window
  /// on `rank` is attached, in which case the charge stretches through the
  /// window (fault::FaultInjector::compute_seconds).
  auto compute(int rank, double flops) {
    HS_REQUIRE(flops >= 0.0);
    return engine_->sleep(compute_duration(rank, flops * config_.gamma_flop));
  }

  /// The virtual seconds compute(rank, flops) would charge for a faultless
  /// duration of `base` seconds starting now.
  double compute_duration(int rank, double base) const;

  /// Hockney parameters for closed-form collectives. Requires the network
  /// model to be a HockneyModel (enforced at construction when
  /// CollectiveMode::ClosedForm is selected).
  double alpha() const;
  double beta() const;

  // --- internals shared with Comm / collectives -------------------------

  /// Context management: returns the context id for an ordered world-rank
  /// membership list, creating it on first use. All members calling with
  /// the same list observe the same id (simulation-level shortcut for
  /// MPI_Comm_split; charged zero virtual time, as communicator setup is
  /// excluded from the paper's timings).
  int context_for(const std::vector<int>& world_members);
  const std::vector<int>& context_members(int ctx) const;

  /// Per-communicator collective sequence number: every collective call
  /// consumes exactly one per member, in program order. Point-to-point
  /// collective implementations embed it in their reserved tags so that
  /// *concurrent* collectives on one communicator (communication/
  /// computation overlap) can never cross-match; the closed-form mode uses
  /// it to key synchronization sites.
  std::uint64_t next_collective_seq(int ctx, int member_index);

  /// Per-communicator staging arena for real-payload collectives. The
  /// returned reference is stable for the machine's lifetime (contexts may
  /// be added while leases are outstanding).
  ScratchArena& scratch_arena(int ctx);

  /// Closed-form collective sites (ClosedForm mode). Each member calls
  /// join_* once per collective, in program order, and awaits the gate.
  /// Data semantics are honored for real payloads: broadcast copies the
  /// root's view everywhere, reduce sums contributions into the root's
  /// receive view, gather/scatter/allgather move the member-indexed
  /// chunks.
  enum class SiteKind {
    Bcast,
    Barrier,
    Reduce,
    Allreduce,
    AllreduceRabenseifner,
    ReduceScatter,
    Gather,
    Scatter,
    Allgather,
  };
  void join_bcast(int ctx, std::uint64_t seq, desim::Gate* gate,
                  int root_index, ConstBuf send_view, Buf recv_view,
                  net::BcastAlgo algo);
  void join_barrier(int ctx, std::uint64_t seq, desim::Gate* gate);
  /// Reduce-family join: `member_index` is the caller's rank in the
  /// communicator, `send_view` its contribution, `recv_view` where results
  /// land (semantics per kind; pass an empty Buf where not applicable).
  void join_data_collective(SiteKind kind, int ctx, std::uint64_t seq,
                            desim::Gate* gate, int member_index,
                            int root_index, ConstBuf send_view,
                            Buf recv_view);

  /// Statistics: total messages matched and bytes charged (wire bytes).
  std::uint64_t messages_transferred() const noexcept { return messages_; }
  std::uint64_t bytes_transferred() const noexcept { return bytes_; }

  /// Always-on distribution of committed transfer latencies (start to
  /// completion, including port-serialization queueing and fault
  /// stretching). O(1) memory; harvested as mpc.transfer.latency_s.
  const hs::Histogram& transfer_latency_histogram() const noexcept {
    return transfer_latency_s_;
  }

  /// Attach (or detach with nullptr) a transfer recorder; the log must
  /// outlive the simulation. Point-to-point transfers are logged as they
  /// commit; in ClosedForm mode every collective site emits one synthetic
  /// record spanning [last participant entry, completion] with src = the
  /// root's world rank (-1 for rootless collectives), dst = -1, bytes =
  /// the site's (p-1)*bytes wire charge, and tag = -(SiteKind+1), so
  /// synthetic rows are distinguishable from real transfers.
  void set_transfer_log(TransferLog* log) noexcept { transfer_log_ = log; }

  /// Attach (or detach with nullptr) a structured trace recorder (see
  /// trace/recorder.hpp); it must outlive the simulation. The machine
  /// feeds it wire-transfer spans and ClosedForm site spans; collective
  /// call spans and compute spans are recorded by the collectives layer
  /// and the kernels. Recording never perturbs virtual time.
  void set_recorder(trace::Recorder* recorder) noexcept {
    recorder_ = recorder;
  }
  trace::Recorder* recorder() const noexcept { return recorder_; }

  /// Attach (or detach with nullptr) a fault injector (see
  /// fault/injector.hpp); it must outlive the simulation. When attached,
  /// committed transfers route their wire-time computation through
  /// FaultInjector::transfer (degradation, slowdown stretching, drop/retry
  /// loops) and ranked compute charges through compute_seconds. Detached —
  /// or attached with an empty plan — the machine's arithmetic is
  /// bit-identical to the faultless code path.
  void set_fault_injector(fault::FaultInjector* injector) noexcept {
    fault_ = injector;
  }
  fault::FaultInjector* fault_injector() const noexcept { return fault_; }

  /// Deadline-bounded ops that expired (send_before/recv_before → false).
  std::uint64_t timeouts() const noexcept { return timeouts_; }

  /// Count one collective call on one rank (always-on statistics, mode-
  /// independent: every member's call is counted once, in both
  /// PointToPoint and ClosedForm mode). `algo_index` is the resolved
  /// net::BcastAlgo for broadcasts, -1 otherwise; `bytes` the per-member
  /// payload.
  void note_collective(SiteKind kind, int algo_index,
                       std::uint64_t bytes) noexcept;

  /// Dump always-on counters into `metrics` under the mpc.* namespace:
  /// per-SiteKind call/byte counts, per-BcastAlgo usage, message/wire
  /// totals, and port busy-time gauges.
  void collect_metrics(trace::MetricsRegistry& metrics) const;

  // Race state of one deadline-bounded op, owned by the send_before/
  // recv_before coroutine frame. The op parks in its rank's pending list
  // carrying a pointer to this; the match path cancels the timer and sets
  // `matched` before firing the gate, so the two resume paths (gate fire
  // vs timer expiry) are mutually exclusive by construction.
  struct DeadlinePending {
    desim::Engine::TimerId timer = 0;
    bool matched = false;
  };

  /// Shared isend/irecv body (the primitive under Request and the
  /// send/recv awaitables below): match-and-commit (firing both gates and
  /// returning true) or park the op with optional deadline state. Callers
  /// outside the machine pass deadline = nullptr.
  bool post_send(int src, int dst, int ctx, int tag, ConstBuf buf,
                 desim::Gate* gate, DeadlinePending* deadline);
  bool post_recv(int src, int dst, int ctx, int tag, Buf buf,
                 desim::Gate* gate, DeadlinePending* deadline);

  /// Lazy rank-state instrumentation: pages of kRankPageSize ranks'
  /// port/mailbox state, materialized on first touch (or all up front with
  /// MachineConfig::eager_rank_state). Exposed so tests and the scale
  /// bench can assert memory scales with *touched* ranks.
  static constexpr int kRankPageSize = 4096;
  std::size_t rank_pages_materialized() const noexcept {
    return pages_materialized_;
  }
  std::size_t rank_page_count() const noexcept { return pages_.size(); }

 private:
  struct PortState {
    double send_free = 0.0;
    double recv_free = 0.0;
    // Cumulative wire time this port spent sending/receiving (statistics
    // only; never read by the simulation itself).
    double send_busy = 0.0;
    double recv_busy = 0.0;
  };

  // One pending isend or irecv, parked at the *receiver's* RankState.
  // Buf/ConstBuf are flattened to (data, count) so both kinds share a
  // slot; sends and recvs live in separate lists, and irecv buffers
  // round-trip through a const_cast on match. `peer` is the sender's
  // world rank for both kinds (the receiver is the list's owner).
  struct PendingOp {
    double post_time;
    const double* data;
    std::size_t count;
    desim::Gate* gate;
    DeadlinePending* deadline;  // non-null: withdrawable on expiry
    int peer;
    int ctx;
    int tag;
  };

  struct Context {
    std::vector<int> members;            // world ranks in comm-rank order
    std::vector<std::uint64_t> op_seq;   // per-member collective sequence
    // Behind a unique_ptr so the arena address survives contexts_ growth
    // while collective coroutines hold leases into it.
    std::unique_ptr<ScratchArena> arena = std::make_unique<ScratchArena>();
  };

  struct Site {
    SiteKind kind = SiteKind::Barrier;
    int expected = 0;
    int arrived = 0;
    double max_entry = 0.0;
    int root_index = -1;
    net::BcastAlgo algo = net::BcastAlgo::Binomial;
    ConstBuf root_buf;
    std::uint64_t bytes = 0;  // per-member payload bytes
    struct Participant {
      desim::Gate* gate = nullptr;
      int member_index = -1;
      ConstBuf send;
      Buf recv;
    };
    std::vector<Participant, desim::PoolAllocator<Participant>> participants;
  };

  /// Compute and commit one transfer: returns completion time, updates
  /// ports, copies data when both sides are real.
  double commit_transfer(int src, int dst, int ctx, int tag,
                         double send_post, double recv_post,
                         ConstBuf send_buf, Buf recv_buf);

  /// Remove the parked op carrying `state` from its list (expiry path).
  void withdraw(int dst, bool is_send, const DeadlinePending* state);
  /// Awaitable racing `gate` against a deadline timer: resumes either when
  /// the gate fires (match path, which cancels the timer) or when the
  /// timer expires. The caller inspects DeadlinePending::matched.
  auto deadline_race(desim::Gate* gate, double deadline,
                     DeadlinePending* state) {
    struct Awaiter {
      desim::Engine* engine;
      desim::Gate* gate;
      double deadline;
      DeadlinePending* state;
      bool await_ready() const noexcept { return gate->fired(); }
      void await_suspend(std::coroutine_handle<> handle) const {
        state->timer = engine->schedule_timer_at(deadline, handle);
        gate->attach_waiter(handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{engine_, gate, deadline, state};
  }

  Site& site_for(int ctx, std::uint64_t seq, SiteKind kind, int expected);
  void complete_site(int ctx, std::uint64_t key, Site& site);
  void deliver_site_payloads(int ctx, Site& site);

  // Pending ops live in two small FIFO lists on the *receiver's* rank
  // state: sends addressed to that rank and recvs posted by it. Matching
  // scans the opposite list from its head for the first (peer, ctx, tag)
  // hit — exactly the per-(src,dst,ctx,tag) channel FIFO order, since
  // earlier-posted ops with the same key come first in post order. The
  // lists are a handful of entries long in practice (a rank's in-flight
  // ops), so an indexed linear scan beats the hash probe the old
  // channel map paid per post, and the storage is dense per rank instead
  // of a node per live (src,dst,ctx,tag) key. A list never holds both a
  // send and a recv with the same key (the second would have matched), so
  // find/park semantics are identical to the channel map's.
  struct OpList {
    std::uint32_t head = 0;
    std::vector<PendingOp, desim::PoolAllocator<PendingOp>> ops;
    PendingOp* find(int peer, int ctx, int tag) noexcept {
      for (std::size_t i = head; i < ops.size(); ++i) {
        PendingOp& op = ops[i];
        if (op.peer == peer && op.ctx == ctx && op.tag == tag) return &op;
      }
      return nullptr;
    }
    PendingOp* find_deadline(const DeadlinePending* state) noexcept {
      for (std::size_t i = head; i < ops.size(); ++i)
        if (ops[i].deadline == state) return &ops[i];
      return nullptr;
    }
    void remove(PendingOp* op) {
      const auto i = static_cast<std::size_t>(op - ops.data());
      if (i == head) {
        // Head removal (the common case: one key in flight per pair) is
        // an index bump; the vector resets in place when drained, keeping
        // its capacity for the rank's steady-state traffic.
        ++head;
        if (head == ops.size()) {
          head = 0;
          ops.clear();
        }
        return;
      }
      ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
    }
    void push(const PendingOp& op) { ops.push_back(op); }
  };

  // Per-rank simulation state, materialized page-lazily: an untouched rank
  // (phantom rank idle through a phase) costs one null page pointer share,
  // so footprint scales with ranks that actually communicate. Pages, not
  // single ranks, amortize the indirection and allocation.
  struct RankState {
    PortState port;
    OpList pending_sends;  // sends addressed to this rank, post order
    OpList pending_recvs;  // recvs posted by this rank, post order
  };
  struct RankPage {
    std::array<RankState, kRankPageSize> ranks;
  };
  RankState& rank_state(int rank) {
    auto& page = pages_[static_cast<std::size_t>(rank) / kRankPageSize];
    if (page == nullptr) materialize_page(page);
    return page->ranks[static_cast<std::size_t>(rank) % kRankPageSize];
  }
  void materialize_page(std::unique_ptr<RankPage>& page);

  desim::Engine* engine_;
  std::shared_ptr<const net::NetworkModel> net_;
  MachineConfig config_;
  const net::HockneyModel* hockney_ = nullptr;  // non-null iff Hockney
  std::vector<std::unique_ptr<RankPage>> pages_;
  std::size_t pages_materialized_ = 0;
  std::vector<Context> contexts_;
  std::map<std::vector<int>, int> context_ids_;
  std::unordered_map<
      std::uint64_t, Site, std::hash<std::uint64_t>, std::equal_to<>,
      desim::PoolAllocator<std::pair<const std::uint64_t, Site>>>
      sites_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  hs::Histogram transfer_latency_s_;
  static constexpr int kSiteKinds = 9;
  static constexpr int kBcastAlgos =
      static_cast<int>(net::BcastAlgo::MpichAuto) + 1;
  std::array<std::uint64_t, kSiteKinds> collective_calls_{};
  std::array<std::uint64_t, kSiteKinds> collective_bytes_{};
  std::array<std::uint64_t, kBcastAlgos> bcast_algo_calls_{};
  TransferLog* transfer_log_ = nullptr;
  trace::Recorder* recorder_ = nullptr;
  fault::FaultInjector* fault_ = nullptr;
  std::uint64_t timeouts_ = 0;
};

/// Single-shot awaitable over one blocking point-to-point op: posts the op
/// when awaited and resumes the caller at transfer completion. Equivalent
/// in virtual time and event schedule to isend/irecv + Request::wait, but
/// with the Gate inline in the caller's coroutine frame — no Request state
/// allocation and no intermediate coroutine. This is the collectives' hot
/// path: at the 2^20-rank scale frontier every tree edge goes through one
/// of these. Not movable (the parked op holds the gate's address); only
/// ever materialized directly in a co_await expression.
class TransferOp {
 public:
  TransferOp(Machine& machine, int src, int dst, int ctx, int tag,
             ConstBuf send_buf, Buf recv_buf, bool is_send)
      : machine_(&machine),
        gate_(machine.engine()),
        send_(send_buf),
        recv_(recv_buf),
        src_(src),
        dst_(dst),
        ctx_(ctx),
        tag_(tag),
        is_send_(is_send) {}
  TransferOp(const TransferOp&) = delete;
  TransferOp& operator=(const TransferOp&) = delete;

  bool await_ready() const noexcept { return false; }
  bool await_suspend(std::coroutine_handle<> handle) {
    if (is_send_)
      machine_->post_send(src_, dst_, ctx_, tag_, send_, &gate_, nullptr);
    else
      machine_->post_recv(src_, dst_, ctx_, tag_, recv_, &gate_, nullptr);
    if (gate_.fired()) {
      // Matched immediately. A zero-latency completion resumes without
      // suspending (exactly Gate::wait's await_ready fast path, so event
      // counts stay identical to the Request formulation).
      if (gate_.fire_time() <= machine_->engine().now()) return false;
      machine_->engine().schedule_at(gate_.fire_time(), handle);
      return true;
    }
    gate_.attach_waiter(handle);
    return true;
  }
  void await_resume() const noexcept {}

 private:
  Machine* machine_;
  desim::Gate gate_;
  ConstBuf send_;
  Buf recv_;
  int src_, dst_, ctx_, tag_;
  bool is_send_;
};

/// Posted-now, awaited-later counterpart of TransferOp: a Request with the
/// gate inline instead of heap-allocated. Used where two ops must overlap
/// (ring/recursive-doubling exchanges post the send and recv together,
/// then await both). Pinned for the same reason as TransferOp; lives as a
/// local (or std::optional) in the posting coroutine's frame.
class PostedOp {
 public:
  PostedOp(Machine& machine, int src, int dst, int ctx, int tag,
           ConstBuf send_buf, Buf recv_buf, bool is_send)
      : gate_(machine.engine()) {
    if (is_send)
      machine.post_send(src, dst, ctx, tag, send_buf, &gate_, nullptr);
    else
      machine.post_recv(src, dst, ctx, tag, recv_buf, &gate_, nullptr);
  }
  PostedOp(const PostedOp&) = delete;
  PostedOp& operator=(const PostedOp&) = delete;

  /// Awaitable: resumes once the transfer has completed.
  auto wait() { return gate_.wait(); }

 private:
  desim::Gate gate_;
};

}  // namespace hs::mpc
