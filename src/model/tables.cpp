#include "model/tables.hpp"

#include <cmath>

namespace hs::model {

std::vector<TableRow> table1_symbolic() {
  return {
      {"SUMMA", "2n^3/p", "log2(p) * n/b", "-", "log2(p) * n^2/sqrt(p)", "-"},
      {"HSUMMA", "2n^3/p", "log2(p/G) * n/b", "log2(G) * n/B",
       "log2(p/G) * n^2/sqrt(p)", "log2(G) * n^2/sqrt(p)"},
  };
}

std::vector<TableRow> table2_symbolic() {
  return {
      {"SUMMA", "2n^3/p", "(log2(p) + 2(sqrt(p)-1)) * n/b", "-",
       "4(1 - 1/sqrt(p)) * n^2/sqrt(p)", "-"},
      {"HSUMMA", "2n^3/p", "(log2(p/G) + 2(sqrt(p/G)-1)) * n/b",
       "(log2(G) + 2(sqrt(G)-1)) * n/B",
       "4(1 - sqrt(G)/sqrt(p)) * n^2/sqrt(p)",
       "4(1 - 1/sqrt(G)) * n^2/sqrt(p)"},
      {"HSUMMA(G=sqrt(p), b=B)", "2n^3/p",
       "(log2(p) + 4(p^(1/4)-1)) * n/b", "(included)",
       "8(1 - 1/p^(1/4)) * n^2/sqrt(p)", "(included)"},
  };
}

std::vector<NumericRow> evaluate_table(net::BcastAlgo algo, double n, double p,
                                       double b, double groups,
                                       const PlatformModel& platform) {
  std::vector<NumericRow> rows;
  rows.push_back({"SUMMA", summa_cost(n, p, b, algo, platform)});
  rows.push_back(
      {"HSUMMA(G=" + std::to_string(static_cast<long long>(groups)) + ")",
       hsumma_cost(n, p, groups, b, b, algo, platform)});
  const double opt = std::sqrt(p);
  rows.push_back({"HSUMMA(G=sqrt(p))",
                  hsumma_cost(n, p, opt, b, b, algo, platform)});
  return rows;
}

}  // namespace hs::model
