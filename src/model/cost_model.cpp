#include "model/cost_model.hpp"

#include <cmath>

#include "common/check.hpp"

namespace hs::model {

namespace {

double log2d(double x) { return std::log2(x); }

}  // namespace

net::BcastCoefficients continuous_coefficients(net::BcastAlgo algo, double q,
                                               double elements) {
  HS_REQUIRE(q >= 1.0);
  if (q <= 1.0) return {0.0, 0.0};
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(elements * kElementBytes);
  switch (net::resolve_auto(algo, static_cast<int>(q), bytes)) {
    case net::BcastAlgo::Flat:
      return {q - 1.0, q - 1.0};
    case net::BcastAlgo::Binomial:
      return {log2d(q), log2d(q)};
    case net::BcastAlgo::ScatterRingAllgather:
      return {log2d(q) + q - 1.0, 2.0 * (1.0 - 1.0 / q)};
    case net::BcastAlgo::ScatterRecDblAllgather:
      return {2.0 * log2d(q), 2.0 * (1.0 - 1.0 / q)};
    case net::BcastAlgo::Pipelined: {
      const double segments = std::max(
          1.0, std::ceil(static_cast<double>(bytes) /
                         static_cast<double>(net::kPipelineSegmentBytes)));
      const double rounds = q - 2.0 + segments;
      return {rounds, elements > 0.0 ? rounds / segments : 0.0};
    }
    case net::BcastAlgo::MpichAuto:
      break;
  }
  HS_REQUIRE_MSG(false, "unreachable broadcast algorithm");
  return {};
}

CostBreakdown summa_cost(double n, double p, double b, net::BcastAlgo algo,
                         const PlatformModel& platform) {
  HS_REQUIRE(n > 0 && p >= 1 && b > 0);
  const double q = std::sqrt(p);
  const double steps = n / b;
  const double panel_elements = (n / q) * b;  // per-broadcast message
  const auto k = continuous_coefficients(algo, q, panel_elements);

  CostBreakdown cost;
  // Row broadcast of A and column broadcast of B per step: factor 2.
  cost.latency = 2.0 * steps * k.latency_factor * platform.alpha;
  cost.bandwidth = 2.0 * (n * n / q) * k.bandwidth_factor *
                   platform.beta_element();
  cost.compute = 2.0 * n * n * n / p * platform.gamma_flop;
  return cost;
}

CostBreakdown hsumma_cost(double n, double p, double groups, double b,
                          double outer_b, net::BcastAlgo algo,
                          const PlatformModel& platform) {
  HS_REQUIRE(n > 0 && p >= 1 && b > 0 && outer_b >= b);
  HS_REQUIRE_MSG(groups >= 1.0 && groups <= p,
                 "group count must lie in [1, p]");
  const double q = std::sqrt(p);
  const double sqrt_g = std::sqrt(groups);
  const double inner_q = q / sqrt_g;  // sqrt(p/G)

  // Outer phase: n/B steps of (n/sqrt p)*B-element broadcasts among sqrt(G)
  // group representatives.
  const double outer_elements = (n / q) * outer_b;
  const auto outer = continuous_coefficients(algo, sqrt_g, outer_elements);
  // Inner phase: n/b steps of (n/sqrt p)*b-element broadcasts among
  // sqrt(p/G) ranks.
  const double inner_elements = (n / q) * b;
  const auto inner = continuous_coefficients(algo, inner_q, inner_elements);

  CostBreakdown cost;
  cost.latency = 2.0 * platform.alpha *
                 ((n / outer_b) * outer.latency_factor +
                  (n / b) * inner.latency_factor);
  cost.bandwidth = 2.0 * (n * n / q) * platform.beta_element() *
                   (outer.bandwidth_factor + inner.bandwidth_factor);
  cost.compute = 2.0 * n * n * n / p * platform.gamma_flop;
  return cost;
}

MultilevelCost multilevel_cost(double n, double p,
                               const std::vector<int>& row_factors,
                               const std::vector<int>& col_factors, double b,
                               net::BcastAlgo algo,
                               const PlatformModel& platform) {
  HS_REQUIRE(n > 0 && p >= 1 && b > 0);
  const double q = std::sqrt(p);
  const double steps = n / b;
  const double elements = (n / q) * b;  // per-broadcast message, any level

  MultilevelCost out;
  // One dimension's phase chain, mirroring hier_bcast_stages: factors of 1
  // are skipped but keep their level slot, a factor equal to the remaining
  // extent flattens, and whatever remains broadcasts as the last phase.
  const auto add_chain = [&](const std::vector<int>& factors) {
    double remaining = q;
    int level = 0;
    const auto add_phase = [&](double participants) {
      if (participants <= 1.0) return;
      const auto k = continuous_coefficients(algo, participants, elements);
      const double latency = steps * k.latency_factor * platform.alpha;
      const double bandwidth =
          steps * elements * k.bandwidth_factor * platform.beta_element();
      out.cost.latency += latency;
      out.cost.bandwidth += bandwidth;
      if (out.level_comm.size() <= static_cast<std::size_t>(level))
        out.level_comm.resize(static_cast<std::size_t>(level) + 1);
      out.level_comm[static_cast<std::size_t>(level)] += latency + bandwidth;
    };
    for (const int factor : factors) {
      if (remaining <= 1.0) return;
      HS_REQUIRE_MSG(factor >= 1,
                     "chain factor " << factor << " must be >= 1");
      if (factor > 1) {
        add_phase(static_cast<double>(factor));
        remaining /= static_cast<double>(factor);
        if (remaining <= 1.0) return;
      }
      ++level;
    }
    add_phase(remaining);
  };
  add_chain(row_factors);
  add_chain(col_factors);
  out.cost.compute = 2.0 * n * n * n / p * platform.gamma_flop;
  return out;
}

bool has_interior_minimum(double n, double p, double b,
                          const PlatformModel& platform) {
  // eq. 10: alpha / beta > 2 n b / p, with beta per element.
  return platform.alpha / platform.beta_element() > 2.0 * n * b / p;
}

double hsumma_vdg_derivative(double n, double p, double groups, double b,
                             const PlatformModel& platform) {
  // eq. 9: dT/dG = (G - sqrt p) / (G sqrt G) * (n alpha / b - 2 n^2 beta / p).
  const double lead = (groups - std::sqrt(p)) / (groups * std::sqrt(groups));
  return lead * (n * platform.alpha / b -
                 2.0 * n * n * platform.beta_element() / p);
}

double predicted_optimal_groups(double n, double p, double b,
                                const PlatformModel& platform) {
  return has_interior_minimum(n, p, b, platform) ? std::sqrt(p) : 1.0;
}

std::vector<SweepPoint> group_sweep(double n, double p, double b,
                                    double outer_b, net::BcastAlgo algo,
                                    const PlatformModel& platform,
                                    const std::vector<double>& group_counts) {
  std::vector<SweepPoint> points;
  points.reserve(group_counts.size());
  for (double groups : group_counts)
    points.push_back(
        {groups, hsumma_cost(n, p, groups, b, outer_b, algo, platform)});
  return points;
}

std::vector<double> pow2_group_counts(double p) {
  std::vector<double> counts;
  for (double g = 1.0; g <= p; g *= 2.0) counts.push_back(g);
  if (counts.empty() || counts.back() != p) counts.push_back(p);
  return counts;
}

}  // namespace hs::model
