// Section IV of the paper: closed-form communication/computation models of
// SUMMA and HSUMMA and the G = sqrt(p) extremum analysis.
//
// The paper models any homogeneous broadcast as
//     T_bcast(m, q) = L(q) * alpha + m * W(q) * beta            (eq. 1)
// and derives (square n x n matrices on a sqrt(p) x sqrt(p) grid, inner
// block b, outer block B):
//     T_SUMMA  = 2 [ (n/b) L(sqrt p) alpha + (n^2/sqrt p) W(sqrt p) beta ]
//     T_HSUMMA = latency + bandwidth with each L/W split into the
//                inter-group (sqrt G) and intra-group (sqrt(p/G)) factors.
// dT/dG vanishes at G = sqrt(p); it is a minimum iff alpha/beta > 2nb/p
// (eq. 10, beta in seconds per *element*), otherwise G in {1, p} is
// optimal — i.e. HSUMMA never loses to SUMMA.
//
// Message sizes here are tracked in elements of kElementBytes to match the
// paper's formulas; PlatformModel converts from per-byte platform
// parameters.
#pragma once

#include <cstdint>
#include <vector>

#include "net/bcast_cost.hpp"
#include "net/platform.hpp"

namespace hs::model {

inline constexpr double kElementBytes = 8.0;

struct PlatformModel {
  double alpha = 0.0;       // latency, seconds
  double beta_byte = 0.0;   // reciprocal bandwidth, seconds per byte
  double gamma_flop = 0.0;  // seconds per flop

  double beta_element() const { return beta_byte * kElementBytes; }

  static PlatformModel from(const net::Platform& platform) {
    return {platform.alpha, platform.beta, platform.gamma_flop};
  }
};

/// Continuous broadcast coefficients L(q), W(q) for q participants and a
/// message of `elements` (needed by Pipelined, whose coefficients depend on
/// the segment count). Continuous log2 — the simulator's ceil(log2) agrees
/// at powers of two.
net::BcastCoefficients continuous_coefficients(net::BcastAlgo algo, double q,
                                               double elements);

struct CostBreakdown {
  double latency = 0.0;
  double bandwidth = 0.0;
  double compute = 0.0;

  double comm() const { return latency + bandwidth; }
  double total() const { return comm() + compute; }
};

/// SUMMA on a sqrt(p) x sqrt(p) grid (the paper's Section IV-A).
CostBreakdown summa_cost(double n, double p, double b, net::BcastAlgo algo,
                         const PlatformModel& platform);

/// HSUMMA with G groups, inner block b, outer block B (Section IV-B).
/// G = 1 reduces to SUMMA with block b; G = p to SUMMA with block B.
CostBreakdown hsumma_cost(double n, double p, double groups, double b,
                          double outer_b, net::BcastAlgo algo,
                          const PlatformModel& platform);

/// Multi-level HSUMMA (b = B): per dimension the per-step panel broadcast
/// over sqrt(p) ranks decomposes into one phase per applied chain factor
/// plus the trailing remainder phase — T_bcast(m, q) summed over the
/// chain, with the same phase semantics as core::hier_bcast (factors of 1
/// skipped, a factor equal to the remaining extent flattens). Empty chains
/// reduce to summa_cost(n, p, b); single-factor chains {J} x {I} with
/// I * J = G reduce to hsumma_cost(n, p, G, b, b) (pinned by tests).
struct MultilevelCost {
  CostBreakdown cost;
  /// Communication seconds per chain level (row + column chains merged by
  /// level index; the trailing remainder phase lands one past the deepest
  /// applied factor of its chain).
  std::vector<double> level_comm;
};
MultilevelCost multilevel_cost(double n, double p,
                               const std::vector<int>& row_factors,
                               const std::vector<int>& col_factors, double b,
                               net::BcastAlgo algo,
                               const PlatformModel& platform);

/// The paper's eq. 10 test: does the HSUMMA cost have its minimum at an
/// interior G (at G = sqrt(p)) rather than at the SUMMA-equivalent
/// endpoints?
bool has_interior_minimum(double n, double p, double b,
                          const PlatformModel& platform);

/// d T_HSUMMA / dG for the van de Geijn broadcast (the paper's eq. 9).
double hsumma_vdg_derivative(double n, double p, double groups, double b,
                             const PlatformModel& platform);

/// Model-predicted optimal group count: sqrt(p) when the interior minimum
/// exists, otherwise 1.
double predicted_optimal_groups(double n, double p, double b,
                                const PlatformModel& platform);

/// Evaluate hsumma_cost over a sweep of group counts.
struct SweepPoint {
  double groups;
  CostBreakdown cost;
};
std::vector<SweepPoint> group_sweep(double n, double p, double b,
                                    double outer_b, net::BcastAlgo algo,
                                    const PlatformModel& platform,
                                    const std::vector<double>& group_counts);

/// Powers of two (and p itself) in [1, p] — the sweep the paper plots.
std::vector<double> pow2_group_counts(double p);

}  // namespace hs::model
