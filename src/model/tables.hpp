// Symbolic and numeric renderings of the paper's Table I and Table II
// (SUMMA vs HSUMMA cost factors under binomial and van de Geijn
// broadcasts).
#pragma once

#include <string>
#include <vector>

#include "model/cost_model.hpp"

namespace hs::model {

struct TableRow {
  std::string algorithm;
  std::string computation;
  std::string latency_inside;
  std::string latency_between;
  std::string bandwidth_inside;
  std::string bandwidth_between;
};

/// The symbolic rows of Table I (binomial tree broadcast).
std::vector<TableRow> table1_symbolic();

/// The symbolic rows of Table II (van de Geijn broadcast), including the
/// G = sqrt(p), b = B specialization.
std::vector<TableRow> table2_symbolic();

/// Numeric evaluation of a table on a platform: each row gives the
/// evaluated latency/bandwidth/compute seconds for SUMMA, HSUMMA(G), and
/// HSUMMA(G = sqrt p).
struct NumericRow {
  std::string algorithm;
  CostBreakdown cost;
};
std::vector<NumericRow> evaluate_table(net::BcastAlgo algo, double n, double p,
                                       double b, double groups,
                                       const PlatformModel& platform);

}  // namespace hs::model
