// KernelRegistry: the single dispatch site for every distributed kernel.
//
// Each Algorithm variant — the SUMMA/HSUMMA matrix-multiplication family,
// the baselines, and the one-sided factorizations (LU, Cholesky) — registers
// one KernelDescriptor: canonical name and aliases, parameter-validation and
// grid/group-adaptation policy, a per-rank program factory, and a result
// verifier. core::run(), exec::run_sim_job(), the group tuner and the bench
// CLIs all dispatch through the registry instead of their own switches, so
// adding a kernel (e.g. QR) is one registration in kernel_registry.cpp:
// the runner, the parallel sweep executor, the result cache and the tuner
// pick it up with no further plumbing.
//
// Layering: the registry owns the *harness* knowledge (how to build inputs,
// spawn per-rank programs, verify outputs); the kernels themselves
// (core/summa.hpp, core/lu.hpp, ...) stay plain coroutine factories with no
// registry dependency.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/runner.hpp"

namespace hs::core {

/// Per-run kernel state created by KernelDescriptor::make_run: owns the
/// Real-mode input blocks for the duration of one simulation and knows how
/// to build each rank's program and how to verify the final result.
class KernelRun {
 public:
  virtual ~KernelRun() = default;

  /// Build the coroutine program for `rank`. Called once per rank, in rank
  /// order, before the engine runs.
  virtual desim::Task<void> program(mpc::Machine& machine,
                                    const RunOptions& options, int rank,
                                    trace::RankStats* stats) = 0;

  /// Max |result - reference| over the distributed output. Called only when
  /// options.verify (which requires Real payloads).
  virtual double verify(const RunOptions& options) = 0;
};

/// Communication/computation overlap capability, per kernel:
///   None         — the kernel has no overlapped execution; any requested
///                  overlap or lookahead is a hard error.
///   DoubleBuffer — a hand-rolled double-buffered pipeline only; lookahead
///                  is capped at D = 1 (the cyclic kernels).
///   TaskPlan     — the kernel lowers to a task-plan schedule
///                  (core/task_plan.hpp) and accepts any lookahead depth.
enum class OverlapSupport { None, DoubleBuffer, TaskPlan };

struct KernelDescriptor {
  Algorithm kernel = Algorithm::Summa;
  /// Canonical name: CLI spelling, engine task names, error messages.
  std::string_view name;
  std::vector<std::string_view> aliases;
  /// One-sided factorization: the problem is square (m == k == n) and the
  /// executor's group-count adaptation maps G onto hierarchical panel
  /// broadcast level factors instead of an HSUMMA group arrangement.
  bool factorization = false;
  bool requires_square_grid = false;
  /// Communication/computation overlap capability (see OverlapSupport).
  OverlapSupport overlap_support = OverlapSupport::None;
  /// RunOptions::layers > 1 replication (2.5D family).
  bool supports_layers = false;
  /// Group-count family policy for exec::run_sim_job: a requested group
  /// count G <= 1 dispatches `flat`, G > 1 dispatches `hier` with
  /// grid::group_arrangement. flat == hier == kernel means the kernel has
  /// no group dimension and ignores the request.
  Algorithm flat = Algorithm::Summa;
  Algorithm hier = Algorithm::Summa;
  /// Multi-level policy: the kernel a depth >= 2 GroupHierarchy recurses
  /// into (the chain's per-level arrangement becomes its row/col level
  /// factors). Unset means chains are a hard error for this kernel.
  std::optional<Algorithm> multilevel;
  /// Kernel-specific precondition checks (grid shape, divisibility, ...).
  /// Null when the per-rank program performs all validation itself.
  void (*validate)(const RunOptions& options) = nullptr;
  /// Per-run state factory; materializes Real-mode inputs.
  std::unique_ptr<KernelRun> (*make_run)(const RunOptions& options) = nullptr;
};

/// All registered kernels, in Algorithm enumerator order.
const std::vector<KernelDescriptor>& all_kernels();

/// Descriptor for one kernel (total: every Algorithm value is registered).
const KernelDescriptor& kernel_descriptor(Algorithm kernel);

/// Lookup by canonical name or alias; nullptr when unknown.
const KernelDescriptor* find_kernel(std::string_view name);

/// "summa, hsumma, ..., lu, cholesky" — for CLI help and error messages.
std::string kernel_name_list();

/// Kernels whose overlap_support is not None — for the hard error emitted
/// when --overlap/--lookahead is requested on an unsupporting kernel.
std::string overlap_kernel_name_list();

/// Kernels with a multi-level policy — for the hard error emitted when a
/// depth >= 2 hierarchy is requested on an unsupporting kernel.
std::string multilevel_kernel_name_list();

/// The registry's hierarchy adaptation policy, shared by exec::run_sim_job
/// and the benches: rewrites options.algorithm plus groups / level factors
/// from the requested chain. Depth 0 dispatches the kernel's `flat` family
/// member and depth 1 its `hier` member with grid::group_arrangement —
/// exactly the legacy scalar policy — while depth >= 2 recurses into the
/// kernel's `multilevel` policy with the chain's per-level arrangement.
/// Factorizations map the chain onto panel-broadcast level factors at any
/// depth. `options` must already carry the resolved grid.
void adapt_hierarchy(const GroupHierarchy& hierarchy, RunOptions& options);

/// Legacy scalar entry point: adapt_hierarchy(GroupHierarchy::from_scalar).
void adapt_groups(int groups, RunOptions& options);

}  // namespace hs::core
