// GroupHierarchy: the first-class multi-level group spine.
//
// The paper tunes one scalar group count G; its own future work asks for
// more than two levels of hierarchy. A GroupHierarchy is the ordered chain
// of per-level group counts (G1, G2, ..., GL), outermost first: level 1
// partitions the process grid into G1 groups, level 2 partitions each of
// those groups into G2 subgroups, and so on; the innermost groups run plain
// SUMMA. The chain is what COSMA/CAPS-style analyses actually optimize —
// the *shape* of the recursion, not one split factor.
//
// Everything downstream speaks this type: KernelRegistry::adapt_hierarchy
// maps a chain onto per-kernel policies (the SUMMA family recurses into the
// multilevel kernel, factorizations map the chain onto panel-broadcast
// level factors), exec::SimJob carries it into the canonical cache key
// (depth <= 1 chains emit the legacy scalar `;groups=` key byte-for-byte;
// only depth >= 2 appends `;h=`), and tune::tune_groups searches candidate
// chains jointly with the look-ahead depth. from_scalar(G) is the bridge
// that keeps every scalar-G call site working unchanged.
//
// Canonical form: factors of 1 are dropped at construction, so equal
// hierarchies always render to equal strings ("flat", "8", "8x4x2") — the
// property the cache key and the tuner's dedup rely on.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "grid/process_grid.hpp"

namespace hs::core {

class GroupHierarchy {
 public:
  /// Flat: no grouping at any level (plain SUMMA for the GEMM family).
  GroupHierarchy() = default;

  /// Chain of per-level group counts, outermost first. Factors must be
  /// >= 1; factors of 1 are dropped (canonical form).
  explicit GroupHierarchy(std::vector<int> levels);

  /// The scalar-G bridge: G <= 1 -> flat, otherwise the depth-1 chain {G}.
  static GroupHierarchy from_scalar(int groups);

  /// Parses "flat", "" (both flat), "8" or "8x4x2". Inverse of to_string.
  static GroupHierarchy parse(std::string_view text);

  const std::vector<int>& levels() const noexcept { return levels_; }
  int depth() const noexcept { return static_cast<int>(levels_.size()); }
  bool is_flat() const noexcept { return levels_.empty(); }
  /// Expressible as a legacy scalar group count (depth <= 1).
  bool is_scalar() const noexcept { return levels_.size() <= 1; }
  /// The legacy scalar group count: 1 when flat, G1 when depth 1.
  /// Precondition: is_scalar().
  int scalar() const;
  /// G1 * G2 * ... * GL (1 when flat) — the total innermost group count.
  long long product() const noexcept;

  /// Canonical string: "flat" or "8x4x2". parse(to_string()) round-trips.
  std::string to_string() const;

  friend bool operator==(const GroupHierarchy& a,
                         const GroupHierarchy& b) = default;

 private:
  std::vector<int> levels_;  // canonical: every entry >= 2
};

/// The chain mapped onto a concrete grid: per level l, an I_l x J_l group
/// arrangement of that level's G_l groups on the remaining sub-grid (via
/// grid::group_arrangement, most-square split). The J factors form the
/// hier_bcast chain along grid rows, the I factors along grid columns —
/// with depth 1 this is exactly the legacy HSUMMA group arrangement /
/// factorization level mapping.
struct HierarchyArrangement {
  /// I_l x J_l per chain level (same length as the chain).
  std::vector<grid::GridShape> levels;
  /// {J_1, ..., J_L}: row-broadcast factor chain (entries of 1 kept, so
  /// indices align with chain levels; hier_bcast skips them).
  std::vector<int> row_levels;
  /// {I_1, ..., I_L}: column-broadcast factor chain.
  std::vector<int> col_levels;
  /// The sub-grid inside one innermost group (runs plain SUMMA).
  grid::GridShape leaf{1, 1};
};

/// Arranges `hierarchy` on `grid`, level by level. Throws (HS_REQUIRE) when
/// some level has no valid arrangement on the remaining sub-grid.
HierarchyArrangement arrange_hierarchy(const GroupHierarchy& hierarchy,
                                       grid::GridShape grid);

/// World ranks of the group leaders per chain level, outermost first (one
/// inner vector per level, ascending; flat chains yield no levels). The
/// leader of a group is its origin rank — the top-left process of the
/// group's sub-grid — which is the rank the level's inter-group broadcast
/// stages route through, so these are the ranks worth sampling to see every
/// level of the hierarchy in a trace (trace::TraceSample "leaders").
/// Level l holds G_1 * ... * G_{l+1} entries (every innermost group's
/// leader, not just one subtree's). Throws like arrange_hierarchy when the
/// chain does not fit.
std::vector<std::vector<int>> hierarchy_level_leaders(
    const GroupHierarchy& hierarchy, grid::GridShape grid);

/// Validation predicate: does every level of the chain arrange on `grid`?
bool hierarchy_fits(const GroupHierarchy& hierarchy, grid::GridShape grid);

/// Balanced chain with product exactly `groups`: balanced_levels factors
/// plus the remainder, at most `levels` entries (e.g. 64 over 3 levels ->
/// {4, 4, 4}). The tuner's divisor-chain candidate generator.
std::vector<int> full_group_chain(int groups, int levels);

/// Tuner/bench candidate chains for `grid`: balanced divisor chains of
/// every valid group count, depths 2..max_levels, deduplicated, only
/// chains that arrange on the grid. Empty when max_levels < 2.
std::vector<GroupHierarchy> candidate_hierarchies(grid::GridShape grid,
                                                  int max_levels);

}  // namespace hs::core
