// Contiguous panel scratch buffers that honor the payload mode.
//
// A PanelBuffer is the staging area a rank uses to hold a pivot panel it
// sends or receives. In Real mode it owns rows*cols doubles; in Phantom
// mode it owns nothing but still describes the same wire size, so the
// algorithms' communication calls are byte-for-byte identical in both
// modes.
#pragma once

#include <vector>

#include "core/spec.hpp"
#include "la/matrix.hpp"
#include "mpc/buffer.hpp"

namespace hs::core {

class PanelBuffer {
 public:
  PanelBuffer(index_t rows, index_t cols, PayloadMode mode)
      : rows_(rows), cols_(cols), mode_(mode) {
    HS_REQUIRE(rows >= 0 && cols >= 0);
    if (mode == PayloadMode::Real)
      storage_.resize(static_cast<std::size_t>(rows * cols));
  }

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  bool real() const noexcept { return mode_ == PayloadMode::Real; }

  /// Payload over the whole panel.
  mpc::Buf buf() {
    if (!real()) return mpc::Buf::phantom(static_cast<std::size_t>(rows_ * cols_));
    return mpc::Buf(std::span<double>(storage_));
  }

  /// Payload over rows [r0, r0+nr) (contiguous in row-major storage).
  mpc::Buf row_slice(index_t r0, index_t nr) {
    HS_REQUIRE(r0 >= 0 && nr >= 0 && r0 + nr <= rows_);
    const auto offset = static_cast<std::size_t>(r0 * cols_);
    const auto count = static_cast<std::size_t>(nr * cols_);
    if (!real()) return mpc::Buf::phantom(count);
    return mpc::Buf(std::span<double>(storage_).subspan(offset, count));
  }

  /// Matrix view over the storage (Real mode only).
  la::MatrixView view() {
    HS_REQUIRE_MSG(real(), "PanelBuffer::view on a phantom panel");
    return la::MatrixView(storage_.data(), rows_, cols_, cols_);
  }
  la::ConstMatrixView view() const {
    HS_REQUIRE_MSG(real(), "PanelBuffer::view on a phantom panel");
    return la::ConstMatrixView(storage_.data(), rows_, cols_, cols_);
  }

 private:
  index_t rows_;
  index_t cols_;
  PayloadMode mode_;
  std::vector<double> storage_;
};

}  // namespace hs::core
