// SUMMA — Scalable Universal Matrix Multiplication Algorithm
// (van de Geijn & Watts, 1997), the paper's baseline and the state of the
// art it redesigns.
//
// C = A*B over an s x t grid with block-checkerboard distribution: k/b
// steps, each broadcasting the pivot column panel of A along grid rows and
// the pivot row panel of B along grid columns, followed by a local rank-b
// update.
#pragma once

#include "core/spec.hpp"
#include "desim/task.hpp"
#include "mpc/comm.hpp"
#include "trace/phase.hpp"
#include "trace/recorder.hpp"

namespace hs::core {

struct SummaArgs {
  mpc::Comm comm;              // the grid communicator (size == s*t)
  grid::GridShape shape;       // s x t
  ProblemSpec problem;
  LocalBlocks* local = nullptr;        // nullptr in Phantom mode
  trace::RankStats* stats = nullptr;   // optional
  std::optional<net::BcastAlgo> bcast_algo;  // default: machine config
  /// Communication/computation overlap (the paper's future work): step
  /// q+1's panel broadcasts are forked before step q's local update, with
  /// double-buffered panels; comm_time then counts only the *exposed*
  /// (non-hidden) communication.
  bool overlap = false;
  /// Optional structured trace sink (detached by default). Emits one step
  /// marker per pivot step and wraps compute charges in spans; collective
  /// spans come from the mpc layer. In overlap mode the step stamped on a
  /// forked broadcast is the step current at fork time (best-effort).
  trace::RankTracer tracer;
};

/// The per-rank SUMMA program. Preconditions: s | m, t | n, (t*b) | k and
/// (s*b) | k so every pivot panel lies within one grid row/column (the
/// paper's divisibility assumptions).
desim::Task<void> summa_rank(SummaArgs args);

/// Divisibility checks shared with HSUMMA; throws PreconditionError with a
/// precise message on violation.
void check_summa_divisibility(grid::GridShape shape, const ProblemSpec& p);

}  // namespace hs::core
