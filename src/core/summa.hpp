// SUMMA — Scalable Universal Matrix Multiplication Algorithm
// (van de Geijn & Watts, 1997), the paper's baseline and the state of the
// art it redesigns.
//
// C = A*B over an s x t grid with block-checkerboard distribution: k/b
// steps, each broadcasting the pivot column panel of A along grid rows and
// the pivot row panel of B along grid columns, followed by a local rank-b
// update.
#pragma once

#include "core/spec.hpp"
#include "desim/task.hpp"
#include "mpc/comm.hpp"
#include "trace/phase.hpp"
#include "trace/recorder.hpp"

namespace hs::core {

struct SummaArgs {
  mpc::Comm comm;              // the grid communicator (size == s*t)
  grid::GridShape shape;       // s x t
  ProblemSpec problem;
  LocalBlocks* local = nullptr;        // nullptr in Phantom mode
  trace::RankStats* stats = nullptr;   // optional
  std::optional<net::BcastAlgo> bcast_algo;  // default: machine config
  /// Communication/computation look-ahead depth (the paper's future work).
  /// 0 = classic blocking loop; >= 1 runs the task-plan scheduler
  /// (core/task_plan.hpp) with D+1 panel slots — D=1 is the double-buffered
  /// pipeline, deeper D adds nothing for flat SUMMA (the broadcast channel
  /// serializes) but is accepted. comm_time then counts only the *exposed*
  /// (non-hidden) communication.
  int lookahead = 0;
  /// Optional structured trace sink (detached by default). Emits one step
  /// marker per pivot step and wraps compute charges in spans; collective
  /// spans come from the mpc layer. With lookahead >= 1 the step stamped on
  /// a forked broadcast is the step current at fork time (best-effort).
  trace::RankTracer tracer;
};

/// The per-rank SUMMA program. Preconditions: s | m, t | n, (t*b) | k and
/// (s*b) | k so every pivot panel lies within one grid row/column (the
/// paper's divisibility assumptions).
desim::Task<void> summa_rank(SummaArgs args);

/// Divisibility checks shared with HSUMMA; throws PreconditionError with a
/// precise message on violation.
void check_summa_divisibility(grid::GridShape shape, const ProblemSpec& p);

}  // namespace hs::core
