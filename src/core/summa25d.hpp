// 2.5D-style replicated SUMMA (Solomonik & Demmel, 2011) — the
// memory-for-communication baseline the paper contrasts HSUMMA against.
//
// The p = q*q*c ranks form c layers of q x q grids. Inputs live on layer 0;
// they are replicated to all layers along the depth communicators, each
// layer then runs SUMMA over its contiguous 1/c share of the pivot steps,
// and the partial C contributions are summed back to layer 0 with a
// depth reduction. This simplified formulation keeps the defining 2.5D
// trade-off — c-fold memory for ~1/c of the broadcast communication plus
// replication/reduction cost — without the full 2.5D shifting schedule
// (documented in DESIGN.md).
#pragma once

#include "core/spec.hpp"
#include "desim/task.hpp"
#include "mpc/comm.hpp"
#include "trace/phase.hpp"

namespace hs::core {

struct Summa25DArgs {
  mpc::Comm comm;         // size q*q*c; rank layout: layer-major
  grid::GridShape shape;  // q x q (per layer)
  int layers = 1;         // c
  ProblemSpec problem;
  LocalBlocks* local = nullptr;  // inputs significant on layer 0 only
  trace::RankStats* stats = nullptr;
  std::optional<net::BcastAlgo> bcast_algo;
};

/// Per-rank program. On return, layer 0 holds C (other layers hold their
/// partial contribution only).
desim::Task<void> summa25d_rank(Summa25DArgs args);

}  // namespace hs::core
