// Numerical verification of distributed results against generator-defined
// inputs.
//
// Inputs are pure functions of global indices (la::ElementFn), so the
// reference C block of any rank can be recomputed locally from the
// generators — no result shipping, no second distributed run.
#pragma once

#include "core/spec.hpp"
#include "grid/distribution.hpp"
#include "la/generate.hpp"
#include "la/matrix.hpp"

namespace hs::core {

/// Reference C block [row0, row0+rows) x [col0, col0+cols) of C = A*B with
/// A, B given by element generators and inner dimension k.
la::Matrix reference_c_block(const la::ElementFn& a, const la::ElementFn& b,
                             index_t k, index_t row0, index_t col0,
                             index_t rows, index_t cols);

/// max |c_local - reference| over the block.
double verify_c_block(la::ConstMatrixView c_local, const la::ElementFn& a,
                      const la::ElementFn& b, index_t k, index_t row0,
                      index_t col0);

/// Block-cyclic variant: local element (i, j) corresponds to global
/// (dist.global_row(grid_row, i), dist.global_col(grid_col, j)).
double verify_c_cyclic(la::ConstMatrixView c_local,
                       const grid::BlockCyclicDistribution& dist,
                       int grid_row, int grid_col, const la::ElementFn& a,
                       const la::ElementFn& b, index_t k);

}  // namespace hs::core
