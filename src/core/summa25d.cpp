#include "core/summa25d.hpp"

#include <vector>

#include "core/panel.hpp"
#include "grid/process_grid.hpp"
#include "la/gemm.hpp"
#include "mpc/collectives.hpp"

namespace hs::core {

desim::Task<void> summa25d_rank(Summa25DArgs args) {
  const ProblemSpec& prob = args.problem;
  const int c = args.layers;
  HS_REQUIRE(c >= 1);
  HS_REQUIRE_MSG(args.comm.size() == args.shape.size() * c,
                 "communicator size must be q*q*c");
  const index_t steps_total = prob.k / prob.block;
  HS_REQUIRE_MSG(steps_total % c == 0,
                 "pivot step count " << steps_total
                                     << " must be divisible by layers " << c);

  mpc::Machine& machine = args.comm.machine();
  const int self = args.comm.my_world_rank();
  desim::Engine& engine = machine.engine();
  const int per_layer = args.shape.size();
  const int layer = args.comm.rank() / per_layer;
  const int within = args.comm.rank() % per_layer;

  trace::RankStats scratch_stats;
  trace::RankStats& stats = args.stats ? *args.stats : scratch_stats;

  // Layer communicator (my q x q grid) and depth communicator (same grid
  // position across layers).
  std::vector<int> members;
  members.reserve(static_cast<std::size_t>(per_layer));
  for (int r = 0; r < per_layer; ++r) members.push_back(layer * per_layer + r);
  mpc::Comm layer_comm = args.comm.sub(members);
  members.clear();
  members.reserve(static_cast<std::size_t>(c));
  for (int l = 0; l < c; ++l) members.push_back(l * per_layer + within);
  mpc::Comm depth_comm = args.comm.sub(members);

  const grid::ProcessGrid pg(layer_comm, args.shape);
  const index_t local_m = prob.m / pg.rows();
  const index_t local_n = prob.n / pg.cols();
  const index_t local_k_a = prob.k / pg.cols();
  const index_t local_k_b = prob.k / pg.rows();
  const index_t b = prob.block;
  const bool real = args.local != nullptr;

  // Replicate A and B blocks from layer 0 to all layers.
  {
    mpc::Buf a_buf = real ? mpc::Buf(std::span<double>(
                                args.local->a.data(),
                                static_cast<std::size_t>(local_m * local_k_a)))
                          : mpc::Buf::phantom(
                                static_cast<std::size_t>(local_m * local_k_a));
    mpc::Buf b_buf = real ? mpc::Buf(std::span<double>(
                                args.local->b.data(),
                                static_cast<std::size_t>(local_k_b * local_n)))
                          : mpc::Buf::phantom(
                                static_cast<std::size_t>(local_k_b * local_n));
    trace::PhaseTimer timer(stats.comm_time, engine);
    co_await mpc::bcast(depth_comm, 0, a_buf, args.bcast_algo);
    co_await mpc::bcast(depth_comm, 0, b_buf, args.bcast_algo);
  }

  // My layer's contiguous share of the pivot steps.
  const index_t steps_per_layer = steps_total / c;
  const index_t first_step = static_cast<index_t>(layer) * steps_per_layer;

  PanelBuffer a_panel(local_m, b,
                      real ? PayloadMode::Real : PayloadMode::Phantom);
  PanelBuffer b_panel(b, local_n,
                      real ? PayloadMode::Real : PayloadMode::Phantom);

  for (index_t q = first_step; q < first_step + steps_per_layer; ++q) {
    const index_t pivot = q * b;
    const int a_root = static_cast<int>(pivot / local_k_a);
    if (real && pg.my_col() == a_root) {
      const index_t col0 = pivot - static_cast<index_t>(a_root) * local_k_a;
      a_panel.view().copy_from(args.local->a.block(0, col0, local_m, b));
    }
    {
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await mpc::bcast(pg.row_comm(), a_root, a_panel.buf(),
                          args.bcast_algo);
    }
    const int b_root = static_cast<int>(pivot / local_k_b);
    if (real && pg.my_row() == b_root) {
      const index_t row0 = pivot - static_cast<index_t>(b_root) * local_k_b;
      b_panel.view().copy_from(args.local->b.block(row0, 0, b, local_n));
    }
    {
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await mpc::bcast(pg.col_comm(), b_root, b_panel.buf(),
                          args.bcast_algo);
    }
    const double flops = la::gemm_flops(local_m, local_n, b);
    {
      trace::PhaseTimer timer(stats.comp_time, engine);
      co_await machine.compute(self, flops);
    }
    if (real)
      la::gemm(a_panel.view(), b_panel.view(), args.local->c.view());
    stats.flops += static_cast<std::uint64_t>(flops);
  }

  // Sum partial C contributions to layer 0.
  if (c > 1) {
    const auto c_count = static_cast<std::size_t>(local_m * local_n);
    std::vector<double> result;
    mpc::ConstBuf send = real ? mpc::ConstBuf(std::span<const double>(
                                    args.local->c.data(), c_count))
                              : mpc::ConstBuf::phantom(c_count);
    mpc::Buf recv;
    if (real && layer == 0) {
      result.resize(c_count);
      recv = mpc::Buf(std::span<double>(result));
    } else {
      recv = real ? mpc::Buf{} : mpc::Buf::phantom(c_count);
    }
    {
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await mpc::reduce(depth_comm, 0, send, recv);
    }
    if (real && layer == 0)
      std::copy(result.begin(), result.end(), args.local->c.data());
  }
}

}  // namespace hs::core
