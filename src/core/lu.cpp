#include "core/lu.hpp"

#include <algorithm>

#include "core/hier_bcast.hpp"
#include "core/panel.hpp"
#include "core/task_plan.hpp"
#include "grid/distribution.hpp"
#include "grid/process_grid.hpp"
#include "la/factor.hpp"
#include "la/gemm.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"

namespace hs::core {

void check_lu_preconditions(grid::GridShape shape, index_t n, index_t block) {
  HS_REQUIRE_MSG(n > 0 && block > 0, "n and block must be positive");
  HS_REQUIRE_MSG(n % shape.rows == 0 && n % shape.cols == 0,
                 "n=" << n << " must be divisible by both grid dimensions");
  HS_REQUIRE_MSG((n / shape.rows) % block == 0 &&
                     (n / shape.cols) % block == 0,
                 "block=" << block << " must divide the local extents "
                          << n / shape.rows << " and " << n / shape.cols);
}

la::ElementFn lu_input_elements(std::uint64_t seed, index_t n) {
  const la::ElementFn noise = la::uniform_elements(seed);
  const double shift = static_cast<double>(n);
  return [noise, shift](index_t i, index_t j) {
    return noise(i, j) + (i == j ? shift : 0.0);
  };
}

desim::Task<void> lu_rank(LuArgs args) {
  if (args.lookahead > 0) {
    // Overlapped execution is a task-plan schedule (core/task_plan.hpp).
    co_await lu_task_plan(std::move(args));
    co_return;
  }
  check_lu_preconditions(args.shape, args.n, args.block);
  const grid::ProcessGrid pg(args.comm, args.shape);
  mpc::Machine& machine = args.comm.machine();
  const int self = args.comm.my_world_rank();
  desim::Engine& engine = machine.engine();

  const index_t b = args.block;
  const index_t local_rows = args.n / pg.rows();
  const index_t local_cols = args.n / pg.cols();
  const PayloadMode mode =
      args.local_a == nullptr ? PayloadMode::Phantom : PayloadMode::Real;

  trace::RankStats scratch_stats;
  trace::RankStats& stats = args.stats ? *args.stats : scratch_stats;

  PanelBuffer diag(b, b, mode);
  PanelBuffer l_panel(local_rows, b, mode);  // sized for the worst case
  PanelBuffer u_panel(b, local_cols, mode);

  const index_t steps = args.n / b;
  for (index_t k = 0; k < steps; ++k) {
    args.tracer.begin_step(engine, k, trace::Phase::Flat);
    const index_t pivot = k * b;
    const int owner_row = static_cast<int>(pivot / local_rows);
    const int owner_col = static_cast<int>(pivot / local_cols);
    const index_t local_r0 = pivot - static_cast<index_t>(owner_row) * local_rows;
    const index_t local_c0 = pivot - static_cast<index_t>(owner_col) * local_cols;

    // My trailing region (global indices >= pivot + b), in local terms.
    const index_t row_start =
        std::clamp<index_t>(pivot + b -
                                static_cast<index_t>(pg.my_row()) * local_rows,
                            0, local_rows);
    const index_t col_start =
        std::clamp<index_t>(pivot + b -
                                static_cast<index_t>(pg.my_col()) * local_cols,
                            0, local_cols);
    const index_t trailing_rows = local_rows - row_start;
    const index_t trailing_cols = local_cols - col_start;

    // 1. Factor the diagonal block; share it down the pivot column (for
    //    the L solves) and across the pivot row (for the U solves).
    if (pg.my_row() == owner_row && pg.my_col() == owner_col) {
      const double flops = 2.0 / 3.0 * static_cast<double>(b) *
                           static_cast<double>(b) * static_cast<double>(b);
      {
        trace::PhaseTimer timer(stats.comp_time, engine);
        trace::ComputeSpanGuard span(args.tracer, engine, flops);
        co_await machine.compute(self, flops);
      }
      if (mode == PayloadMode::Real) {
        la::MatrixView block_kk =
            args.local_a->block(local_r0, local_c0, b, b);
        la::lu_factor_inplace(block_kk);
        diag.view().copy_from(block_kk);
      }
    }
    if (pg.my_col() == owner_col) {
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await mpc::bcast(pg.col_comm(), owner_row, diag.buf(),
                          args.bcast_algo);
    }
    if (pg.my_row() == owner_row) {
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await mpc::bcast(pg.row_comm(), owner_col, diag.buf(),
                          args.bcast_algo);
    }

    // 2 + 3a. Pivot-column ranks form their L panel and broadcast it along
    //         their grid row (hierarchically).
    mpc::Buf l_buf = l_panel.row_slice(0, trailing_rows);
    if (trailing_rows > 0) {
      if (pg.my_col() == owner_col) {
        const double flops = static_cast<double>(trailing_rows) *
                             static_cast<double>(b) * static_cast<double>(b);
        {
          trace::PhaseTimer timer(stats.comp_time, engine);
          trace::ComputeSpanGuard span(args.tracer, engine, flops);
          co_await machine.compute(self, flops);
        }
        if (mode == PayloadMode::Real) {
          la::MatrixView a_panel =
              args.local_a->block(row_start, local_c0, trailing_rows, b);
          la::trsm_right_upper(diag.view(), a_panel);
          l_panel.view()
              .block(0, 0, trailing_rows, b)
              .copy_from(a_panel);
        }
      }
      {
        trace::PhaseTimer timer(stats.comm_time, engine);
        co_await hier_bcast(pg.row_comm(), owner_col, l_buf,
                            args.row_levels, args.bcast_algo);
      }
    }

    // 2 + 3b. Pivot-row ranks form their U panel and broadcast it along
    //         their grid column (hierarchically).
    mpc::Buf u_buf =
        mode == PayloadMode::Real && trailing_cols > 0
            ? mpc::Buf(std::span<double>(
                  u_panel.view().data(),
                  static_cast<std::size_t>(b * trailing_cols)))
            : mpc::Buf::phantom(
                  static_cast<std::size_t>(b * trailing_cols));
    if (trailing_cols > 0) {
      if (pg.my_row() == owner_row) {
        const double flops = static_cast<double>(trailing_cols) *
                             static_cast<double>(b) * static_cast<double>(b);
        {
          trace::PhaseTimer timer(stats.comp_time, engine);
          trace::ComputeSpanGuard span(args.tracer, engine, flops);
          co_await machine.compute(self, flops);
        }
        if (mode == PayloadMode::Real) {
          la::MatrixView a_panel =
              args.local_a->block(local_r0, col_start, b, trailing_cols);
          la::trsm_left_lower_unit(diag.view(), a_panel);
          // Pack the strided panel into contiguous storage for the wire.
          la::MatrixView packed(u_panel.view().data(), b, trailing_cols,
                                trailing_cols);
          packed.copy_from(a_panel);
        }
      }
      {
        trace::PhaseTimer timer(stats.comm_time, engine);
        co_await hier_bcast(pg.col_comm(), owner_row, u_buf,
                            args.col_levels, args.bcast_algo);
      }
    }

    // 4. Trailing update.
    if (trailing_rows > 0 && trailing_cols > 0) {
      const double flops = la::gemm_flops(trailing_rows, trailing_cols, b);
      {
        trace::PhaseTimer timer(stats.comp_time, engine);
        trace::ComputeSpanGuard span(args.tracer, engine, flops);
        co_await machine.compute(self, flops);
      }
      if (mode == PayloadMode::Real) {
        la::ConstMatrixView l_view(l_panel.view().data(), trailing_rows, b,
                                   b);
        la::ConstMatrixView u_view(u_panel.view().data(), b, trailing_cols,
                                   trailing_cols);
        la::gemm_subtract(
            l_view, u_view,
            args.local_a->block(row_start, col_start, trailing_rows,
                                trailing_cols));
      }
      stats.flops += static_cast<std::uint64_t>(flops);
    }
  }
}

}  // namespace hs::core
