#include "core/lu.hpp"

#include <algorithm>

#include "core/hier_bcast.hpp"
#include "core/panel.hpp"
#include "grid/distribution.hpp"
#include "grid/process_grid.hpp"
#include "la/factor.hpp"
#include "la/gemm.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"

namespace hs::core {

namespace {

void check_lu_preconditions(grid::GridShape shape, index_t n, index_t block) {
  HS_REQUIRE_MSG(n > 0 && block > 0, "n and block must be positive");
  HS_REQUIRE_MSG(n % shape.rows == 0 && n % shape.cols == 0,
                 "n=" << n << " must be divisible by both grid dimensions");
  HS_REQUIRE_MSG((n / shape.rows) % block == 0 &&
                     (n / shape.cols) % block == 0,
                 "block=" << block << " must divide the local extents "
                          << n / shape.rows << " and " << n / shape.cols);
}

}  // namespace

desim::Task<void> lu_rank(LuArgs args) {
  check_lu_preconditions(args.shape, args.n, args.block);
  const grid::ProcessGrid pg(args.comm, args.shape);
  mpc::Machine& machine = args.comm.machine();
  desim::Engine& engine = machine.engine();

  const index_t b = args.block;
  const index_t local_rows = args.n / pg.rows();
  const index_t local_cols = args.n / pg.cols();
  const PayloadMode mode =
      args.local_a == nullptr ? PayloadMode::Phantom : PayloadMode::Real;

  trace::RankStats scratch_stats;
  trace::RankStats& stats = args.stats ? *args.stats : scratch_stats;

  PanelBuffer diag(b, b, mode);
  PanelBuffer l_panel(local_rows, b, mode);  // sized for the worst case
  PanelBuffer u_panel(b, local_cols, mode);

  const index_t steps = args.n / b;
  for (index_t k = 0; k < steps; ++k) {
    const index_t pivot = k * b;
    const int owner_row = static_cast<int>(pivot / local_rows);
    const int owner_col = static_cast<int>(pivot / local_cols);
    const index_t local_r0 = pivot - static_cast<index_t>(owner_row) * local_rows;
    const index_t local_c0 = pivot - static_cast<index_t>(owner_col) * local_cols;

    // My trailing region (global indices >= pivot + b), in local terms.
    const index_t row_start =
        std::clamp<index_t>(pivot + b -
                                static_cast<index_t>(pg.my_row()) * local_rows,
                            0, local_rows);
    const index_t col_start =
        std::clamp<index_t>(pivot + b -
                                static_cast<index_t>(pg.my_col()) * local_cols,
                            0, local_cols);
    const index_t trailing_rows = local_rows - row_start;
    const index_t trailing_cols = local_cols - col_start;

    // 1. Factor the diagonal block; share it down the pivot column (for
    //    the L solves) and across the pivot row (for the U solves).
    if (pg.my_row() == owner_row && pg.my_col() == owner_col) {
      if (mode == PayloadMode::Real) {
        la::MatrixView block_kk =
            args.local_a->block(local_r0, local_c0, b, b);
        {
          trace::PhaseTimer timer(stats.comp_time, engine);
          co_await machine.compute(2.0 / 3.0 * static_cast<double>(b) *
                                   static_cast<double>(b) *
                                   static_cast<double>(b));
        }
        la::lu_factor_inplace(block_kk);
        diag.view().copy_from(block_kk);
      } else {
        trace::PhaseTimer timer(stats.comp_time, engine);
        co_await machine.compute(2.0 / 3.0 * static_cast<double>(b) *
                                 static_cast<double>(b) *
                                 static_cast<double>(b));
      }
    }
    if (pg.my_col() == owner_col) {
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await mpc::bcast(pg.col_comm(), owner_row, diag.buf(),
                          args.bcast_algo);
    }
    if (pg.my_row() == owner_row) {
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await mpc::bcast(pg.row_comm(), owner_col, diag.buf(),
                          args.bcast_algo);
    }

    // 2 + 3a. Pivot-column ranks form their L panel and broadcast it along
    //         their grid row (hierarchically).
    mpc::Buf l_buf = l_panel.row_slice(0, trailing_rows);
    if (trailing_rows > 0) {
      if (pg.my_col() == owner_col) {
        const double flops = static_cast<double>(trailing_rows) *
                             static_cast<double>(b) * static_cast<double>(b);
        {
          trace::PhaseTimer timer(stats.comp_time, engine);
          co_await machine.compute(flops);
        }
        if (mode == PayloadMode::Real) {
          la::MatrixView a_panel =
              args.local_a->block(row_start, local_c0, trailing_rows, b);
          la::trsm_right_upper(diag.view(), a_panel);
          l_panel.view()
              .block(0, 0, trailing_rows, b)
              .copy_from(a_panel);
        }
      }
      {
        trace::PhaseTimer timer(stats.comm_time, engine);
        co_await hier_bcast(pg.row_comm(), owner_col, l_buf,
                            args.row_levels, args.bcast_algo);
      }
    }

    // 2 + 3b. Pivot-row ranks form their U panel and broadcast it along
    //         their grid column (hierarchically).
    mpc::Buf u_buf =
        mode == PayloadMode::Real && trailing_cols > 0
            ? mpc::Buf(std::span<double>(
                  u_panel.view().data(),
                  static_cast<std::size_t>(b * trailing_cols)))
            : mpc::Buf::phantom(
                  static_cast<std::size_t>(b * trailing_cols));
    if (trailing_cols > 0) {
      if (pg.my_row() == owner_row) {
        const double flops = static_cast<double>(trailing_cols) *
                             static_cast<double>(b) * static_cast<double>(b);
        {
          trace::PhaseTimer timer(stats.comp_time, engine);
          co_await machine.compute(flops);
        }
        if (mode == PayloadMode::Real) {
          la::MatrixView a_panel =
              args.local_a->block(local_r0, col_start, b, trailing_cols);
          la::trsm_left_lower_unit(diag.view(), a_panel);
          // Pack the strided panel into contiguous storage for the wire.
          la::MatrixView packed(u_panel.view().data(), b, trailing_cols,
                                trailing_cols);
          packed.copy_from(a_panel);
        }
      }
      {
        trace::PhaseTimer timer(stats.comm_time, engine);
        co_await hier_bcast(pg.col_comm(), owner_row, u_buf,
                            args.col_levels, args.bcast_algo);
      }
    }

    // 4. Trailing update.
    if (trailing_rows > 0 && trailing_cols > 0) {
      const double flops = la::gemm_flops(trailing_rows, trailing_cols, b);
      {
        trace::PhaseTimer timer(stats.comp_time, engine);
        co_await machine.compute(flops);
      }
      if (mode == PayloadMode::Real) {
        la::ConstMatrixView l_view(l_panel.view().data(), trailing_rows, b,
                                   b);
        la::ConstMatrixView u_view(u_panel.view().data(), b, trailing_cols,
                                   trailing_cols);
        la::gemm_subtract(
            l_view, u_view,
            args.local_a->block(row_start, col_start, trailing_rows,
                                trailing_cols));
      }
      stats.flops += static_cast<std::uint64_t>(flops);
    }
  }
}

LuResult run_lu(mpc::Machine& machine, const LuOptions& options) {
  check_lu_preconditions(options.grid, options.n, options.block);
  HS_REQUIRE(machine.ranks() == options.grid.size());
  HS_REQUIRE_MSG(options.mode == PayloadMode::Real || !options.verify,
                 "verification requires real payloads");

  // Diagonally dominant input: uniform noise plus n on the diagonal keeps
  // unpivoted LU stable.
  const la::ElementFn noise = la::uniform_elements(options.seed);
  const double shift = static_cast<double>(options.n);
  const la::ElementFn gen_a = [noise, shift](index_t i, index_t j) {
    return noise(i, j) + (i == j ? shift : 0.0);
  };

  const grid::BlockDistribution dist(options.n, options.n, options.grid.rows,
                                     options.grid.cols);
  std::vector<la::Matrix> locals;
  if (options.mode == PayloadMode::Real) {
    locals.resize(static_cast<std::size_t>(options.grid.size()));
    for (int rank = 0; rank < options.grid.size(); ++rank) {
      const int grid_row = rank / options.grid.cols;
      const int grid_col = rank % options.grid.cols;
      locals[static_cast<std::size_t>(rank)] =
          dist.materialize_local(grid_row, grid_col, gen_a);
    }
  }

  std::vector<trace::RankStats> stats(
      static_cast<std::size_t>(options.grid.size()));
  const double start_time = machine.engine().now();
  const std::uint64_t start_messages = machine.messages_transferred();
  const std::uint64_t start_bytes = machine.bytes_transferred();

  for (int rank = 0; rank < options.grid.size(); ++rank) {
    LuArgs args;
    args.comm = machine.world(rank);
    args.shape = options.grid;
    args.n = options.n;
    args.block = options.block;
    args.row_levels = options.row_levels;
    args.col_levels = options.col_levels;
    args.local_a = options.mode == PayloadMode::Real
                       ? &locals[static_cast<std::size_t>(rank)]
                       : nullptr;
    args.stats = &stats[static_cast<std::size_t>(rank)];
    args.bcast_algo = options.bcast_algo;
    machine.engine().spawn(lu_rank(std::move(args)),
                           "lu rank " + std::to_string(rank));
  }
  machine.engine().run();

  LuResult result;
  result.timing = trace::TimingReport::aggregate(
      machine.engine().now() - start_time, stats);
  result.messages = machine.messages_transferred() - start_messages;
  result.wire_bytes = machine.bytes_transferred() - start_bytes;

  if (options.verify) {
    // Reassemble the factored matrix, split into L and U, and compare L*U
    // against the original A (host-side, small n only).
    la::Matrix factored(options.n, options.n);
    for (int rank = 0; rank < options.grid.size(); ++rank) {
      const int grid_row = rank / options.grid.cols;
      const int grid_col = rank % options.grid.cols;
      factored
          .block(dist.row_offset(grid_row), dist.col_offset(grid_col),
                 dist.local_rows(grid_row), dist.local_cols(grid_col))
          .copy_from(locals[static_cast<std::size_t>(rank)].view());
    }
    la::Matrix l(options.n, options.n), u(options.n, options.n);
    for (index_t i = 0; i < options.n; ++i) {
      l(i, i) = 1.0;
      for (index_t j = 0; j < i; ++j) l(i, j) = factored(i, j);
      for (index_t j = i; j < options.n; ++j) u(i, j) = factored(i, j);
    }
    la::Matrix product(options.n, options.n);
    la::gemm(l.view(), u.view(), product.view());
    const la::Matrix original = la::materialize(options.n, options.n, gen_a);
    result.max_error =
        la::max_abs_diff(product.view(), original.view());
  }
  return result;
}

}  // namespace hs::core
