#include "core/cyclic.hpp"

#include "core/panel.hpp"
#include "grid/distribution.hpp"
#include "grid/hier_grid.hpp"
#include "la/gemm.hpp"
#include "mpc/collectives.hpp"

namespace hs::core {

namespace {

void check_cyclic_preconditions(const ProblemSpec& prob, index_t dist_block) {
  HS_REQUIRE_MSG(prob.m > 0 && prob.n > 0 && prob.k > 0 && prob.block > 0,
                 "problem dimensions must be positive");
  HS_REQUIRE_MSG(prob.k % dist_block == 0,
                 "k=" << prob.k << " must be a multiple of the distribution "
                      << "block " << dist_block);
}

}  // namespace

desim::Task<void> summa_cyclic_rank(SummaArgs args) {
  const ProblemSpec& prob = args.problem;
  const index_t b = prob.block;
  check_cyclic_preconditions(prob, b);
  const grid::ProcessGrid pg(args.comm, args.shape);
  mpc::Machine& machine = args.comm.machine();
  const int self = args.comm.my_world_rank();
  desim::Engine& engine = machine.engine();

  const grid::BlockCyclicDistribution dist_a(prob.m, prob.k, b, b,
                                             pg.rows(), pg.cols());
  const grid::BlockCyclicDistribution dist_c(prob.m, prob.n, b, b,
                                             pg.rows(), pg.cols());
  const index_t local_m = dist_a.local_rows(pg.my_row());
  const index_t local_n = dist_c.local_cols(pg.my_col());
  const PayloadMode mode =
      args.local == nullptr ? PayloadMode::Phantom : PayloadMode::Real;

  trace::RankStats scratch_stats;
  trace::RankStats& stats = args.stats ? *args.stats : scratch_stats;
  const index_t steps = prob.k / b;

  // Copy this step's pivot slabs out of the cyclic local storage.
  auto load_a = [&](index_t q, PanelBuffer& panel) {
    const int root = static_cast<int>(q % pg.cols());
    if (mode == PayloadMode::Real && pg.my_col() == root) {
      const index_t local_col0 =
          (q / static_cast<index_t>(pg.cols())) * b;
      panel.view().copy_from(
          args.local->a.block(0, local_col0, local_m, b));
    }
    return root;
  };
  auto load_b = [&](index_t q, PanelBuffer& panel) {
    const int root = static_cast<int>(q % pg.rows());
    if (mode == PayloadMode::Real && pg.my_row() == root) {
      const index_t local_row0 =
          (q / static_cast<index_t>(pg.rows())) * b;
      panel.view().copy_from(
          args.local->b.block(local_row0, 0, b, local_n));
    }
    return root;
  };

  if (args.lookahead >= 1) {
    PanelBuffer a_panels[2] = {PanelBuffer(local_m, b, mode),
                               PanelBuffer(local_m, b, mode)};
    PanelBuffer b_panels[2] = {PanelBuffer(b, local_n, mode),
                               PanelBuffer(b, local_n, mode)};
    desim::Async a_async[2];
    desim::Async b_async[2];

    auto fork_step = [&](index_t q, int slot) {
      const int a_root = load_a(q, a_panels[slot]);
      a_async[slot] = desim::Async::start(
          engine, mpc::bcast(pg.row_comm(), a_root, a_panels[slot].buf(),
                             args.bcast_algo));
      const int b_root = load_b(q, b_panels[slot]);
      b_async[slot] = desim::Async::start(
          engine, mpc::bcast(pg.col_comm(), b_root, b_panels[slot].buf(),
                             args.bcast_algo));
    };

    fork_step(0, 0);
    for (index_t q = 0; q < steps; ++q) {
      const int slot = static_cast<int>(q % 2);
      {
        trace::PhaseTimer timer(stats.comm_time, engine);
        co_await a_async[slot].wait();
        co_await b_async[slot].wait();
      }
      if (q + 1 < steps) fork_step(q + 1, slot ^ 1);
      const double flops = la::gemm_flops(local_m, local_n, b);
      {
        trace::PhaseTimer timer(stats.comp_time, engine);
        co_await machine.compute(self, flops);
      }
      if (mode == PayloadMode::Real)
        la::gemm(a_panels[slot].view(), b_panels[slot].view(),
                 args.local->c.view());
      stats.flops += static_cast<std::uint64_t>(flops);
    }
    co_return;
  }

  PanelBuffer a_panel(local_m, b, mode);
  PanelBuffer b_panel(b, local_n, mode);
  for (index_t q = 0; q < steps; ++q) {
    const int a_root = load_a(q, a_panel);
    {
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await mpc::bcast(pg.row_comm(), a_root, a_panel.buf(),
                          args.bcast_algo);
    }
    const int b_root = load_b(q, b_panel);
    {
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await mpc::bcast(pg.col_comm(), b_root, b_panel.buf(),
                          args.bcast_algo);
    }
    const double flops = la::gemm_flops(local_m, local_n, b);
    {
      trace::PhaseTimer timer(stats.comp_time, engine);
      co_await machine.compute(self, flops);
    }
    if (mode == PayloadMode::Real)
      la::gemm(a_panel.view(), b_panel.view(), args.local->c.view());
    stats.flops += static_cast<std::uint64_t>(flops);
  }
}

desim::Task<void> hsumma_cyclic_rank(HsummaArgs args) {
  const ProblemSpec& prob = args.problem;
  const index_t b = prob.block;
  const index_t outer = prob.effective_outer_block();
  HS_REQUIRE_MSG(outer % b == 0,
                 "outer block B=" << outer
                                  << " must be a multiple of inner block b="
                                  << b);
  check_cyclic_preconditions(prob, outer);
  const grid::HierGrid hg(args.comm, args.shape, args.groups);
  mpc::Machine& machine = args.comm.machine();
  const int self = args.comm.my_world_rank();
  desim::Engine& engine = machine.engine();

  const int s = args.shape.rows;
  const int t = args.shape.cols;
  const grid::BlockCyclicDistribution dist_a(prob.m, prob.k, outer, outer, s,
                                             t);
  const grid::BlockCyclicDistribution dist_c(prob.m, prob.n, outer, outer, s,
                                             t);
  const index_t local_m = dist_a.local_rows(hg.flat().my_row());
  const index_t local_n = dist_c.local_cols(hg.flat().my_col());
  const grid::GridShape local_shape = hg.local_shape();
  const PayloadMode mode =
      args.local == nullptr ? PayloadMode::Phantom : PayloadMode::Real;

  trace::RankStats scratch_stats;
  trace::RankStats& stats = args.stats ? *args.stats : scratch_stats;

  PanelBuffer a_outer(local_m, outer, mode);
  PanelBuffer b_outer(outer, local_n, mode);
  PanelBuffer a_inners[2] = {PanelBuffer(local_m, b, mode),
                             PanelBuffer(local_m, b, mode)};
  PanelBuffer b_inners[2] = {PanelBuffer(b, local_n, mode),
                             PanelBuffer(b, local_n, mode)};
  desim::Async a_async[2];
  desim::Async b_async[2];

  const index_t outer_steps = prob.k / outer;
  const index_t inner_steps = outer / b;

  for (index_t big_step = 0; big_step < outer_steps; ++big_step) {
    // The owner of this outer panel rotates around the grid.
    const int a_col = static_cast<int>(big_step % t);
    const int a_group_col = a_col / local_shape.cols;
    const int a_local_col = a_col % local_shape.cols;
    if (hg.local_col() == a_local_col) {
      if (mode == PayloadMode::Real && hg.flat().my_col() == a_col) {
        const index_t local_col0 =
            (big_step / static_cast<index_t>(t)) * outer;
        a_outer.view().copy_from(
            args.local->a.block(0, local_col0, local_m, outer));
      }
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await mpc::bcast(hg.group_row_comm(), a_group_col, a_outer.buf(),
                          args.bcast_algo);
    }

    const int b_row = static_cast<int>(big_step % s);
    const int b_group_row = b_row / local_shape.rows;
    const int b_local_row = b_row % local_shape.rows;
    if (hg.local_row() == b_local_row) {
      if (mode == PayloadMode::Real && hg.flat().my_row() == b_row) {
        const index_t local_row0 =
            (big_step / static_cast<index_t>(s)) * outer;
        b_outer.view().copy_from(
            args.local->b.block(local_row0, 0, outer, local_n));
      }
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await mpc::bcast(hg.group_col_comm(), b_group_row, b_outer.buf(),
                          args.bcast_algo);
    }

    auto fork_inner = [&](index_t w, int slot) {
      const index_t offset = w * b;
      if (mode == PayloadMode::Real && hg.local_col() == a_local_col)
        a_inners[slot].view().copy_from(
            a_outer.view().block(0, offset, local_m, b));
      a_async[slot] = desim::Async::start(
          engine, mpc::bcast(hg.row_comm(), a_local_col,
                             a_inners[slot].buf(), args.bcast_algo));
      if (mode == PayloadMode::Real && hg.local_row() == b_local_row)
        b_inners[slot].view().copy_from(
            b_outer.view().block(offset, 0, b, local_n));
      b_async[slot] = desim::Async::start(
          engine, mpc::bcast(hg.col_comm(), b_local_row,
                             b_inners[slot].buf(), args.bcast_algo));
    };

    auto update = [&](int slot) -> desim::Task<void> {
      const double flops = la::gemm_flops(local_m, local_n, b);
      {
        trace::PhaseTimer timer(stats.comp_time, engine);
        co_await machine.compute(self, flops);
      }
      if (mode == PayloadMode::Real)
        la::gemm(a_inners[slot].view(), b_inners[slot].view(),
                 args.local->c.view());
      stats.flops += static_cast<std::uint64_t>(flops);
    };

    if (args.lookahead >= 1) {
      fork_inner(0, 0);
      for (index_t inner = 0; inner < inner_steps; ++inner) {
        const int slot = static_cast<int>(inner % 2);
        {
          trace::PhaseTimer timer(stats.comm_time, engine);
          co_await a_async[slot].wait();
          co_await b_async[slot].wait();
        }
        if (inner + 1 < inner_steps) fork_inner(inner + 1, slot ^ 1);
        co_await update(slot);
      }
    } else {
      // Blocking inner loop: await each broadcast before the next (matches
      // hsumma_rank so layout comparisons isolate the distribution).
      for (index_t inner = 0; inner < inner_steps; ++inner) {
        const index_t offset = inner * b;
        if (mode == PayloadMode::Real && hg.local_col() == a_local_col)
          a_inners[0].view().copy_from(
              a_outer.view().block(0, offset, local_m, b));
        {
          trace::PhaseTimer timer(stats.comm_time, engine);
          co_await mpc::bcast(hg.row_comm(), a_local_col, a_inners[0].buf(),
                              args.bcast_algo);
        }
        if (mode == PayloadMode::Real && hg.local_row() == b_local_row)
          b_inners[0].view().copy_from(
              b_outer.view().block(offset, 0, b, local_n));
        {
          trace::PhaseTimer timer(stats.comm_time, engine);
          co_await mpc::bcast(hg.col_comm(), b_local_row, b_inners[0].buf(),
                              args.bcast_algo);
        }
        co_await update(0);
      }
    }
  }
}

}  // namespace hs::core
