// Distributed right-looking block Cholesky (A = L * L^T, SPD inputs) with
// hierarchical panel broadcasts — together with core/lu.hpp this realizes
// the paper's "apply the same approach to other numerical linear algebra
// kernels" for the one-sided factorizations.
//
// Per pivot step (square s x s grid required; the symmetric transpose path
// pairs grid row i with grid col i):
//   1. the diagonal owner factors A_kk = L_kk L_kk^T and broadcasts it down
//      its grid column;
//   2. pivot-column ranks solve L_ik = A_ik L_kk^{-T};
//   3. the L panel broadcasts along grid rows (left factor) and, after a
//      transpose hop to the diagonal rank, down grid columns (right
//      factor) — both hierarchically;
//   4. trailing update A_ij -= L_ik L_jk^T.
#pragma once

#include <optional>
#include <vector>

#include "core/spec.hpp"
#include "desim/task.hpp"
#include "la/generate.hpp"
#include "mpc/comm.hpp"
#include "trace/phase.hpp"

namespace hs::core {

struct CholeskyArgs {
  mpc::Comm comm;
  grid::GridShape shape;        // must be square (s x s)
  index_t n = 0;
  index_t block = 0;
  std::vector<int> row_levels;  // hierarchy for the row broadcasts
  std::vector<int> col_levels;  // hierarchy for the column broadcasts
  la::Matrix* local_a = nullptr;  // factored in place; nullptr = phantom
  trace::RankStats* stats = nullptr;
  std::optional<net::BcastAlgo> bcast_algo;
};

/// Per-rank program. Preconditions: s == t, s | n, b | n/s.
desim::Task<void> cholesky_rank(CholeskyArgs args);

/// The preconditions above, throwing hs::PreconditionError on violation.
/// The registry's validation hook calls this before any rank is spawned.
void check_cholesky_preconditions(grid::GridShape shape, index_t n,
                                  index_t block);

/// Input generator the Cholesky harness factors: symmetric uniform noise
/// plus n on the diagonal — symmetric diagonally dominant with a positive
/// diagonal, hence SPD.
la::ElementFn cholesky_input_elements(std::uint64_t seed, index_t n);

}  // namespace hs::core

// The end-to-end harness for this kernel is core::run() with
// Algorithm::Cholesky (problem = ProblemSpec::factorization(n, block)); see
// core/kernel_registry.hpp for the registered descriptor.
