// Task-plan lowerings: each kernel's per-rank program expressed as a
// desim::TaskGraph instead of a hand-written loop.
//
// The plan is the kernel's step structure made explicit: every broadcast /
// rotation / panel solve / local update becomes a task with declared in/out
// regions (buffer slots, column strips), and desim::run_task_graph schedules
// them. The look-ahead depth D controls the *plan*, not the scheduler:
//
//   D = 0  — one buffer slot per panel; the graph is executed inline in
//            program order, reproducing the classic blocking loop
//            bit-identically (locked by tests/core/test_taskplan_goldens.cpp
//            against goldens captured from the pre-task-runtime kernels).
//   D = 1  — two slots plus pipeline-coupling edges that pin the fork
//            points to the instants the old hand-rolled double-buffered
//            `overlap` branches used, reproducing them bit-identically
//            (same golden file). The legacy branches are deleted.
//   D >= 2 — D+1 slots and no coupling edges: the scheduler is free to run
//            communication as far ahead as the slot ring's write-after-read
//            edges allow. This is what the double buffer could not express:
//            HSUMMA prefetches up to D outer panels across big-step
//            boundaries, Cannon overlaps rotations with multiplies, and LU
//            factors panel k+1 while trailing update k streams (the update
//            is split into the next pivot column strip, which unblocks the
//            factor, and the remainder).
//
// The kernels keep their blocking loops for the production D = 0 path (a
// graph materializes O(steps) task records per rank — fine for any D >= 1
// window, wasteful for a million-rank blocking run); *_task_plan with
// lookahead 0 exists so tests can drive the inline scheduler directly.
#pragma once

#include "core/cannon.hpp"
#include "core/hier_bcast.hpp"
#include "core/hsumma.hpp"
#include "core/lu.hpp"
#include "core/summa.hpp"
#include "desim/taskgraph.hpp"

namespace hs::core {

/// Phase encoding used in TaskSpec::phase / TaskStepMark::phase.
inline constexpr int kPhaseFlat = 0;
inline constexpr int kPhaseOuter = 1;
inline constexpr int kPhaseInner = 2;
/// Multi-level chains: phase = kPhaseLevelBase + chain level of the
/// broadcast stage (level 0 = outermost). Observers accrue these into
/// RankStats::level_comm_time, and fold level 0 into the outer phase /
/// deeper levels into the inner phase so the legacy 2-way split stays
/// meaningful at any depth.
inline constexpr int kPhaseLevelBase = 3;

/// TaskObserver wired to the kernels' stats/trace conventions: exposed
/// communication (task_waited) accrues comm_time plus the outer/inner split
/// by task phase, finished computes accrue comp_time, step marks replay
/// through the RankTracer at issue points, and every task lands in the
/// recorder as a trace::TaskSpan. Reads the clock only — attaching a
/// recorder never perturbs virtual time.
class PlanObserver final : public desim::TaskObserver {
 public:
  PlanObserver(desim::Engine& engine, trace::RankStats& stats,
               trace::RankTracer tracer)
      : engine_(engine), stats_(stats), tracer_(tracer) {}

  void task_issued(const desim::TaskGraph& graph, int id) override;
  void task_finished(const desim::TaskGraph& graph, int id, desim::SimTime t0,
                     desim::SimTime t1) override;
  void task_waited(const desim::TaskGraph& graph, int id, desim::SimTime t0,
                   desim::SimTime t1) override;

  /// Accrue any pending fused wait interval (see TaskSpec::wait_group).
  /// Must be called once after run_task_graph returns.
  void flush();

 private:
  void accrue_wait(double t0, double t1, int phase);

  desim::Engine& engine_;
  trace::RankStats& stats_;
  trace::RankTracer tracer_;
  // Pending fused wait interval (contiguous joins of one wait_group).
  int pending_group_ = -1;
  int pending_phase_ = kPhaseFlat;
  double pending_start_ = 0.0;
  double pending_end_ = 0.0;
};

/// The per-rank task-plan programs. args.lookahead selects the plan depth
/// as described above; the kernel entry points (summa_rank, ...) delegate
/// here whenever args.lookahead >= 1.
desim::Task<void> summa_task_plan(SummaArgs args);
desim::Task<void> hsumma_task_plan(HsummaArgs args);
desim::Task<void> hsumma_multilevel_task_plan(HsummaMultilevelArgs args);
desim::Task<void> cannon_task_plan(CannonArgs args);
desim::Task<void> lu_task_plan(LuArgs args);

}  // namespace hs::core
