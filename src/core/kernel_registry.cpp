// The one translation unit that knows every kernel: name tables, validation
// policies, per-rank program factories, Real-mode input materialization and
// verification. No `switch (algorithm)` exists outside this file.
#include "core/kernel_registry.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/cannon.hpp"
#include "core/cholesky.hpp"
#include "core/cyclic.hpp"
#include "core/fox.hpp"
#include "core/hier_bcast.hpp"
#include "core/hsumma.hpp"
#include "core/lu.hpp"
#include "core/summa.hpp"
#include "core/summa25d.hpp"
#include "core/verify.hpp"
#include "grid/distribution.hpp"
#include "grid/hier_grid.hpp"
#include "la/factor.hpp"
#include "la/gemm.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"

namespace hs::core {

namespace {

// --- GEMM family (C = A * B) ----------------------------------------------

/// Shared run state for all multiplication kernels: block or block-cyclic
/// input distributions, per-rank local blocks (Real mode), and the
/// reference-based verification of C.
class GemmRun final : public KernelRun {
 public:
  explicit GemmRun(const RunOptions& options)
      : cyclic_(options.algorithm == Algorithm::SummaCyclic ||
                options.algorithm == Algorithm::HsummaCyclic),
        dist_block_(options.algorithm == Algorithm::HsummaCyclic
                        ? options.problem.effective_outer_block()
                        : options.problem.block),
        dist_a_(options.problem.m, options.problem.k, options.grid.rows,
                options.grid.cols),
        dist_b_(options.problem.k, options.problem.n, options.grid.rows,
                options.grid.cols),
        dist_c_(options.problem.m, options.problem.n, options.grid.rows,
                options.grid.cols),
        cyc_a_(options.problem.m, options.problem.k, dist_block_, dist_block_,
               options.grid.rows, options.grid.cols),
        cyc_b_(options.problem.k, options.problem.n, dist_block_, dist_block_,
               options.grid.rows, options.grid.cols),
        cyc_c_(options.problem.m, options.problem.n, dist_block_, dist_block_,
               options.grid.rows, options.grid.cols),
        gen_a_(la::uniform_elements(options.seed)),
        gen_b_(la::uniform_elements(options.seed + 1)) {
    const int grid_ranks = options.grid.size();
    const int total_ranks = grid_ranks * options.layers;
    if (options.mode != PayloadMode::Real) return;
    // For Summa25D only layer 0 gets inputs; other layers' inputs arrive by
    // replication, which the zero fill lets tests observe.
    locals_.resize(static_cast<std::size_t>(total_ranks));
    for (int rank = 0; rank < total_ranks; ++rank) {
      const int layer = rank / grid_ranks;
      const int within = rank % grid_ranks;
      const int grid_row = within / options.grid.cols;
      const int grid_col = within % options.grid.cols;
      auto& local = locals_[static_cast<std::size_t>(rank)];
      if (cyclic_) {
        local.a = cyc_a_.materialize_local(grid_row, grid_col, gen_a_);
        local.b = cyc_b_.materialize_local(grid_row, grid_col, gen_b_);
        local.c = la::Matrix(cyc_c_.local_rows(grid_row),
                             cyc_c_.local_cols(grid_col));
        continue;
      }
      if (layer == 0) {
        local.a = dist_a_.materialize_local(grid_row, grid_col, gen_a_);
        local.b = dist_b_.materialize_local(grid_row, grid_col, gen_b_);
      } else {
        local.a = la::Matrix(dist_a_.local_rows(grid_row),
                             dist_a_.local_cols(grid_col));
        local.b = la::Matrix(dist_b_.local_rows(grid_row),
                             dist_b_.local_cols(grid_col));
      }
      local.c = la::Matrix(dist_c_.local_rows(grid_row),
                           dist_c_.local_cols(grid_col));
    }
  }

  desim::Task<void> program(mpc::Machine& machine, const RunOptions& options,
                            int rank, trace::RankStats* stats) override {
    mpc::Comm world = machine.world(rank);
    const ProblemSpec& prob = options.problem;
    LocalBlocks* local = local_of(rank);
    switch (options.algorithm) {
      case Algorithm::Summa:
        return summa_rank({world, options.grid, prob, local, stats,
                           options.bcast_algo, effective_lookahead(options),
                           trace::RankTracer(options.recorder, rank)});
      case Algorithm::Hsumma:
        return hsumma_rank({world, options.grid, options.groups, prob, local,
                            stats, options.bcast_algo,
                            effective_lookahead(options),
                            trace::RankTracer(options.recorder, rank)});
      case Algorithm::SummaCyclic:
        return summa_cyclic_rank({world, options.grid, prob, local, stats,
                                  options.bcast_algo,
                                  effective_lookahead(options) >= 1,
                                  trace::RankTracer(options.recorder, rank)});
      case Algorithm::HsummaCyclic:
        return hsumma_cyclic_rank({world, options.grid, options.groups, prob,
                                   local, stats, options.bcast_algo,
                                   effective_lookahead(options) >= 1,
                                   trace::RankTracer(options.recorder, rank)});
      case Algorithm::HsummaMultilevel:
        return hsumma_multilevel_rank(
            {world, options.grid, prob, options.row_levels,
             options.col_levels, local, stats, options.bcast_algo,
             effective_lookahead(options),
             trace::RankTracer(options.recorder, rank)});
      case Algorithm::Cannon:
        return cannon_rank({world, options.grid, prob, local, stats,
                            effective_lookahead(options),
                            trace::RankTracer(options.recorder, rank)});
      case Algorithm::Fox:
        return fox_rank({world, options.grid, prob, local, stats,
                         options.bcast_algo});
      case Algorithm::Summa25D:
        return summa25d_rank({world, options.grid, options.layers, prob,
                              local, stats, options.bcast_algo});
      case Algorithm::Lu:
      case Algorithm::Cholesky:
        break;
    }
    HS_REQUIRE_MSG(false, "kernel '" << to_string(options.algorithm)
                                     << "' is not a multiplication kernel");
    return {};
  }

  double verify(const RunOptions& options) override {
    // For Summa25D, C is summed back to layer 0; verify that layer only.
    const int grid_ranks = options.grid.size();
    const int total_ranks = grid_ranks * options.layers;
    const int verified_ranks =
        options.algorithm == Algorithm::Summa25D ? grid_ranks : total_ranks;
    const ProblemSpec& prob = options.problem;
    double max_error = 0.0;
    for (int rank = 0; rank < verified_ranks; ++rank) {
      const int within = rank % grid_ranks;
      const int grid_row = within / options.grid.cols;
      const int grid_col = within % options.grid.cols;
      if (cyclic_) {
        max_error = std::max(
            max_error,
            verify_c_cyclic(locals_[static_cast<std::size_t>(rank)].c.view(),
                            cyc_c_, grid_row, grid_col, gen_a_, gen_b_,
                            prob.k));
        continue;
      }
      max_error = std::max(
          max_error,
          verify_c_block(locals_[static_cast<std::size_t>(rank)].c.view(),
                         gen_a_, gen_b_, prob.k, dist_c_.row_offset(grid_row),
                         dist_c_.col_offset(grid_col)));
    }
    return max_error;
  }

 private:
  LocalBlocks* local_of(int rank) {
    return locals_.empty() ? nullptr
                           : &locals_[static_cast<std::size_t>(rank)];
  }

  const bool cyclic_;
  const la::index_t dist_block_;
  const grid::BlockDistribution dist_a_;
  const grid::BlockDistribution dist_b_;
  const grid::BlockDistribution dist_c_;
  const grid::BlockCyclicDistribution cyc_a_;
  const grid::BlockCyclicDistribution cyc_b_;
  const grid::BlockCyclicDistribution cyc_c_;
  const la::ElementFn gen_a_;
  const la::ElementFn gen_b_;
  std::vector<LocalBlocks> locals_;
};

std::unique_ptr<KernelRun> make_gemm_run(const RunOptions& options) {
  return std::make_unique<GemmRun>(options);
}

// --- one-sided factorizations (LU, Cholesky) ------------------------------

/// Shared state for the factorization kernels: block-distributed square A,
/// factored in place; verification reassembles the factors on the host.
class FactorRunBase : public KernelRun {
 protected:
  FactorRunBase(const RunOptions& options, la::ElementFn gen_a)
      : gen_a_(std::move(gen_a)),
        dist_(options.problem.n, options.problem.n, options.grid.rows,
              options.grid.cols) {
    if (options.mode != PayloadMode::Real) return;
    locals_.resize(static_cast<std::size_t>(options.grid.size()));
    for (int rank = 0; rank < options.grid.size(); ++rank)
      locals_[static_cast<std::size_t>(rank)] = dist_.materialize_local(
          rank / options.grid.cols, rank % options.grid.cols, gen_a_);
  }

  la::Matrix* local_of(int rank) {
    return locals_.empty() ? nullptr
                           : &locals_[static_cast<std::size_t>(rank)];
  }

  /// The factored matrix reassembled on the host (Real mode).
  la::Matrix assemble(const RunOptions& options) const {
    const index_t n = options.problem.n;
    la::Matrix factored(n, n);
    for (int rank = 0; rank < options.grid.size(); ++rank) {
      const int grid_row = rank / options.grid.cols;
      const int grid_col = rank % options.grid.cols;
      factored
          .block(dist_.row_offset(grid_row), dist_.col_offset(grid_col),
                 dist_.local_rows(grid_row), dist_.local_cols(grid_col))
          .copy_from(locals_[static_cast<std::size_t>(rank)].view());
    }
    return factored;
  }

  const la::ElementFn gen_a_;
  const grid::BlockDistribution dist_;
  std::vector<la::Matrix> locals_;
};

class LuRun final : public FactorRunBase {
 public:
  explicit LuRun(const RunOptions& options)
      : FactorRunBase(options,
                      lu_input_elements(options.seed, options.problem.n)) {}

  desim::Task<void> program(mpc::Machine& machine, const RunOptions& options,
                            int rank, trace::RankStats* stats) override {
    LuArgs args;
    args.comm = machine.world(rank);
    args.shape = options.grid;
    args.n = options.problem.n;
    args.block = options.problem.block;
    args.row_levels = options.row_levels;
    args.col_levels = options.col_levels;
    args.local_a = local_of(rank);
    args.stats = stats;
    args.bcast_algo = options.bcast_algo;
    args.lookahead = effective_lookahead(options);
    args.tracer = trace::RankTracer(options.recorder, rank);
    return lu_rank(std::move(args));
  }

  double verify(const RunOptions& options) override {
    // Reassemble the factored matrix, split into L and U, and compare L*U
    // against the original A (host-side, small n only).
    const index_t n = options.problem.n;
    const la::Matrix factored = assemble(options);
    la::Matrix l(n, n), u(n, n);
    for (index_t i = 0; i < n; ++i) {
      l(i, i) = 1.0;
      for (index_t j = 0; j < i; ++j) l(i, j) = factored(i, j);
      for (index_t j = i; j < n; ++j) u(i, j) = factored(i, j);
    }
    la::Matrix product(n, n);
    la::gemm(l.view(), u.view(), product.view());
    const la::Matrix original = la::materialize(n, n, gen_a_);
    return la::max_abs_diff(product.view(), original.view());
  }
};

class CholeskyRun final : public FactorRunBase {
 public:
  explicit CholeskyRun(const RunOptions& options)
      : FactorRunBase(
            options,
            cholesky_input_elements(options.seed, options.problem.n)) {}

  desim::Task<void> program(mpc::Machine& machine, const RunOptions& options,
                            int rank, trace::RankStats* stats) override {
    CholeskyArgs args;
    args.comm = machine.world(rank);
    args.shape = options.grid;
    args.n = options.problem.n;
    args.block = options.problem.block;
    args.row_levels = options.row_levels;
    args.col_levels = options.col_levels;
    args.local_a = local_of(rank);
    args.stats = stats;
    args.bcast_algo = options.bcast_algo;
    return cholesky_rank(std::move(args));
  }

  double verify(const RunOptions& options) override {
    const index_t n = options.problem.n;
    const la::Matrix factored = assemble(options);
    la::Matrix l(n, n);
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j <= i; ++j) l(i, j) = factored(i, j);
    la::Matrix product(n, n);
    // L * L^T via the transposed-B subtract kernel on a zero target.
    la::gemm_subtract_transb(l.view(), l.view(), product.view());
    const la::Matrix original = la::materialize(n, n, gen_a_);
    double max_error = 0.0;
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < n; ++j)
        max_error = std::max(max_error,
                             std::fabs(-product(i, j) - original(i, j)));
    return max_error;
  }
};

std::unique_ptr<KernelRun> make_lu_run(const RunOptions& options) {
  return std::make_unique<LuRun>(options);
}

std::unique_ptr<KernelRun> make_cholesky_run(const RunOptions& options) {
  return std::make_unique<CholeskyRun>(options);
}

// --- validation policies ---------------------------------------------------

void require_factorization_options(const RunOptions& options) {
  const ProblemSpec& prob = options.problem;
  const KernelDescriptor& kernel = kernel_descriptor(options.algorithm);
  HS_REQUIRE_MSG(prob.m == prob.n && prob.k == prob.n,
                 "kernel '" << kernel.name << "' factors a square matrix; "
                 "use ProblemSpec::factorization(n, block) (got m=" << prob.m
                 << " k=" << prob.k << " n=" << prob.n << ")");
  HS_REQUIRE_MSG(options.layers == 1,
                 "kernel '" << kernel.name << "' does not replicate layers");
  // Look-ahead is per-kernel: LU has a task-plan schedule, Cholesky has
  // none (the central capability check in core::run rejects it too; this
  // guards direct validate() callers).
  HS_REQUIRE_MSG(kernel.overlap_support != OverlapSupport::None ||
                     effective_lookahead(options) == 0,
                 "kernel '" << kernel.name
                 << "' has no communication/computation overlap pipeline "
                    "(supported by: " << overlap_kernel_name_list() << ")");
  HS_REQUIRE_MSG(options.groups.size() == 1,
                 "factorization kernels take hierarchy level factors "
                 "(row_levels/col_levels), not an HSUMMA group arrangement");
}

void validate_lu(const RunOptions& options) {
  require_factorization_options(options);
  check_lu_preconditions(options.grid, options.problem.n,
                         options.problem.block);
}

void validate_cholesky(const RunOptions& options) {
  require_factorization_options(options);
  check_cholesky_preconditions(options.grid, options.problem.n,
                               options.problem.block);
}

// --- the registry ----------------------------------------------------------

std::vector<KernelDescriptor> build_registry() {
  std::vector<KernelDescriptor> kernels;
  // Registration order IS the enum order; kernel_descriptor() indexes on it.
  auto add = [&kernels](Algorithm alg, std::string_view name, Algorithm flat,
                        Algorithm hier,
                        std::unique_ptr<KernelRun> (*make_run)(
                            const RunOptions&)) -> KernelDescriptor& {
    HS_REQUIRE(static_cast<std::size_t>(alg) == kernels.size());
    KernelDescriptor& kernel = kernels.emplace_back();
    kernel.kernel = alg;
    kernel.name = name;
    kernel.flat = flat;
    kernel.hier = hier;
    kernel.make_run = make_run;
    return kernel;
  };
  {
    KernelDescriptor& summa = add(Algorithm::Summa, "summa", Algorithm::Summa,
                                  Algorithm::Hsumma, make_gemm_run);
    summa.overlap_support = OverlapSupport::TaskPlan;
    summa.multilevel = Algorithm::HsummaMultilevel;
  }
  {
    KernelDescriptor& hsumma = add(Algorithm::Hsumma, "hsumma",
                                   Algorithm::Summa, Algorithm::Hsumma,
                                   make_gemm_run);
    hsumma.overlap_support = OverlapSupport::TaskPlan;
    hsumma.multilevel = Algorithm::HsummaMultilevel;
  }
  {
    KernelDescriptor& multilevel =
        add(Algorithm::HsummaMultilevel, "hsumma-multilevel",
            Algorithm::HsummaMultilevel, Algorithm::HsummaMultilevel,
            make_gemm_run);
    multilevel.overlap_support = OverlapSupport::TaskPlan;
    multilevel.multilevel = Algorithm::HsummaMultilevel;
  }
  add(Algorithm::SummaCyclic, "summa-cyclic", Algorithm::SummaCyclic,
      Algorithm::HsummaCyclic, make_gemm_run)
      .overlap_support = OverlapSupport::DoubleBuffer;
  add(Algorithm::HsummaCyclic, "hsumma-cyclic", Algorithm::SummaCyclic,
      Algorithm::HsummaCyclic, make_gemm_run)
      .overlap_support = OverlapSupport::DoubleBuffer;
  add(Algorithm::Cannon, "cannon", Algorithm::Cannon, Algorithm::Cannon,
      make_gemm_run)
      .overlap_support = OverlapSupport::TaskPlan;
  add(Algorithm::Fox, "fox", Algorithm::Fox, Algorithm::Fox, make_gemm_run);
  {
    KernelDescriptor& summa25d =
        add(Algorithm::Summa25D, "summa-2.5d", Algorithm::Summa25D,
            Algorithm::Summa25D, make_gemm_run);
    summa25d.aliases = {"summa25d"};
    summa25d.supports_layers = true;
  }
  {
    KernelDescriptor& lu = add(Algorithm::Lu, "lu", Algorithm::Lu,
                               Algorithm::Lu, make_lu_run);
    lu.factorization = true;
    lu.overlap_support = OverlapSupport::TaskPlan;
    lu.validate = validate_lu;
  }
  {
    KernelDescriptor& cholesky =
        add(Algorithm::Cholesky, "cholesky", Algorithm::Cholesky,
            Algorithm::Cholesky, make_cholesky_run);
    cholesky.aliases = {"llt"};
    cholesky.factorization = true;
    cholesky.requires_square_grid = true;
    cholesky.validate = validate_cholesky;
  }
  return kernels;
}

}  // namespace

const std::vector<KernelDescriptor>& all_kernels() {
  static const std::vector<KernelDescriptor> kernels = build_registry();
  return kernels;
}

const KernelDescriptor& kernel_descriptor(Algorithm kernel) {
  const auto& kernels = all_kernels();
  const auto index = static_cast<std::size_t>(kernel);
  HS_REQUIRE_MSG(index < kernels.size(),
                 "unregistered kernel enum value " << static_cast<int>(kernel));
  return kernels[index];
}

const KernelDescriptor* find_kernel(std::string_view name) {
  for (const KernelDescriptor& kernel : all_kernels()) {
    if (kernel.name == name) return &kernel;
    for (std::string_view alias : kernel.aliases)
      if (alias == name) return &kernel;
  }
  return nullptr;
}

std::string kernel_name_list() {
  // Names plus aliases ("summa-2.5d|summa25d"): this string is the CLI help
  // and the unknown-kernel error text, so every accepted spelling must
  // appear (pinned by tests/core/test_registry_help.cpp).
  std::string list;
  for (const KernelDescriptor& kernel : all_kernels()) {
    if (!list.empty()) list += ", ";
    list += kernel.name;
    for (std::string_view alias : kernel.aliases) {
      list += '|';
      list += alias;
    }
  }
  return list;
}

std::string overlap_kernel_name_list() {
  std::string list;
  for (const KernelDescriptor& kernel : all_kernels()) {
    if (kernel.overlap_support == OverlapSupport::None) continue;
    if (!list.empty()) list += ", ";
    list += kernel.name;
  }
  return list;
}

std::string multilevel_kernel_name_list() {
  std::string list;
  for (const KernelDescriptor& kernel : all_kernels()) {
    if (!kernel.multilevel && !kernel.factorization) continue;
    if (!list.empty()) list += ", ";
    list += kernel.name;
  }
  return list;
}

std::string_view to_string(Algorithm algorithm) {
  return kernel_descriptor(algorithm).name;
}

Algorithm algorithm_from_string(std::string_view name) {
  const KernelDescriptor* kernel = find_kernel(name);
  HS_REQUIRE_MSG(kernel != nullptr, "unknown kernel '" << name << "' (valid: "
                                    << kernel_name_list() << ")");
  return kernel->kernel;
}

void adapt_hierarchy(const GroupHierarchy& hierarchy, RunOptions& options) {
  const KernelDescriptor& kernel = kernel_descriptor(options.algorithm);
  options.hierarchy = hierarchy;
  if (kernel.factorization) {
    // The factorization analogue of HSUMMA's G groups: every chain level's
    // I_l x J_l arrangement maps onto hierarchical panel broadcasts,
    // row_levels = {J_1, ...} and col_levels = {I_1, ...} (exactly the
    // HSUMMA <-> multilevel equivalence, at any depth).
    if (hierarchy.is_flat()) return;
    HS_REQUIRE_MSG(options.row_levels.empty() && options.col_levels.empty(),
                   "give kernel '" << kernel.name << "' either a group "
                   "hierarchy or explicit level factors, not both");
    const HierarchyArrangement arrangement =
        arrange_hierarchy(hierarchy, options.grid);
    for (const grid::GridShape& level : arrangement.levels) {
      if (level.cols > 1) options.row_levels.push_back(level.cols);
      if (level.rows > 1) options.col_levels.push_back(level.rows);
    }
    return;
  }
  // A real chain (depth >= 2), or any chain handed to the multilevel kernel
  // itself, recurses into the kernel's multilevel policy: the chain's
  // per-level arrangement becomes hier_bcast level factors. Entries of 1
  // are kept so factor indices stay aligned with chain levels (hier_bcast
  // skips them but preserves their level slot).
  if (hierarchy.depth() >= 2 ||
      (hierarchy.depth() == 1 &&
       kernel.kernel == Algorithm::HsummaMultilevel)) {
    HS_REQUIRE_MSG(kernel.multilevel.has_value(),
                   "kernel '" << kernel.name
                   << "' has no multi-level hierarchy policy; chains with "
                      "2+ levels are supported by: "
                   << multilevel_kernel_name_list());
    HS_REQUIRE_MSG(options.row_levels.empty() && options.col_levels.empty(),
                   "give kernel '" << kernel.name << "' either a group "
                   "hierarchy or explicit level factors, not both");
    const HierarchyArrangement arrangement =
        arrange_hierarchy(hierarchy, options.grid);
    options.algorithm = *kernel.multilevel;
    options.row_levels = arrangement.row_levels;
    options.col_levels = arrangement.col_levels;
    return;
  }
  if (kernel.flat == kernel.hier) return;  // no group dimension
  if (hierarchy.is_flat()) {
    options.algorithm = kernel.flat;
    return;
  }
  const int groups = hierarchy.scalar();
  options.algorithm = kernel.hier;
  options.groups = grid::group_arrangement(options.grid, groups);
  HS_REQUIRE_MSG(options.groups.size() == groups,
                 "no valid arrangement of " << groups
                                            << " groups on this grid");
}

void adapt_groups(int groups, RunOptions& options) {
  adapt_hierarchy(GroupHierarchy::from_scalar(groups), options);
}

}  // namespace hs::core
