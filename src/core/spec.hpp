// Problem and run descriptions shared by all distributed algorithms.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "grid/process_grid.hpp"
#include "la/matrix.hpp"
#include "net/bcast_cost.hpp"

namespace hs::core {

using la::index_t;

/// C (m x n) = A (m x k) * B (k x n), advanced in rank-`block` updates.
/// `outer_block` is HSUMMA's inter-group block size B; 0 means "same as
/// block" (the b = B configuration the paper uses in its experiments).
struct ProblemSpec {
  index_t m = 0;
  index_t k = 0;
  index_t n = 0;
  index_t block = 64;
  index_t outer_block = 0;

  static ProblemSpec square(index_t n, index_t block,
                            index_t outer_block = 0) {
    return {n, n, n, block, outer_block};
  }

  /// One-sided factorization problem: an n x n matrix advanced in panels of
  /// width `block`. Factorization kernels require m == k == n.
  static ProblemSpec factorization(index_t n, index_t block) {
    return {n, n, n, block, 0};
  }

  index_t effective_outer_block() const {
    return outer_block == 0 ? block : outer_block;
  }

  double total_flops() const {
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k);
  }
};

/// Real payloads carry matrix data and allow verification; phantom payloads
/// charge identical wire and compute time without allocating matrices
/// (mandatory at BlueGene/P scale).
enum class PayloadMode { Real, Phantom };

/// Every distributed kernel the runner can dispatch. Values index into the
/// KernelRegistry (core/kernel_registry.hpp), which holds one descriptor —
/// names, validation policy, program factory, verifier — per variant. New
/// enumerators must be appended (SimJob cache keys serialize the value).
enum class Algorithm {
  Summa,
  Hsumma,
  HsummaMultilevel,
  SummaCyclic,   // block-cyclic distribution (paper's future work)
  HsummaCyclic,  // block-cyclic distribution, outer block = dist block
  Cannon,
  Fox,
  Summa25D,
  Lu,            // block LU factorization with hierarchical panel broadcasts
  Cholesky,      // block Cholesky (A = L L^T), square grids only
};

std::string_view to_string(Algorithm algorithm);
/// Inverse of to_string (aliases accepted). Throws hs::PreconditionError
/// naming every registered kernel when `name` is unknown.
Algorithm algorithm_from_string(std::string_view name);

/// Per-rank local blocks of the three distributed matrices (Real mode).
struct LocalBlocks {
  la::Matrix a;
  la::Matrix b;
  la::Matrix c;
};

}  // namespace hs::core
