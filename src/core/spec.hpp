// Problem and run descriptions shared by all distributed algorithms.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "grid/process_grid.hpp"
#include "la/matrix.hpp"
#include "net/bcast_cost.hpp"

namespace hs::core {

using la::index_t;

/// C (m x n) = A (m x k) * B (k x n), advanced in rank-`block` updates.
/// `outer_block` is HSUMMA's inter-group block size B; 0 means "same as
/// block" (the b = B configuration the paper uses in its experiments).
struct ProblemSpec {
  index_t m = 0;
  index_t k = 0;
  index_t n = 0;
  index_t block = 64;
  index_t outer_block = 0;

  static ProblemSpec square(index_t n, index_t block,
                            index_t outer_block = 0) {
    return {n, n, n, block, outer_block};
  }

  index_t effective_outer_block() const {
    return outer_block == 0 ? block : outer_block;
  }

  double total_flops() const {
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k);
  }
};

/// Real payloads carry matrix data and allow verification; phantom payloads
/// charge identical wire and compute time without allocating matrices
/// (mandatory at BlueGene/P scale).
enum class PayloadMode { Real, Phantom };

enum class Algorithm {
  Summa,
  Hsumma,
  HsummaMultilevel,
  SummaCyclic,   // block-cyclic distribution (paper's future work)
  HsummaCyclic,  // block-cyclic distribution, outer block = dist block
  Cannon,
  Fox,
  Summa25D,
};

std::string_view to_string(Algorithm algorithm);
Algorithm algorithm_from_string(std::string_view name);

/// Per-rank local blocks of the three distributed matrices (Real mode).
struct LocalBlocks {
  la::Matrix a;
  la::Matrix b;
  la::Matrix c;
};

}  // namespace hs::core
