#include "core/hierarchy.hpp"

#include <algorithm>
#include <charconv>
#include <set>

#include "common/check.hpp"
#include "core/hier_bcast.hpp"
#include "grid/hier_grid.hpp"

namespace hs::core {

GroupHierarchy::GroupHierarchy(std::vector<int> levels) {
  for (const int g : levels) {
    HS_REQUIRE_MSG(g >= 1, "hierarchy level factor " << g << " must be >= 1");
    if (g > 1) levels_.push_back(g);
  }
}

GroupHierarchy GroupHierarchy::from_scalar(int groups) {
  HS_REQUIRE_MSG(groups >= 0, "group count " << groups << " must be >= 0");
  if (groups <= 1) return {};
  return GroupHierarchy({groups});
}

GroupHierarchy GroupHierarchy::parse(std::string_view text) {
  if (text.empty() || text == "flat") return {};
  std::vector<int> levels;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t next = std::min(text.find('x', pos), text.size());
    const std::string_view part = text.substr(pos, next - pos);
    int value = 0;
    const auto [ptr, ec] =
        std::from_chars(part.data(), part.data() + part.size(), value);
    HS_REQUIRE_MSG(ec == std::errc() && ptr == part.data() + part.size() &&
                       value >= 1,
                   "bad hierarchy spec '" << std::string(text)
                                          << "' (want \"flat\", \"8\" or "
                                             "\"8x4x2\")");
    levels.push_back(value);
    if (next == text.size()) break;
    pos = next + 1;
  }
  return GroupHierarchy(std::move(levels));
}

int GroupHierarchy::scalar() const {
  HS_REQUIRE_MSG(is_scalar(), "hierarchy " << to_string()
                                           << " has no scalar group count");
  return levels_.empty() ? 1 : levels_.front();
}

long long GroupHierarchy::product() const noexcept {
  long long product = 1;
  for (const int g : levels_) product *= g;
  return product;
}

std::string GroupHierarchy::to_string() const {
  if (levels_.empty()) return "flat";
  std::string out;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (i > 0) out += 'x';
    out += std::to_string(levels_[i]);
  }
  return out;
}

HierarchyArrangement arrange_hierarchy(const GroupHierarchy& hierarchy,
                                       grid::GridShape grid) {
  HS_REQUIRE(grid.rows >= 1 && grid.cols >= 1);
  HierarchyArrangement out;
  grid::GridShape remaining = grid;
  for (const int groups : hierarchy.levels()) {
    const grid::GridShape arrangement =
        grid::group_arrangement(remaining, groups);
    HS_REQUIRE_MSG(arrangement.size() == groups,
                   "no valid arrangement of " << groups
                                              << " groups on this grid"
                                              << " (hierarchy "
                                              << hierarchy.to_string()
                                              << ", remaining sub-grid "
                                              << remaining.rows << "x"
                                              << remaining.cols << ")");
    out.levels.push_back(arrangement);
    out.row_levels.push_back(arrangement.cols);
    out.col_levels.push_back(arrangement.rows);
    remaining = {remaining.rows / arrangement.rows,
                 remaining.cols / arrangement.cols};
  }
  out.leaf = remaining;
  return out;
}

std::vector<std::vector<int>> hierarchy_level_leaders(
    const GroupHierarchy& hierarchy, grid::GridShape grid) {
  const HierarchyArrangement arrangement =
      arrange_hierarchy(hierarchy, grid);
  std::vector<std::vector<int>> out;
  out.reserve(arrangement.levels.size());
  // Walk the chain outermost-in, carrying the origin (top-left grid
  // coordinate) of every group at the current level; each level refines
  // every group of the previous one, so origins multiply by I_l * J_l.
  struct Origin {
    int row = 0;
    int col = 0;
  };
  std::vector<Origin> origins{{0, 0}};
  grid::GridShape remaining = grid;
  for (const grid::GridShape& level : arrangement.levels) {
    const int sub_rows = remaining.rows / level.rows;
    const int sub_cols = remaining.cols / level.cols;
    std::vector<Origin> next;
    next.reserve(origins.size() *
                 static_cast<std::size_t>(level.size()));
    for (const Origin& origin : origins)
      for (int gi = 0; gi < level.rows; ++gi)
        for (int gj = 0; gj < level.cols; ++gj)
          next.push_back(
              {origin.row + gi * sub_rows, origin.col + gj * sub_cols});
    origins = std::move(next);
    std::vector<int> leaders;
    leaders.reserve(origins.size());
    for (const Origin& origin : origins)
      leaders.push_back(origin.row * grid.cols + origin.col);
    std::sort(leaders.begin(), leaders.end());
    out.push_back(std::move(leaders));
    remaining = {sub_rows, sub_cols};
  }
  return out;
}

bool hierarchy_fits(const GroupHierarchy& hierarchy, grid::GridShape grid) {
  if (grid.rows < 1 || grid.cols < 1) return false;
  grid::GridShape remaining = grid;
  for (const int groups : hierarchy.levels()) {
    const grid::GridShape arrangement =
        grid::group_arrangement(remaining, groups);
    if (arrangement.size() != groups) return false;
    remaining = {remaining.rows / arrangement.rows,
                 remaining.cols / arrangement.cols};
  }
  return true;
}

std::vector<int> full_group_chain(int groups, int levels) {
  HS_REQUIRE(groups >= 1 && levels >= 1);
  std::vector<int> chain = balanced_levels(groups, levels);
  int product = 1;
  for (const int f : chain) product *= f;
  if (groups / product > 1) chain.push_back(groups / product);
  return chain;
}

std::vector<GroupHierarchy> candidate_hierarchies(grid::GridShape grid,
                                                  int max_levels) {
  std::vector<GroupHierarchy> out;
  if (max_levels < 2) return out;
  std::set<std::string> seen;
  for (const int groups : grid::valid_group_counts(grid)) {
    for (int levels = 2; levels <= max_levels; ++levels) {
      GroupHierarchy chain{full_group_chain(groups, levels)};
      if (chain.depth() < 2) continue;  // scalar sweep covers it
      if (!hierarchy_fits(chain, grid)) continue;
      if (seen.insert(chain.to_string()).second) out.push_back(chain);
    }
  }
  return out;
}

}  // namespace hs::core
