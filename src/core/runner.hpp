// End-to-end run harness: allocate + fill distributed inputs, spawn one
// program per rank, drive the simulation, aggregate timing, verify.
//
// This is the API the examples, tests and every figure-reproduction bench
// build on. One Machine may execute several runs back to back (virtual time
// keeps advancing; results report deltas).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/hierarchy.hpp"
#include "core/spec.hpp"
#include "mpc/machine.hpp"
#include "trace/metrics.hpp"
#include "trace/phase.hpp"
#include "trace/recorder.hpp"

namespace hs::core {

struct RunOptions {
  Algorithm algorithm = Algorithm::Summa;
  grid::GridShape grid;            // s x t (per layer for Summa25D)
  int layers = 1;                  // Summa25D only
  grid::GridShape groups{1, 1};    // Hsumma only
  std::vector<int> row_levels;     // HsummaMultilevel only
  std::vector<int> col_levels;     // HsummaMultilevel only
  /// The group hierarchy this run was adapted from (recorded by
  /// adapt_hierarchy for diagnostics; flat when the run was requested with
  /// a legacy scalar group count <= 1 or never adapted).
  GroupHierarchy hierarchy;
  ProblemSpec problem;
  PayloadMode mode = PayloadMode::Real;
  std::optional<net::BcastAlgo> bcast_algo;  // default: machine config
  /// Communication/computation overlap. Shorthand for lookahead = 1; kept
  /// because a plain on/off switch is what most sweeps want.
  bool overlap = false;
  /// Task-plan look-ahead depth D (kernels with OverlapSupport::TaskPlan).
  /// -1 derives the depth from `overlap` (true -> 1, false -> 0); 0 is the
  /// classic blocking schedule; 1 the double-buffered pipeline; D >= 2
  /// prefetches up to D panels (see core/task_plan.hpp). Requesting any
  /// depth >= 1 on a kernel without overlap support is a hard error, and
  /// depths >= 2 require OverlapSupport::TaskPlan.
  int lookahead = -1;
  bool verify = false;             // Real mode only
  std::uint64_t seed = 2013;       // input generator seed
  /// Optional structured event sink (see trace/recorder.hpp). Attached to
  /// the machine for the duration of the run (the previous recorder, if
  /// any, is restored afterwards); must outlive the run. Recording never
  /// changes the RunResult.
  trace::Recorder* recorder = nullptr;
  /// Rank-sampling spec for the attached recorder (trace::TraceSample
  /// syntax, e.g. "leaders+slowest:4"). run() resolves it against this
  /// run's geometry — hierarchy/group leader ranks, the machine's
  /// rank_gamma multipliers and the fault plan's slowdown windows — and
  /// installs the resolved rank set on the recorder before spawning, so a
  /// p = 2^20 trace stores O(sampled ranks) spans. Empty (the default)
  /// records every rank; ignored without a recorder. Sampling is a pure
  /// store-side filter: the RunResult stays bit-identical.
  std::string trace_sample;
  /// Optional metrics sink. run() feeds it distribution histograms the
  /// aggregate TimingReport cannot carry: per-rank comm/comp time
  /// (core.rank.comm_s / comp_s), per-chain-level broadcast time
  /// (core.rank.level<l>_comm_s, full rank population), and the recorder's
  /// exposed-wait histogram (trace.task.exposed_wait_s) when tracing.
  /// Works with or without a recorder; must outlive the run.
  trace::MetricsRegistry* metrics = nullptr;
  /// Optional fault injector (see fault/injector.hpp). Attached to the
  /// machine for the duration of the run, previous injector restored
  /// afterwards; must outlive the run. The RunResult's fault counters
  /// report this run's deltas.
  fault::FaultInjector* fault_injector = nullptr;
};

struct RunResult {
  trace::TimingReport timing;
  /// Max |C - reference| over all verified blocks; -1 when not verified.
  double max_error = -1.0;
  std::uint64_t messages = 0;
  std::uint64_t wire_bytes = 0;
  /// Fault-injection deltas for this run (zero without an injector):
  /// dropped transmissions, retransmissions, and expired deadlines.
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_retries = 0;
  std::uint64_t fault_timeouts = 0;
};

/// The resolved look-ahead depth: options.lookahead when explicitly set
/// (>= 0), else 1/0 from the `overlap` switch.
inline int effective_lookahead(const RunOptions& options) {
  return options.lookahead >= 0 ? options.lookahead
                                : (options.overlap ? 1 : 0);
}

/// Execute one distributed multiplication on `machine`.
/// Requires machine.ranks() == options.grid.size() * options.layers.
RunResult run(mpc::Machine& machine, const RunOptions& options);

}  // namespace hs::core
