#include "core/cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "core/hier_bcast.hpp"
#include "core/panel.hpp"
#include "grid/distribution.hpp"
#include "grid/process_grid.hpp"
#include "la/factor.hpp"
#include "la/gemm.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"

namespace hs::core {

void check_cholesky_preconditions(grid::GridShape shape, index_t n,
                                  index_t block) {
  HS_REQUIRE_MSG(shape.rows == shape.cols,
                 "Cholesky requires a square process grid (the transpose "
                 "path pairs grid row i with grid col i)");
  HS_REQUIRE_MSG(n > 0 && block > 0, "n and block must be positive");
  HS_REQUIRE_MSG(n % shape.rows == 0,
                 "n=" << n << " must be divisible by the grid dimension");
  HS_REQUIRE_MSG((n / shape.rows) % block == 0,
                 "block=" << block << " must divide the local extent "
                          << n / shape.rows);
}

la::ElementFn cholesky_input_elements(std::uint64_t seed, index_t n) {
  const la::ElementFn noise = la::uniform_elements(seed);
  const double shift = static_cast<double>(n);
  return [noise, shift](index_t i, index_t j) {
    const index_t lo = std::min(i, j);
    const index_t hi = std::max(i, j);
    return noise(lo, hi) + (i == j ? shift : 0.0);
  };
}

namespace {

constexpr int kTransposeTag = 17;

}  // namespace

desim::Task<void> cholesky_rank(CholeskyArgs args) {
  check_cholesky_preconditions(args.shape, args.n, args.block);
  const grid::ProcessGrid pg(args.comm, args.shape);
  mpc::Machine& machine = args.comm.machine();
  const int self = args.comm.my_world_rank();
  desim::Engine& engine = machine.engine();

  const index_t b = args.block;
  const int q = args.shape.rows;
  const index_t local_dim = args.n / q;
  const PayloadMode mode =
      args.local_a == nullptr ? PayloadMode::Phantom : PayloadMode::Real;

  trace::RankStats scratch_stats;
  trace::RankStats& stats = args.stats ? *args.stats : scratch_stats;

  PanelBuffer diag(b, b, mode);
  PanelBuffer l_left(local_dim, b, mode);   // my rows' L panel
  PanelBuffer l_right(local_dim, b, mode);  // my cols' L panel (transposed use)

  const index_t steps = args.n / b;
  for (index_t k = 0; k < steps; ++k) {
    const index_t pivot = k * b;
    const int owner = static_cast<int>(pivot / local_dim);  // row == col
    const index_t local_0 = pivot - static_cast<index_t>(owner) * local_dim;

    const index_t row_start = std::clamp<index_t>(
        pivot + b - static_cast<index_t>(pg.my_row()) * local_dim, 0,
        local_dim);
    const index_t col_start = std::clamp<index_t>(
        pivot + b - static_cast<index_t>(pg.my_col()) * local_dim, 0,
        local_dim);
    const index_t trailing_rows = local_dim - row_start;
    const index_t trailing_cols = local_dim - col_start;
    // Trailing extent of a given grid row index (same formula the peers
    // use; needed to size transposed panels consistently).
    auto trailing_of = [&](int grid_index) {
      return local_dim - std::clamp<index_t>(
                             pivot + b -
                                 static_cast<index_t>(grid_index) * local_dim,
                             0, local_dim);
    };

    // 1. Diagonal factor + broadcast down the pivot column.
    if (pg.my_row() == owner && pg.my_col() == owner) {
      {
        trace::PhaseTimer timer(stats.comp_time, engine);
        co_await machine.compute(self, static_cast<double>(b) *
                                       static_cast<double>(b) *
                                       static_cast<double>(b) / 3.0);
      }
      if (mode == PayloadMode::Real) {
        la::MatrixView block_kk = args.local_a->block(local_0, local_0, b, b);
        la::cholesky_factor_inplace(block_kk);
        diag.view().copy_from(block_kk);
      }
    }
    if (pg.my_col() == owner) {
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await mpc::bcast(pg.col_comm(), owner, diag.buf(), args.bcast_algo);
    }

    // 2. Panel solve on the pivot column.
    if (pg.my_col() == owner && trailing_rows > 0) {
      const double flops = static_cast<double>(trailing_rows) *
                           static_cast<double>(b) * static_cast<double>(b);
      {
        trace::PhaseTimer timer(stats.comp_time, engine);
        co_await machine.compute(self, flops);
      }
      if (mode == PayloadMode::Real) {
        la::MatrixView a_panel =
            args.local_a->block(row_start, local_0, trailing_rows, b);
        la::trsm_right_lower_transposed(diag.view(), a_panel);
        l_left.view().block(0, 0, trailing_rows, b).copy_from(a_panel);
      }
    }

    // 3a. Left factor: broadcast the L panel along my grid row.
    if (trailing_rows > 0) {
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await hier_bcast(pg.row_comm(), owner,
                          l_left.row_slice(0, trailing_rows),
                          args.row_levels, args.bcast_algo);
    }

    // 3b. Right factor: the pivot-column rank of grid row j hands its panel
    //     to the diagonal rank (j, j), which broadcasts it down column j.
    const index_t my_row_trailing = trailing_rows;
    if (pg.my_col() == owner && pg.my_row() != owner &&
        my_row_trailing > 0) {
      // I am (j, owner): ship to (j, j) unless I already am the diagonal.
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await pg.row_comm().send(pg.my_row(),
                                  l_left.row_slice(0, my_row_trailing),
                                  kTransposeTag);
    }
    const index_t col_panel_rows = trailing_of(pg.my_col());
    if (col_panel_rows > 0) {
      if (pg.my_row() == pg.my_col()) {  // diagonal rank of column j
        if (pg.my_col() == owner) {
          // Panel already local (I computed it).
          if (mode == PayloadMode::Real)
            l_right.view()
                .block(0, 0, col_panel_rows, b)
                .copy_from(l_left.view().block(0, 0, col_panel_rows, b));
        } else {
          trace::PhaseTimer timer(stats.comm_time, engine);
          co_await pg.row_comm().recv(
              owner, l_right.row_slice(0, col_panel_rows), kTransposeTag);
        }
      }
      {
        trace::PhaseTimer timer(stats.comm_time, engine);
        co_await hier_bcast(pg.col_comm(), pg.my_col(),
                            l_right.row_slice(0, col_panel_rows),
                            args.col_levels, args.bcast_algo);
      }
    }

    // 4. Trailing update A -= L_left * L_right^T (full trailing rectangle;
    //    the redundant upper-triangle work is charged as computed).
    if (trailing_rows > 0 && trailing_cols > 0) {
      const double flops = la::gemm_flops(trailing_rows, trailing_cols, b);
      {
        trace::PhaseTimer timer(stats.comp_time, engine);
        co_await machine.compute(self, flops);
      }
      if (mode == PayloadMode::Real) {
        la::ConstMatrixView left(l_left.view().data(), trailing_rows, b, b);
        la::ConstMatrixView right(l_right.view().data(), trailing_cols, b, b);
        la::gemm_subtract_transb(
            left, right,
            args.local_a->block(row_start, col_start, trailing_rows,
                                trailing_cols));
      }
      stats.flops += static_cast<std::uint64_t>(flops);
    }
  }
}

}  // namespace hs::core
