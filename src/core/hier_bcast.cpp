#include "core/hier_bcast.hpp"

#include <cmath>

#include "core/panel.hpp"
#include "core/summa.hpp"
#include "core/task_plan.hpp"
#include "grid/process_grid.hpp"
#include "la/gemm.hpp"

namespace hs::core {

std::vector<BcastStage> hier_bcast_stages(mpc::Comm comm, int root,
                                          const std::vector<int>& factors) {
  HS_REQUIRE(root >= 0 && root < comm.size());
  std::vector<BcastStage> stages;
  mpc::Comm current = comm;
  int current_root = root;
  int level = 0;
  for (std::size_t i = 0; i <= factors.size(); ++i) {
    const int p = current.size();
    if (p == 1) return stages;
    if (i == factors.size()) {
      // Trailing "whatever remains" phase.
      stages.push_back({current, current_root, level});
      return stages;
    }
    const int factor = factors[i];
    HS_REQUIRE_MSG(factor >= 1 && p % factor == 0,
                   "hier_bcast level factor "
                       << factor << " must divide group size " << p);
    if (factor == 1) {
      ++level;  // degenerate level: skipped, but it keeps its chain slot
      continue;
    }
    if (factor == p) {
      stages.push_back({current, current_root, level});
      return stages;
    }

    const int block = p / factor;
    const int rank = current.rank();
    const int root_offset = current_root % block;

    // Phase: broadcast among the `factor` representatives (one per block,
    // each at the root's offset within its block).
    if (rank % block == root_offset) {
      std::vector<int> representatives;
      representatives.reserve(static_cast<std::size_t>(factor));
      for (int g = 0; g < factor; ++g)
        representatives.push_back(g * block + root_offset);
      stages.push_back({current.sub(representatives), current_root / block,
                        level});
    }

    // Descend into my block for the next level.
    std::vector<int> block_members;
    block_members.reserve(static_cast<std::size_t>(block));
    const int base = (rank / block) * block;
    for (int r = 0; r < block; ++r) block_members.push_back(base + r);
    current = current.sub(block_members);
    current_root = root_offset;
    ++level;
  }
  return stages;
}

desim::Task<void> hier_bcast(mpc::Comm comm, int root, mpc::Buf buf,
                             std::vector<int> level_factors,
                             std::optional<net::BcastAlgo> algo) {
  // Named local, not a range-for temporary: a lifetime-extended temporary
  // spanning co_await is miscompiled by GCC < 13 (left on the stack instead
  // of the coroutine frame).
  const std::vector<BcastStage> stages =
      hier_bcast_stages(comm, root, level_factors);
  for (const BcastStage& stage : stages)
    co_await mpc::bcast(stage.comm, stage.root, buf, algo);
}

std::vector<int> balanced_levels(int extent, int levels) {
  HS_REQUIRE(extent >= 1 && levels >= 1);
  std::vector<int> factors;
  int remaining = extent;
  for (int level = 1; level < levels && remaining > 1; ++level) {
    const int want = static_cast<int>(std::round(
        std::pow(static_cast<double>(remaining),
                 1.0 / static_cast<double>(levels - level + 1))));
    // Nearest divisor of `remaining` to the ideal balanced factor.
    int best = remaining;
    for (int d = 2; d <= remaining; ++d) {
      if (remaining % d != 0) continue;
      if (std::abs(d - want) < std::abs(best - want)) best = d;
    }
    factors.push_back(best);
    remaining /= best;
  }
  return factors;
}

namespace {

// Awaits one broadcast phase, charging stats.comm_time and — when the run
// actually has a chain (`split_levels`) — the per-level split plus the
// outer/inner pair (level 0 counts as the inter-group "outer" phase,
// deeper levels as "intra"). The rank's trace level state is stamped with
// the stage level around the call, so the recorded collective span carries
// the exact chain level the generalized critical-path analyzer splits on.
desim::Task<void> timed_stage_bcast(const BcastStage& stage, mpc::Buf buf,
                                    std::optional<net::BcastAlgo> algo,
                                    trace::RankStats& stats,
                                    const trace::RankTracer& tracer,
                                    desim::Engine& engine, bool split_levels) {
  trace::PhaseTimer total(stats.comm_time, engine);
  if (!split_levels) {
    co_await mpc::bcast(stage.comm, stage.root, buf, algo);
    co_return;
  }
  if (stats.level_comm_time.size() <= static_cast<std::size_t>(stage.level))
    stats.level_comm_time.resize(static_cast<std::size_t>(stage.level) + 1);
  trace::PhaseTimer per_level(
      stats.level_comm_time[static_cast<std::size_t>(stage.level)], engine);
  trace::PhaseTimer outer_inner(
      stage.level == 0 ? stats.outer_comm_time : stats.inner_comm_time,
      engine);
  tracer.set_level(stage.level);
  co_await mpc::bcast(stage.comm, stage.root, buf, algo);
  tracer.set_level(-1);
}

}  // namespace

desim::Task<void> hsumma_multilevel_rank(HsummaMultilevelArgs args) {
  if (args.lookahead >= 1) {
    co_await hsumma_multilevel_task_plan(std::move(args));
    co_return;
  }
  check_summa_divisibility(args.shape, args.problem);
  const grid::ProcessGrid pg(args.comm, args.shape);
  mpc::Machine& machine = args.comm.machine();
  const int self = args.comm.my_world_rank();
  desim::Engine& engine = machine.engine();

  const ProblemSpec& prob = args.problem;
  const index_t b = prob.block;
  const index_t local_m = prob.m / pg.rows();
  const index_t local_n = prob.n / pg.cols();
  const index_t local_k_a = prob.k / pg.cols();
  const index_t local_k_b = prob.k / pg.rows();
  const PayloadMode mode =
      args.local == nullptr ? PayloadMode::Phantom : PayloadMode::Real;
  const bool split_levels =
      !args.row_levels.empty() || !args.col_levels.empty();

  trace::RankStats scratch_stats;
  trace::RankStats& stats = args.stats ? *args.stats : scratch_stats;

  PanelBuffer a_panel(local_m, b, mode);
  PanelBuffer b_panel(b, local_n, mode);

  const index_t steps = prob.k / b;
  for (index_t q = 0; q < steps; ++q) {
    args.tracer.begin_step(engine, static_cast<int>(q), trace::Phase::Flat);
    const index_t pivot = q * b;

    const int a_root = static_cast<int>(pivot / local_k_a);
    if (mode == PayloadMode::Real && pg.my_col() == a_root) {
      const index_t col0 = pivot - static_cast<index_t>(a_root) * local_k_a;
      a_panel.view().copy_from(args.local->a.block(0, col0, local_m, b));
    }
    // Named locals (not range-for temporaries): see hier_bcast above.
    const std::vector<BcastStage> a_stages =
        hier_bcast_stages(pg.row_comm(), a_root, args.row_levels);
    for (const BcastStage& stage : a_stages)
      co_await timed_stage_bcast(stage, a_panel.buf(), args.bcast_algo, stats,
                                 args.tracer, engine, split_levels);

    const int b_root = static_cast<int>(pivot / local_k_b);
    if (mode == PayloadMode::Real && pg.my_row() == b_root) {
      const index_t row0 = pivot - static_cast<index_t>(b_root) * local_k_b;
      b_panel.view().copy_from(args.local->b.block(row0, 0, b, local_n));
    }
    const std::vector<BcastStage> b_stages =
        hier_bcast_stages(pg.col_comm(), b_root, args.col_levels);
    for (const BcastStage& stage : b_stages)
      co_await timed_stage_bcast(stage, b_panel.buf(), args.bcast_algo, stats,
                                 args.tracer, engine, split_levels);

    const double flops = la::gemm_flops(local_m, local_n, b);
    {
      trace::PhaseTimer timer(stats.comp_time, engine);
      trace::ComputeSpanGuard span(args.tracer, engine, flops);
      co_await machine.compute(self, flops);
    }
    if (mode == PayloadMode::Real)
      la::gemm(a_panel.view(), b_panel.view(), args.local->c.view());
    stats.flops += static_cast<std::uint64_t>(flops);
  }
}

}  // namespace hs::core
