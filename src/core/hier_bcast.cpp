#include "core/hier_bcast.hpp"

#include <cmath>

#include "core/panel.hpp"
#include "core/summa.hpp"
#include "grid/process_grid.hpp"
#include "la/gemm.hpp"

namespace hs::core {

desim::Task<void> hier_bcast(mpc::Comm comm, int root, mpc::Buf buf,
                             std::vector<int> level_factors,
                             std::optional<net::BcastAlgo> algo) {
  const int p = comm.size();
  HS_REQUIRE(root >= 0 && root < p);
  if (p == 1) co_return;
  if (level_factors.empty()) {
    co_await mpc::bcast(comm, root, buf, algo);
    co_return;
  }

  const int factor = level_factors.front();
  HS_REQUIRE_MSG(factor >= 1 && p % factor == 0,
                 "hier_bcast level factor " << factor
                                            << " must divide group size " << p);
  if (factor == 1 || factor == p) {
    // Degenerate level: skip it (factor==1) or flatten (factor==p).
    std::vector<int> rest(level_factors.begin() + 1, level_factors.end());
    if (factor == p) {
      co_await mpc::bcast(comm, root, buf, algo);
      co_return;
    }
    co_await hier_bcast(comm, root, buf, std::move(rest), algo);
    co_return;
  }

  const int block = p / factor;
  const int rank = comm.rank();
  const int root_offset = root % block;

  // Phase 1: broadcast among the `factor` representatives (one per block,
  // each at the root's offset within its block).
  if (rank % block == root_offset) {
    std::vector<int> representatives;
    representatives.reserve(static_cast<std::size_t>(factor));
    for (int g = 0; g < factor; ++g)
      representatives.push_back(g * block + root_offset);
    mpc::Comm rep_comm = comm.sub(representatives);
    co_await mpc::bcast(rep_comm, root / block, buf, algo);
  }

  // Phase 2: recurse within my block.
  std::vector<int> block_members;
  block_members.reserve(static_cast<std::size_t>(block));
  const int base = (rank / block) * block;
  for (int r = 0; r < block; ++r) block_members.push_back(base + r);
  mpc::Comm block_comm = comm.sub(block_members);
  std::vector<int> rest(level_factors.begin() + 1, level_factors.end());
  co_await hier_bcast(block_comm, root_offset, buf, std::move(rest), algo);
}

std::vector<int> balanced_levels(int extent, int levels) {
  HS_REQUIRE(extent >= 1 && levels >= 1);
  std::vector<int> factors;
  int remaining = extent;
  for (int level = 1; level < levels && remaining > 1; ++level) {
    const int want = static_cast<int>(std::round(
        std::pow(static_cast<double>(remaining),
                 1.0 / static_cast<double>(levels - level + 1))));
    // Nearest divisor of `remaining` to the ideal balanced factor.
    int best = remaining;
    for (int d = 2; d <= remaining; ++d) {
      if (remaining % d != 0) continue;
      if (std::abs(d - want) < std::abs(best - want)) best = d;
    }
    factors.push_back(best);
    remaining /= best;
  }
  return factors;
}

desim::Task<void> hsumma_multilevel_rank(HsummaMultilevelArgs args) {
  check_summa_divisibility(args.shape, args.problem);
  const grid::ProcessGrid pg(args.comm, args.shape);
  mpc::Machine& machine = args.comm.machine();
  const int self = args.comm.my_world_rank();
  desim::Engine& engine = machine.engine();

  const ProblemSpec& prob = args.problem;
  const index_t b = prob.block;
  const index_t local_m = prob.m / pg.rows();
  const index_t local_n = prob.n / pg.cols();
  const index_t local_k_a = prob.k / pg.cols();
  const index_t local_k_b = prob.k / pg.rows();
  const PayloadMode mode =
      args.local == nullptr ? PayloadMode::Phantom : PayloadMode::Real;

  trace::RankStats scratch_stats;
  trace::RankStats& stats = args.stats ? *args.stats : scratch_stats;

  PanelBuffer a_panel(local_m, b, mode);
  PanelBuffer b_panel(b, local_n, mode);

  const index_t steps = prob.k / b;
  for (index_t q = 0; q < steps; ++q) {
    const index_t pivot = q * b;

    const int a_root = static_cast<int>(pivot / local_k_a);
    if (mode == PayloadMode::Real && pg.my_col() == a_root) {
      const index_t col0 = pivot - static_cast<index_t>(a_root) * local_k_a;
      a_panel.view().copy_from(args.local->a.block(0, col0, local_m, b));
    }
    {
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await hier_bcast(pg.row_comm(), a_root, a_panel.buf(),
                          args.row_levels, args.bcast_algo);
    }

    const int b_root = static_cast<int>(pivot / local_k_b);
    if (mode == PayloadMode::Real && pg.my_row() == b_root) {
      const index_t row0 = pivot - static_cast<index_t>(b_root) * local_k_b;
      b_panel.view().copy_from(args.local->b.block(row0, 0, b, local_n));
    }
    {
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await hier_bcast(pg.col_comm(), b_root, b_panel.buf(),
                          args.col_levels, args.bcast_algo);
    }

    const double flops = la::gemm_flops(local_m, local_n, b);
    {
      trace::PhaseTimer timer(stats.comp_time, engine);
      co_await machine.compute(self, flops);
    }
    if (mode == PayloadMode::Real)
      la::gemm(a_panel.view(), b_panel.view(), args.local->c.view());
    stats.flops += static_cast<std::uint64_t>(flops);
  }
}

}  // namespace hs::core
