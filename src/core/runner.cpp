#include "core/runner.hpp"

#include <memory>
#include <string>

#include "core/kernel_registry.hpp"
#include "fault/injector.hpp"

namespace hs::core {

RunResult run(mpc::Machine& machine, const RunOptions& options) {
  const KernelDescriptor& kernel = kernel_descriptor(options.algorithm);
  const int total_ranks = options.grid.size() * options.layers;
  HS_REQUIRE_MSG(machine.ranks() == total_ranks,
                 "machine has " << machine.ranks() << " ranks but the run "
                 "needs " << total_ranks);
  HS_REQUIRE_MSG(options.mode == PayloadMode::Real || !options.verify,
                 "verification requires real payloads");
  const int lookahead = effective_lookahead(options);
  HS_REQUIRE_MSG(lookahead >= 0, "lookahead must be >= 0");
  if (lookahead >= 1) {
    HS_REQUIRE_MSG(kernel.overlap_support != OverlapSupport::None,
                   "kernel '" << kernel.name
                              << "' has no communication/computation overlap; "
                                 "--overlap/--lookahead are supported by: "
                              << overlap_kernel_name_list());
    HS_REQUIRE_MSG(
        kernel.overlap_support == OverlapSupport::TaskPlan || lookahead <= 1,
        "kernel '" << kernel.name << "' only has a double-buffered pipeline "
                   "(lookahead <= 1); depth " << lookahead
                   << " needs a task-plan kernel");
  }
  if (kernel.validate != nullptr) kernel.validate(options);

  const std::unique_ptr<KernelRun> body = kernel.make_run(options);

  std::vector<trace::RankStats> stats(static_cast<std::size_t>(total_ranks));
  const double start_time = machine.engine().now();
  const std::uint64_t start_messages = machine.messages_transferred();
  const std::uint64_t start_bytes = machine.bytes_transferred();

  trace::Recorder* const previous_recorder = machine.recorder();
  if (options.recorder != nullptr) machine.set_recorder(options.recorder);
  fault::FaultInjector* const previous_injector = machine.fault_injector();
  if (options.fault_injector != nullptr)
    machine.set_fault_injector(options.fault_injector);
  fault::FaultInjector* const injector = machine.fault_injector();
  const std::uint64_t start_drops =
      injector != nullptr ? injector->drops() : 0;
  const std::uint64_t start_retries =
      injector != nullptr ? injector->retries() : 0;
  const std::uint64_t start_timeouts = machine.timeouts();

  machine.engine().reserve(static_cast<std::size_t>(total_ranks),
                           static_cast<std::size_t>(total_ranks));
  for (int rank = 0; rank < total_ranks; ++rank) {
    machine.engine().spawn_indexed(
        body->program(machine, options, rank,
                      &stats[static_cast<std::size_t>(rank)]),
        kernel.name, rank);
  }
  machine.engine().run();
  if (options.recorder != nullptr) machine.set_recorder(previous_recorder);

  RunResult result;
  result.timing = trace::TimingReport::aggregate(
      machine.engine().now() - start_time, stats);
  result.messages = machine.messages_transferred() - start_messages;
  result.wire_bytes = machine.bytes_transferred() - start_bytes;
  if (injector != nullptr) {
    result.fault_drops = injector->drops() - start_drops;
    result.fault_retries = injector->retries() - start_retries;
  }
  result.fault_timeouts = machine.timeouts() - start_timeouts;
  if (options.fault_injector != nullptr)
    machine.set_fault_injector(previous_injector);
  if (options.verify) result.max_error = body->verify(options);
  return result;
}

}  // namespace hs::core
