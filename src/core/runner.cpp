#include "core/runner.hpp"

#include <algorithm>

#include "core/cannon.hpp"
#include "core/cyclic.hpp"
#include "core/fox.hpp"
#include "core/hier_bcast.hpp"
#include "core/hsumma.hpp"
#include "core/summa.hpp"
#include "core/summa25d.hpp"
#include "core/verify.hpp"
#include "grid/distribution.hpp"
#include "la/generate.hpp"

namespace hs::core {

std::string_view to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::Summa: return "summa";
    case Algorithm::Hsumma: return "hsumma";
    case Algorithm::HsummaMultilevel: return "hsumma-multilevel";
    case Algorithm::SummaCyclic: return "summa-cyclic";
    case Algorithm::HsummaCyclic: return "hsumma-cyclic";
    case Algorithm::Cannon: return "cannon";
    case Algorithm::Fox: return "fox";
    case Algorithm::Summa25D: return "summa-2.5d";
  }
  return "?";
}

Algorithm algorithm_from_string(std::string_view name) {
  if (name == "summa") return Algorithm::Summa;
  if (name == "hsumma") return Algorithm::Hsumma;
  if (name == "hsumma-multilevel") return Algorithm::HsummaMultilevel;
  if (name == "summa-cyclic") return Algorithm::SummaCyclic;
  if (name == "hsumma-cyclic") return Algorithm::HsummaCyclic;
  if (name == "cannon") return Algorithm::Cannon;
  if (name == "fox") return Algorithm::Fox;
  if (name == "summa-2.5d" || name == "summa25d") return Algorithm::Summa25D;
  HS_REQUIRE_MSG(false, "unknown algorithm '" << name << "'");
  return Algorithm::Summa;
}

RunResult run(mpc::Machine& machine, const RunOptions& options) {
  const int grid_ranks = options.grid.size();
  const int total_ranks = grid_ranks * options.layers;
  HS_REQUIRE_MSG(machine.ranks() == total_ranks,
                 "machine has " << machine.ranks() << " ranks but the run "
                 "needs " << total_ranks);
  HS_REQUIRE_MSG(options.mode == PayloadMode::Real || !options.verify,
                 "verification requires real payloads");

  const ProblemSpec& prob = options.problem;
  const bool cyclic = options.algorithm == Algorithm::SummaCyclic ||
                      options.algorithm == Algorithm::HsummaCyclic;
  const la::index_t dist_block = options.algorithm == Algorithm::HsummaCyclic
                                     ? prob.effective_outer_block()
                                     : prob.block;
  const grid::BlockDistribution dist_a(prob.m, prob.k, options.grid.rows,
                                       options.grid.cols);
  const grid::BlockDistribution dist_b(prob.k, prob.n, options.grid.rows,
                                       options.grid.cols);
  const grid::BlockDistribution dist_c(prob.m, prob.n, options.grid.rows,
                                       options.grid.cols);
  const grid::BlockCyclicDistribution cyc_a(prob.m, prob.k, dist_block,
                                            dist_block, options.grid.rows,
                                            options.grid.cols);
  const grid::BlockCyclicDistribution cyc_b(prob.k, prob.n, dist_block,
                                            dist_block, options.grid.rows,
                                            options.grid.cols);
  const grid::BlockCyclicDistribution cyc_c(prob.m, prob.n, dist_block,
                                            dist_block, options.grid.rows,
                                            options.grid.cols);
  const la::ElementFn gen_a = la::uniform_elements(options.seed);
  const la::ElementFn gen_b = la::uniform_elements(options.seed + 1);

  // Per-rank local blocks (Real mode). For Summa25D only layer 0 gets
  // inputs; other layers' inputs arrive by replication, which the zero
  // fill lets tests observe.
  std::vector<LocalBlocks> locals;
  if (options.mode == PayloadMode::Real) {
    locals.resize(static_cast<std::size_t>(total_ranks));
    for (int rank = 0; rank < total_ranks; ++rank) {
      const int layer = rank / grid_ranks;
      const int within = rank % grid_ranks;
      const int grid_row = within / options.grid.cols;
      const int grid_col = within % options.grid.cols;
      auto& local = locals[static_cast<std::size_t>(rank)];
      if (cyclic) {
        local.a = cyc_a.materialize_local(grid_row, grid_col, gen_a);
        local.b = cyc_b.materialize_local(grid_row, grid_col, gen_b);
        local.c = la::Matrix(cyc_c.local_rows(grid_row),
                             cyc_c.local_cols(grid_col));
        continue;
      }
      if (layer == 0) {
        local.a = dist_a.materialize_local(grid_row, grid_col, gen_a);
        local.b = dist_b.materialize_local(grid_row, grid_col, gen_b);
      } else {
        local.a = la::Matrix(dist_a.local_rows(grid_row),
                             dist_a.local_cols(grid_col));
        local.b = la::Matrix(dist_b.local_rows(grid_row),
                             dist_b.local_cols(grid_col));
      }
      local.c = la::Matrix(dist_c.local_rows(grid_row),
                           dist_c.local_cols(grid_col));
    }
  }

  std::vector<trace::RankStats> stats(static_cast<std::size_t>(total_ranks));
  const double start_time = machine.engine().now();
  const std::uint64_t start_messages = machine.messages_transferred();
  const std::uint64_t start_bytes = machine.bytes_transferred();

  auto local_of = [&](int rank) -> LocalBlocks* {
    return options.mode == PayloadMode::Real
               ? &locals[static_cast<std::size_t>(rank)]
               : nullptr;
  };

  machine.engine().reserve(static_cast<std::size_t>(total_ranks),
                           static_cast<std::size_t>(total_ranks));
  for (int rank = 0; rank < total_ranks; ++rank) {
    mpc::Comm world = machine.world(rank);
    trace::RankStats* rank_stats = &stats[static_cast<std::size_t>(rank)];
    desim::Task<void> program;
    switch (options.algorithm) {
      case Algorithm::Summa:
        program = summa_rank({world, options.grid, prob, local_of(rank),
                              rank_stats, options.bcast_algo,
                              options.overlap});
        break;
      case Algorithm::Hsumma:
        program = hsumma_rank({world, options.grid, options.groups, prob,
                               local_of(rank), rank_stats,
                               options.bcast_algo, options.overlap});
        break;
      case Algorithm::SummaCyclic:
        program = summa_cyclic_rank({world, options.grid, prob,
                                     local_of(rank), rank_stats,
                                     options.bcast_algo, options.overlap});
        break;
      case Algorithm::HsummaCyclic:
        program = hsumma_cyclic_rank({world, options.grid, options.groups,
                                      prob, local_of(rank), rank_stats,
                                      options.bcast_algo, options.overlap});
        break;
      case Algorithm::HsummaMultilevel:
        program = hsumma_multilevel_rank(
            {world, options.grid, prob, options.row_levels,
             options.col_levels, local_of(rank), rank_stats,
             options.bcast_algo});
        break;
      case Algorithm::Cannon:
        program = cannon_rank({world, options.grid, prob, local_of(rank),
                               rank_stats});
        break;
      case Algorithm::Fox:
        program = fox_rank({world, options.grid, prob, local_of(rank),
                            rank_stats, options.bcast_algo});
        break;
      case Algorithm::Summa25D:
        program = summa25d_rank({world, options.grid, options.layers, prob,
                                 local_of(rank), rank_stats,
                                 options.bcast_algo});
        break;
    }
    machine.engine().spawn(std::move(program),
                           std::string(to_string(options.algorithm)) +
                               " rank " + std::to_string(rank));
  }
  machine.engine().run();

  RunResult result;
  result.timing = trace::TimingReport::aggregate(
      machine.engine().now() - start_time, stats);
  result.messages = machine.messages_transferred() - start_messages;
  result.wire_bytes = machine.bytes_transferred() - start_bytes;

  if (options.verify) {
    // For Summa25D, C is summed back to layer 0; verify that layer only.
    const int verified_ranks =
        options.algorithm == Algorithm::Summa25D ? grid_ranks : total_ranks;
    double max_error = 0.0;
    for (int rank = 0; rank < verified_ranks; ++rank) {
      const int within = rank % grid_ranks;
      const int grid_row = within / options.grid.cols;
      const int grid_col = within % options.grid.cols;
      if (cyclic) {
        max_error = std::max(
            max_error,
            verify_c_cyclic(locals[static_cast<std::size_t>(rank)].c.view(),
                            cyc_c, grid_row, grid_col, gen_a, gen_b,
                            prob.k));
        continue;
      }
      max_error = std::max(
          max_error,
          verify_c_block(locals[static_cast<std::size_t>(rank)].c.view(),
                         gen_a, gen_b, prob.k, dist_c.row_offset(grid_row),
                         dist_c.col_offset(grid_col)));
    }
    result.max_error = max_error;
  }
  return result;
}

}  // namespace hs::core
