#include "core/runner.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "core/kernel_registry.hpp"
#include "fault/injector.hpp"
#include "trace/sample.hpp"

namespace hs::core {

namespace {

/// Resolve the run's --trace-sample spec against its geometry: leader
/// ranks from the hierarchy chain (or the legacy scalar-G group
/// arrangement), per-rank slowness from rank_gamma combined with the fault
/// plan's slowdown windows (max factor per rank).
trace::RankSampleSet resolve_trace_sample(const mpc::Machine& machine,
                                          const RunOptions& options,
                                          const fault::FaultInjector* injector,
                                          int total_ranks) {
  const trace::TraceSample sample =
      trace::TraceSample::parse(options.trace_sample);
  trace::SampleInputs inputs;
  inputs.ranks = total_ranks;
  inputs.seed = options.seed;
  if (sample.leaders_per_level > 0) {
    if (!options.hierarchy.is_flat()) {
      inputs.level_leaders =
          hierarchy_level_leaders(options.hierarchy, options.grid);
    } else if (options.groups.size() > 1) {
      // Legacy scalar-G HSUMMA: one level of leaders at the group origins.
      std::vector<int> leaders;
      leaders.reserve(static_cast<std::size_t>(options.groups.size()));
      const int sub_rows = options.grid.rows / options.groups.rows;
      const int sub_cols = options.grid.cols / options.groups.cols;
      for (int gi = 0; gi < options.groups.rows; ++gi)
        for (int gj = 0; gj < options.groups.cols; ++gj)
          leaders.push_back(gi * sub_rows * options.grid.cols + gj * sub_cols);
      inputs.level_leaders.push_back(std::move(leaders));
    }
  }
  if (sample.slowest_count > 0) {
    std::vector<double>& slow = inputs.rank_slowness;
    if (!machine.config().rank_gamma.empty())
      slow = machine.config().rank_gamma;
    if (injector != nullptr) {
      for (const fault::RankSlowdown& window : injector->plan().slowdowns) {
        if (window.rank < 0 || window.rank >= total_ranks) continue;
        if (slow.size() < static_cast<std::size_t>(total_ranks))
          slow.resize(static_cast<std::size_t>(total_ranks), 1.0);
        double& factor = slow[static_cast<std::size_t>(window.rank)];
        factor = std::max(factor, window.factor);
      }
    }
  }
  return trace::RankSampleSet::resolve(sample, inputs);
}

/// Feed per-rank distributions into the metrics sink: scalar TimingReport
/// maxima/means already exist, but at p = 2^20 the *distribution* of rank
/// times is the interesting part and histograms are the only O(1)-memory
/// way to keep it.
void collect_rank_metrics(trace::MetricsRegistry& metrics,
                          std::span<const trace::RankStats> stats) {
  hs::Histogram& comm = metrics.histogram("core.rank.comm_s");
  hs::Histogram& comp = metrics.histogram("core.rank.comp_s");
  for (const trace::RankStats& rank : stats) {
    comm.add(rank.comm_time);
    comp.add(rank.comp_time);
  }
  std::size_t depth = 0;
  for (const trace::RankStats& rank : stats)
    depth = std::max(depth, rank.level_comm_time.size());
  if (depth > 0) {
    for (std::size_t l = 0; l < depth; ++l) {
      hs::Histogram& level = metrics.histogram(
          "core.rank.level" + std::to_string(l) + "_comm_s");
      for (const trace::RankStats& rank : stats)
        level.add(l < rank.level_comm_time.size() ? rank.level_comm_time[l]
                                                  : 0.0);
    }
    return;
  }
  // Legacy two-level accounting: outer/inner are chain levels 0/1.
  bool hierarchical = false;
  for (const trace::RankStats& rank : stats)
    if (rank.outer_comm_time != 0.0 || rank.inner_comm_time != 0.0)
      hierarchical = true;
  if (!hierarchical) return;
  hs::Histogram& level0 = metrics.histogram("core.rank.level0_comm_s");
  hs::Histogram& level1 = metrics.histogram("core.rank.level1_comm_s");
  for (const trace::RankStats& rank : stats) {
    level0.add(rank.outer_comm_time);
    level1.add(rank.inner_comm_time);
  }
}

}  // namespace

RunResult run(mpc::Machine& machine, const RunOptions& options) {
  const KernelDescriptor& kernel = kernel_descriptor(options.algorithm);
  const int total_ranks = options.grid.size() * options.layers;
  HS_REQUIRE_MSG(machine.ranks() == total_ranks,
                 "machine has " << machine.ranks() << " ranks but the run "
                 "needs " << total_ranks);
  HS_REQUIRE_MSG(options.mode == PayloadMode::Real || !options.verify,
                 "verification requires real payloads");
  const int lookahead = effective_lookahead(options);
  HS_REQUIRE_MSG(lookahead >= 0, "lookahead must be >= 0");
  if (lookahead >= 1) {
    HS_REQUIRE_MSG(kernel.overlap_support != OverlapSupport::None,
                   "kernel '" << kernel.name
                              << "' has no communication/computation overlap; "
                                 "--overlap/--lookahead are supported by: "
                              << overlap_kernel_name_list());
    HS_REQUIRE_MSG(
        kernel.overlap_support == OverlapSupport::TaskPlan || lookahead <= 1,
        "kernel '" << kernel.name << "' only has a double-buffered pipeline "
                   "(lookahead <= 1); depth " << lookahead
                   << " needs a task-plan kernel");
  }
  if (kernel.validate != nullptr) kernel.validate(options);

  const std::unique_ptr<KernelRun> body = kernel.make_run(options);

  std::vector<trace::RankStats> stats(static_cast<std::size_t>(total_ranks));
  const double start_time = machine.engine().now();
  const std::uint64_t start_messages = machine.messages_transferred();
  const std::uint64_t start_bytes = machine.bytes_transferred();

  trace::Recorder* const previous_recorder = machine.recorder();
  if (options.recorder != nullptr) machine.set_recorder(options.recorder);
  fault::FaultInjector* const previous_injector = machine.fault_injector();
  if (options.fault_injector != nullptr)
    machine.set_fault_injector(options.fault_injector);
  fault::FaultInjector* const injector = machine.fault_injector();
  const std::uint64_t start_drops =
      injector != nullptr ? injector->drops() : 0;
  const std::uint64_t start_retries =
      injector != nullptr ? injector->retries() : 0;
  const std::uint64_t start_timeouts = machine.timeouts();

  if (options.recorder != nullptr && !options.trace_sample.empty())
    options.recorder->set_sample(
        resolve_trace_sample(machine, options, injector, total_ranks));

  machine.engine().reserve(static_cast<std::size_t>(total_ranks),
                           static_cast<std::size_t>(total_ranks));
  for (int rank = 0; rank < total_ranks; ++rank) {
    machine.engine().spawn_indexed(
        body->program(machine, options, rank,
                      &stats[static_cast<std::size_t>(rank)]),
        kernel.name, rank);
  }
  machine.engine().run();
  if (options.recorder != nullptr) machine.set_recorder(previous_recorder);

  RunResult result;
  result.timing = trace::TimingReport::aggregate(
      machine.engine().now() - start_time, stats);
  result.messages = machine.messages_transferred() - start_messages;
  result.wire_bytes = machine.bytes_transferred() - start_bytes;
  if (injector != nullptr) {
    result.fault_drops = injector->drops() - start_drops;
    result.fault_retries = injector->retries() - start_retries;
  }
  result.fault_timeouts = machine.timeouts() - start_timeouts;
  if (options.fault_injector != nullptr)
    machine.set_fault_injector(previous_injector);
  if (options.metrics != nullptr) {
    collect_rank_metrics(*options.metrics, stats);
    if (options.recorder != nullptr &&
        !options.recorder->exposed_wait_histogram().empty())
      options.metrics->histogram("trace.task.exposed_wait_s")
          .merge(options.recorder->exposed_wait_histogram());
  }
  if (options.verify) result.max_error = body->verify(options);
  return result;
}

}  // namespace hs::core
