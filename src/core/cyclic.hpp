// Block-cyclic SUMMA and HSUMMA — the paper's primary declared future work
// ("we believe that by using block-cyclic distribution the communication
// can be better overlapped and parallelized").
//
// With the ScaLAPACK-style block-cyclic layout (distribution block = the
// algorithm's block size), the pivot panel's owner *rotates* every step:
// step q's A panel lives on grid column q mod t and B panel on grid row
// q mod s. Two consequences the paper anticipates:
//
//   * consecutive steps broadcast from different roots, so with the
//     overlapped pipeline the forked broadcasts contend less on any single
//     root's send port — communication hides better than in the
//     block-checkerboard layout where one column roots k/(t*b) consecutive
//     steps;
//   * pivot alignment is automatic: only k must be a multiple of the
//     distribution block (m and n may be anything numroc can deal).
//
// hsumma_cyclic uses the outer block B as the distribution block, so each
// outer panel still has a single (rotating) owner column, preserving the
// two-phase hierarchy.
#pragma once

#include "core/hsumma.hpp"
#include "core/summa.hpp"

namespace hs::core {

/// Block-cyclic SUMMA. Distribution block = problem.block (= b). Supports
/// the overlapped pipeline. Precondition: b | k.
desim::Task<void> summa_cyclic_rank(SummaArgs args);

/// Block-cyclic HSUMMA. Distribution block = problem.effective_outer_block
/// (= B); inner steps slice the outer panel locally. Preconditions: b | B,
/// B | k. Outer phase blocking; inner phase honors args.overlap.
desim::Task<void> hsumma_cyclic_rank(HsummaArgs args);

}  // namespace hs::core
