#include "core/task_plan.hpp"

#include <algorithm>
#include <vector>

#include "core/hier_bcast.hpp"
#include "core/panel.hpp"
#include "grid/hier_grid.hpp"
#include "grid/process_grid.hpp"
#include "la/factor.hpp"
#include "la/gemm.hpp"
#include "mpc/collectives.hpp"

namespace hs::core {

namespace {

trace::Phase to_trace_phase(int phase) {
  if (phase >= kPhaseLevelBase)
    return phase == kPhaseLevelBase ? trace::Phase::Outer
                                    : trace::Phase::Inner;
  switch (phase) {
    case kPhaseOuter: return trace::Phase::Outer;
    case kPhaseInner: return trace::Phase::Inner;
    default: return trace::Phase::Flat;
  }
}

/// The exact chain level the plan's phase encoding carries (kPhaseLevelBase
/// + level); the legacy outer/inner phases are chain levels 0/1; -1 for
/// flat. Unlike to_trace_phase this is lossless — the emitted TaskSpans
/// are what lets the critical-path analyzer split depth-L chains.
int to_trace_level(int phase) {
  if (phase >= kPhaseLevelBase) return phase - kPhaseLevelBase;
  if (phase == kPhaseOuter) return 0;
  if (phase == kPhaseInner) return 1;
  return -1;
}

/// One Machine::compute charge wrapped in the kernels' usual trace span.
desim::Task<void> compute_charge(mpc::Machine& machine, int self, double flops,
                                 trace::RankTracer tracer) {
  trace::ComputeSpanGuard span(tracer, machine.engine(), flops);
  co_await machine.compute(self, flops);
}

/// Cannon's step rotation: shift A left along the row, then B up along the
/// column (sequential, like the classic loop body — each sendrecv already
/// overlaps its own two transfers).
desim::Task<void> cannon_rotate_pair(mpc::Comm row, int a_dst, int a_src,
                                     mpc::ConstBuf a_send, mpc::Buf a_recv,
                                     mpc::Comm col, int b_dst, int b_src,
                                     mpc::ConstBuf b_send, mpc::Buf b_recv) {
  co_await row.sendrecv(a_dst, a_send, a_src, a_recv, /*send_tag=*/3,
                        /*recv_tag=*/3);
  co_await col.sendrecv(b_dst, b_send, b_src, b_recv, /*send_tag=*/4,
                        /*recv_tag=*/4);
}

}  // namespace

void PlanObserver::task_issued(const desim::TaskGraph& graph, int id) {
  for (const desim::TaskStepMark& mark : graph.spec(id).marks)
    tracer_.begin_step(engine_, mark.step, to_trace_phase(mark.phase));
}

void PlanObserver::accrue_wait(double t0, double t1, int phase) {
  stats_.comm_time += t1 - t0;
  if (phase == kPhaseOuter) {
    stats_.outer_comm_time += t1 - t0;
  } else if (phase == kPhaseInner) {
    stats_.inner_comm_time += t1 - t0;
  } else if (phase >= kPhaseLevelBase) {
    const auto level = static_cast<std::size_t>(phase - kPhaseLevelBase);
    if (stats_.level_comm_time.size() <= level)
      stats_.level_comm_time.resize(level + 1);
    stats_.level_comm_time[level] += t1 - t0;
    if (level == 0)
      stats_.outer_comm_time += t1 - t0;
    else
      stats_.inner_comm_time += t1 - t0;
  }
}

void PlanObserver::flush() {
  if (pending_group_ < 0) return;
  accrue_wait(pending_start_, pending_end_, pending_phase_);
  pending_group_ = -1;
}

void PlanObserver::task_finished(const desim::TaskGraph& graph, int id,
                                 desim::SimTime t0, desim::SimTime t1) {
  const desim::TaskSpec& spec = graph.spec(id);
  if (spec.kind == desim::TaskKind::Compute) {
    flush();
    stats_.comp_time += t1 - t0;
  }
  if (trace::Recorder* recorder = tracer_.recorder(); recorder != nullptr)
    recorder->add_task({t0, t1, tracer_.rank(),
                        spec.kind == desim::TaskKind::Compute
                            ? trace::TaskSpanKind::Compute
                            : trace::TaskSpanKind::Comm,
                        spec.step, to_trace_phase(spec.phase),
                        to_trace_level(spec.phase), spec.label});
}

void PlanObserver::task_waited(const desim::TaskGraph& graph, int id,
                               desim::SimTime t0, desim::SimTime t1) {
  const desim::TaskSpec& spec = graph.spec(id);
  if (spec.wait_group >= 0 && spec.wait_group == pending_group_) {
    pending_end_ = t1;  // contiguous join of the same fused timer scope
  } else {
    flush();
    if (spec.wait_group >= 0) {
      pending_group_ = spec.wait_group;
      pending_phase_ = spec.phase;
      pending_start_ = t0;
      pending_end_ = t1;
    } else {
      accrue_wait(t0, t1, spec.phase);
    }
  }
  if (trace::Recorder* recorder = tracer_.recorder(); recorder != nullptr)
    recorder->add_task({t0, t1, tracer_.rank(), trace::TaskSpanKind::Wait,
                        spec.step, to_trace_phase(spec.phase),
                        to_trace_level(spec.phase), spec.label});
}

// ---------------------------------------------------------------------------
// SUMMA
// ---------------------------------------------------------------------------

desim::Task<void> summa_task_plan(SummaArgs args) {
  check_summa_divisibility(args.shape, args.problem);
  const grid::ProcessGrid pg(args.comm, args.shape);
  mpc::Machine& machine = args.comm.machine();
  const int self = args.comm.my_world_rank();
  desim::Engine& engine = machine.engine();

  const ProblemSpec& prob = args.problem;
  const index_t b = prob.block;
  const index_t local_m = prob.m / pg.rows();
  const index_t local_n = prob.n / pg.cols();
  const index_t local_k_a = prob.k / pg.cols();
  const index_t local_k_b = prob.k / pg.rows();
  const PayloadMode mode =
      args.local == nullptr ? PayloadMode::Phantom : PayloadMode::Real;

  trace::RankStats scratch_stats;
  trace::RankStats& stats = args.stats ? *args.stats : scratch_stats;

  const index_t steps = prob.k / b;
  const int D = args.lookahead;
  const int slots = D + 1;
  std::vector<PanelBuffer> a_panels;
  std::vector<PanelBuffer> b_panels;
  a_panels.reserve(static_cast<std::size_t>(slots));
  b_panels.reserve(static_cast<std::size_t>(slots));
  for (int s = 0; s < slots; ++s) {
    a_panels.emplace_back(local_m, b, mode);
    b_panels.emplace_back(b, local_n, mode);
  }

  desim::TaskGraph graph;
  int prev_a = -1;
  int prev_b = -1;
  for (index_t q = 0; q < steps; ++q) {
    const int slot = static_cast<int>(q % slots);
    const index_t pivot = q * b;
    const int a_root = static_cast<int>(pivot / local_k_a);
    const int b_root = static_cast<int>(pivot / local_k_b);

    desim::TaskSpec a_spec;
    a_spec.kind = desim::TaskKind::Comm;
    a_spec.phase = kPhaseFlat;
    a_spec.channel = pg.row_comm().context();
    a_spec.step = q;
    a_spec.label = "bcast A";
    a_spec.wait_group = D >= 1 ? static_cast<int>(q) : -1;
    a_spec.out = {desim::region_id("summa.a", static_cast<std::uint64_t>(slot))};
    a_spec.marks = {{static_cast<long long>(q), kPhaseFlat}};
    // D <= 1: pin the fork point to the legacy pipeline's — step q+1's pair
    // forks only once *both* of step q's broadcasts have joined.
    if (D <= 1 && prev_a >= 0) a_spec.after = {prev_a, prev_b};
    desim::TaskGraph::Hook a_before;
    if (mode == PayloadMode::Real && pg.my_col() == a_root)
      a_before = [&args, &panel = a_panels[static_cast<std::size_t>(slot)],
                  pivot, a_root, local_m, b, local_k_a] {
        const index_t col0 = pivot - static_cast<index_t>(a_root) * local_k_a;
        panel.view().copy_from(args.local->a.block(0, col0, local_m, b));
      };
    const int a_id = graph.add(
        std::move(a_spec),
        [&pg, &args, &panel = a_panels[static_cast<std::size_t>(slot)],
         a_root] {
          return mpc::bcast(pg.row_comm(), a_root, panel.buf(),
                            args.bcast_algo);
        },
        std::move(a_before));

    desim::TaskSpec b_spec;
    b_spec.kind = desim::TaskKind::Comm;
    b_spec.phase = kPhaseFlat;
    b_spec.channel = pg.col_comm().context();
    b_spec.step = q;
    b_spec.label = "bcast B";
    b_spec.wait_group = D >= 1 ? static_cast<int>(q) : -1;
    b_spec.out = {desim::region_id("summa.b", static_cast<std::uint64_t>(slot))};
    if (D <= 1 && prev_a >= 0) b_spec.after = {prev_a, prev_b};
    desim::TaskGraph::Hook b_before;
    if (mode == PayloadMode::Real && pg.my_row() == b_root)
      b_before = [&args, &panel = b_panels[static_cast<std::size_t>(slot)],
                  pivot, b_root, b, local_n, local_k_b] {
        const index_t row0 = pivot - static_cast<index_t>(b_root) * local_k_b;
        panel.view().copy_from(args.local->b.block(row0, 0, b, local_n));
      };
    const int b_id = graph.add(
        std::move(b_spec),
        [&pg, &args, &panel = b_panels[static_cast<std::size_t>(slot)],
         b_root] {
          return mpc::bcast(pg.col_comm(), b_root, panel.buf(),
                            args.bcast_algo);
        },
        std::move(b_before));

    desim::TaskSpec c_spec;
    c_spec.kind = desim::TaskKind::Compute;
    c_spec.phase = kPhaseFlat;
    c_spec.step = q;
    c_spec.label = "rank-b update";
    c_spec.in = {desim::region_id("summa.a", static_cast<std::uint64_t>(slot)),
                 desim::region_id("summa.b", static_cast<std::uint64_t>(slot))};
    const double flops = la::gemm_flops(local_m, local_n, b);
    graph.add(
        std::move(c_spec),
        [&machine, self, flops, tracer = args.tracer] {
          return compute_charge(machine, self, flops, tracer);
        },
        {},
        [mode, &args, &stats, flops,
         &a_panel = a_panels[static_cast<std::size_t>(slot)],
         &b_panel = b_panels[static_cast<std::size_t>(slot)]] {
          if (mode == PayloadMode::Real)
            la::gemm(a_panel.view(), b_panel.view(), args.local->c.view());
          stats.flops += static_cast<std::uint64_t>(flops);
        });
    prev_a = a_id;
    prev_b = b_id;
  }

  PlanObserver observer(engine, stats, args.tracer);
  co_await desim::run_task_graph(engine, graph, D, &observer);
  observer.flush();
}

// ---------------------------------------------------------------------------
// HSUMMA
// ---------------------------------------------------------------------------

desim::Task<void> hsumma_task_plan(HsummaArgs args) {
  check_hsumma_divisibility(args.shape, args.groups, args.problem);
  const grid::HierGrid hg(args.comm, args.shape, args.groups);
  mpc::Machine& machine = args.comm.machine();
  const int self = args.comm.my_world_rank();
  desim::Engine& engine = machine.engine();

  const ProblemSpec& prob = args.problem;
  const index_t b = prob.block;
  const index_t outer = prob.effective_outer_block();
  const index_t local_m = prob.m / args.shape.rows;
  const index_t local_n = prob.n / args.shape.cols;
  const index_t local_k_a = prob.k / args.shape.cols;
  const index_t local_k_b = prob.k / args.shape.rows;
  const grid::GridShape local_shape = hg.local_shape();
  const PayloadMode mode =
      args.local == nullptr ? PayloadMode::Phantom : PayloadMode::Real;

  trace::RankStats scratch_stats;
  trace::RankStats& stats = args.stats ? *args.stats : scratch_stats;

  const index_t outer_steps = prob.k / outer;
  const index_t inner_steps = outer / b;
  const int D = args.lookahead;
  // Outer panels: D >= 2 keeps D in flight (the cross-big-step prefetch the
  // double buffer could not express); D <= 1 keeps one, exactly like the
  // blocking outer phase the legacy overlap branch retained.
  const int outer_slots = std::max(1, D);
  const int inner_slots = D + 1;

  std::vector<PanelBuffer> a_outers;
  std::vector<PanelBuffer> b_outers;
  std::vector<PanelBuffer> a_inners;
  std::vector<PanelBuffer> b_inners;
  a_outers.reserve(static_cast<std::size_t>(outer_slots));
  b_outers.reserve(static_cast<std::size_t>(outer_slots));
  a_inners.reserve(static_cast<std::size_t>(inner_slots));
  b_inners.reserve(static_cast<std::size_t>(inner_slots));
  for (int s = 0; s < outer_slots; ++s) {
    a_outers.emplace_back(local_m, outer, mode);
    b_outers.emplace_back(outer, local_n, mode);
  }
  for (int s = 0; s < inner_slots; ++s) {
    a_inners.emplace_back(local_m, b, mode);
    b_inners.emplace_back(b, local_n, mode);
  }

  desim::TaskGraph graph;
  int last_compute = -1;  // C(s-1, last): the D<=1 big-step drain barrier
  for (index_t s = 0; s < outer_steps; ++s) {
    const index_t pivot = s * outer;
    const int a_col = static_cast<int>(pivot / local_k_a);
    const int a_group_col = a_col / local_shape.cols;
    const int a_local_col = a_col % local_shape.cols;
    const int b_row = static_cast<int>(pivot / local_k_b);
    const int b_group_row = b_row / local_shape.rows;
    const int b_local_row = b_row % local_shape.rows;
    const int oslot = static_cast<int>(s % outer_slots);
    const desim::RegionId ao_region =
        desim::region_id("hsumma.ao", static_cast<std::uint64_t>(oslot));
    const desim::RegionId bo_region =
        desim::region_id("hsumma.bo", static_cast<std::uint64_t>(oslot));

    // The Outer step mark rides on this rank's first task of the big step
    // (OA where present, else OB, else the first inner broadcast), so D=0
    // inline execution stamps it at exactly the legacy program point.
    bool outer_mark_pending = true;
    const auto take_marks = [&](desim::TaskSpec& spec, long long inner_step) {
      if (outer_mark_pending)
        spec.marks.push_back({static_cast<long long>(s), kPhaseOuter});
      outer_mark_pending = false;
      if (inner_step >= 0) spec.marks.push_back({inner_step, kPhaseInner});
    };

    int oa_id = -1;
    int ob_id = -1;
    if (hg.local_col() == a_local_col) {
      desim::TaskSpec spec;
      spec.kind = desim::TaskKind::Comm;
      spec.phase = kPhaseOuter;
      spec.channel = hg.group_row_comm().context();
      spec.step = s;
      spec.label = "outer bcast A";
      spec.out = {ao_region};
      take_marks(spec, -1);
      if (D <= 1 && last_compute >= 0) spec.after = {last_compute};
      desim::TaskGraph::Hook before;
      if (mode == PayloadMode::Real && hg.flat().my_col() == a_col)
        before = [&args, &panel = a_outers[static_cast<std::size_t>(oslot)],
                  pivot, a_col, local_m, outer, local_k_a] {
          const index_t col0 = pivot - static_cast<index_t>(a_col) * local_k_a;
          panel.view().copy_from(args.local->a.block(0, col0, local_m, outer));
        };
      oa_id = graph.add(
          std::move(spec),
          [&hg, &args, &panel = a_outers[static_cast<std::size_t>(oslot)],
           a_group_col] {
            return mpc::bcast(hg.group_row_comm(), a_group_col, panel.buf(),
                              args.bcast_algo);
          },
          std::move(before));
    }
    if (hg.local_row() == b_local_row) {
      desim::TaskSpec spec;
      spec.kind = desim::TaskKind::Comm;
      spec.phase = kPhaseOuter;
      spec.channel = hg.group_col_comm().context();
      spec.step = s;
      spec.label = "outer bcast B";
      spec.out = {bo_region};
      take_marks(spec, -1);
      // D <= 1: the legacy path issued the B outer broadcast only after the
      // A outer broadcast returned; D >= 2 lets them fly concurrently
      // (independent communicators).
      if (D <= 1) {
        if (last_compute >= 0) spec.after.push_back(last_compute);
        if (oa_id >= 0) spec.after.push_back(oa_id);
      }
      desim::TaskGraph::Hook before;
      if (mode == PayloadMode::Real && hg.flat().my_row() == b_row)
        before = [&args, &panel = b_outers[static_cast<std::size_t>(oslot)],
                  pivot, b_row, outer, local_n, local_k_b] {
          const index_t row0 = pivot - static_cast<index_t>(b_row) * local_k_b;
          panel.view().copy_from(args.local->b.block(row0, 0, outer, local_n));
        };
      ob_id = graph.add(
          std::move(spec),
          [&hg, &args, &panel = b_outers[static_cast<std::size_t>(oslot)],
           b_group_row] {
            return mpc::bcast(hg.group_col_comm(), b_group_row, panel.buf(),
                              args.bcast_algo);
          },
          std::move(before));
    }

    int prev_ia = -1;
    int prev_ib = -1;
    for (index_t w = 0; w < inner_steps; ++w) {
      const index_t g = s * inner_steps + w;
      const int islot = static_cast<int>(g % inner_slots);
      const index_t offset = w * b;
      const desim::RegionId ai_region =
          desim::region_id("hsumma.ai", static_cast<std::uint64_t>(islot));
      const desim::RegionId bi_region =
          desim::region_id("hsumma.bi", static_cast<std::uint64_t>(islot));
      // D <= 1 pipeline-coupling: first inner pair waits for the outer
      // phase and the previous big step's last update (the legacy code
      // never forked across those boundaries); pair w waits for pair w-1.
      std::vector<int> coupling;
      if (D <= 1) {
        if (w == 0) {
          if (oa_id >= 0) coupling.push_back(oa_id);
          if (ob_id >= 0) coupling.push_back(ob_id);
          if (last_compute >= 0) coupling.push_back(last_compute);
        } else {
          coupling = {prev_ia, prev_ib};
        }
      }

      desim::TaskSpec ia_spec;
      ia_spec.kind = desim::TaskKind::Comm;
      ia_spec.phase = kPhaseInner;
      ia_spec.channel = hg.row_comm().context();
      ia_spec.step = g;
      ia_spec.label = "bcast A";
      ia_spec.wait_group = D >= 1 ? static_cast<int>(g) : -1;
      ia_spec.in = {ao_region};
      ia_spec.out = {ai_region};
      take_marks(ia_spec, static_cast<long long>(g));
      ia_spec.after = coupling;
      desim::TaskGraph::Hook ia_before;
      if (mode == PayloadMode::Real && hg.local_col() == a_local_col)
        ia_before = [&panel = a_inners[static_cast<std::size_t>(islot)],
                     &outer_panel = a_outers[static_cast<std::size_t>(oslot)],
                     offset, local_m, b] {
          panel.view().copy_from(
              outer_panel.view().block(0, offset, local_m, b));
        };
      const int ia_id = graph.add(
          std::move(ia_spec),
          [&hg, &args, &panel = a_inners[static_cast<std::size_t>(islot)],
           a_local_col] {
            return mpc::bcast(hg.row_comm(), a_local_col, panel.buf(),
                              args.bcast_algo);
          },
          std::move(ia_before));

      desim::TaskSpec ib_spec;
      ib_spec.kind = desim::TaskKind::Comm;
      ib_spec.phase = kPhaseInner;
      ib_spec.channel = hg.col_comm().context();
      ib_spec.step = g;
      ib_spec.label = "bcast B";
      ib_spec.wait_group = D >= 1 ? static_cast<int>(g) : -1;
      ib_spec.in = {bo_region};
      ib_spec.out = {bi_region};
      ib_spec.after = coupling;
      desim::TaskGraph::Hook ib_before;
      if (mode == PayloadMode::Real && hg.local_row() == b_local_row)
        ib_before = [&panel = b_inners[static_cast<std::size_t>(islot)],
                     &outer_panel = b_outers[static_cast<std::size_t>(oslot)],
                     offset, b, local_n] {
          panel.view().copy_from(
              outer_panel.view().block(offset, 0, b, local_n));
        };
      const int ib_id = graph.add(
          std::move(ib_spec),
          [&hg, &args, &panel = b_inners[static_cast<std::size_t>(islot)],
           b_local_row] {
            return mpc::bcast(hg.col_comm(), b_local_row, panel.buf(),
                              args.bcast_algo);
          },
          std::move(ib_before));

      desim::TaskSpec c_spec;
      c_spec.kind = desim::TaskKind::Compute;
      c_spec.phase = kPhaseInner;
      c_spec.step = g;
      c_spec.label = "rank-b update";
      // Reading the outer slots is what strands the next outer broadcast
      // behind this big step's updates (write-after-read on the slot ring).
      c_spec.in = {ai_region, bi_region, ao_region, bo_region};
      const double flops = la::gemm_flops(local_m, local_n, b);
      last_compute = graph.add(
          std::move(c_spec),
          [&machine, self, flops, tracer = args.tracer] {
            return compute_charge(machine, self, flops, tracer);
          },
          {},
          [mode, &args, &stats, flops,
           &a_panel = a_inners[static_cast<std::size_t>(islot)],
           &b_panel = b_inners[static_cast<std::size_t>(islot)]] {
            if (mode == PayloadMode::Real)
              la::gemm(a_panel.view(), b_panel.view(), args.local->c.view());
            stats.flops += static_cast<std::uint64_t>(flops);
          });
      prev_ia = ia_id;
      prev_ib = ib_id;
    }
  }

  PlanObserver observer(engine, stats, args.tracer);
  co_await desim::run_task_graph(engine, graph, D, &observer);
  observer.flush();
}

// ---------------------------------------------------------------------------
// Multi-level HSUMMA
// ---------------------------------------------------------------------------

namespace {

/// Static trace labels per chain level (TaskSpec::label must outlive the
/// graph). Depths past the table collapse onto the last entry.
const char* stage_label(bool is_a, int level) {
  static constexpr const char* kA[] = {"bcast A L0", "bcast A L1",
                                       "bcast A L2", "bcast A L3",
                                       "bcast A L4", "bcast A L5",
                                       "bcast A L6", "bcast A L7+"};
  static constexpr const char* kB[] = {"bcast B L0", "bcast B L1",
                                       "bcast B L2", "bcast B L3",
                                       "bcast B L4", "bcast B L5",
                                       "bcast B L6", "bcast B L7+"};
  const int i = std::min(level, 7);
  return is_a ? kA[i] : kB[i];
}

}  // namespace

desim::Task<void> hsumma_multilevel_task_plan(HsummaMultilevelArgs args) {
  check_summa_divisibility(args.shape, args.problem);
  const grid::ProcessGrid pg(args.comm, args.shape);
  mpc::Machine& machine = args.comm.machine();
  const int self = args.comm.my_world_rank();
  desim::Engine& engine = machine.engine();

  const ProblemSpec& prob = args.problem;
  const index_t b = prob.block;
  const index_t local_m = prob.m / pg.rows();
  const index_t local_n = prob.n / pg.cols();
  const index_t local_k_a = prob.k / pg.cols();
  const index_t local_k_b = prob.k / pg.rows();
  const PayloadMode mode =
      args.local == nullptr ? PayloadMode::Phantom : PayloadMode::Real;
  const bool split_levels =
      !args.row_levels.empty() || !args.col_levels.empty();

  trace::RankStats scratch_stats;
  trace::RankStats& stats = args.stats ? *args.stats : scratch_stats;

  const index_t steps = prob.k / b;
  const int D = args.lookahead;
  const int slots = D + 1;
  std::vector<PanelBuffer> a_panels;
  std::vector<PanelBuffer> b_panels;
  a_panels.reserve(static_cast<std::size_t>(slots));
  b_panels.reserve(static_cast<std::size_t>(slots));
  for (int s = 0; s < slots; ++s) {
    a_panels.emplace_back(local_m, b, mode);
    b_panels.emplace_back(b, local_n, mode);
  }

  desim::TaskGraph graph;
  std::vector<int> prev_comm;  // previous step's comm ids (D<=1 coupling)
  for (index_t q = 0; q < steps; ++q) {
    const int slot = static_cast<int>(q % slots);
    const index_t pivot = q * b;
    const int a_root = static_cast<int>(pivot / local_k_a);
    const int b_root = static_cast<int>(pivot / local_k_b);
    const desim::RegionId a_region =
        desim::region_id("ml.a", static_cast<std::uint64_t>(slot));
    const desim::RegionId b_region =
        desim::region_id("ml.b", static_cast<std::uint64_t>(slot));

    std::vector<int> step_comm;
    bool mark_pending = true;  // step mark rides this rank's first task
    const auto take_mark = [&](desim::TaskSpec& spec) {
      if (mark_pending)
        spec.marks.push_back({static_cast<long long>(q), kPhaseFlat});
      mark_pending = false;
    };

    // Every broadcast phase of this step becomes its own comm task writing
    // the panel's slot region: the WAW chain keeps phases of one panel in
    // order, the slot ring's write-after-read edge (the compute of step
    // q - D reads the region) caps prefetch depth exactly like flat SUMMA.
    // Fused wait groups are per (step, level) for real chains so D >= 1
    // runs still report a per-level wait split; flat chains keep the
    // legacy one-group-per-step fusion bit-for-bit.
    const auto add_stage = [&](const BcastStage& stage, bool is_a,
                               desim::TaskGraph::Hook before) {
      desim::TaskSpec spec;
      spec.kind = desim::TaskKind::Comm;
      spec.phase =
          split_levels ? kPhaseLevelBase + stage.level : kPhaseFlat;
      spec.channel = stage.comm.context();
      spec.step = q;
      spec.label = stage_label(is_a, stage.level);
      if (!split_levels) spec.label = is_a ? "bcast A" : "bcast B";
      spec.wait_group =
          D >= 1 ? static_cast<int>(split_levels ? q * 16 + stage.level : q)
                 : -1;
      spec.out = {is_a ? a_region : b_region};
      take_mark(spec);
      if (D <= 1) spec.after = prev_comm;
      PanelBuffer& panel = is_a ? a_panels[static_cast<std::size_t>(slot)]
                                : b_panels[static_cast<std::size_t>(slot)];
      const int id = graph.add(
          std::move(spec),
          [stage, &panel, &args] {
            return mpc::bcast(stage.comm, stage.root, panel.buf(),
                              args.bcast_algo);
          },
          std::move(before));
      step_comm.push_back(id);
    };

    desim::TaskGraph::Hook a_copy;
    if (mode == PayloadMode::Real && pg.my_col() == a_root)
      a_copy = [&args, &panel = a_panels[static_cast<std::size_t>(slot)],
                pivot, a_root, local_m, b, local_k_a] {
        const index_t col0 = pivot - static_cast<index_t>(a_root) * local_k_a;
        panel.view().copy_from(args.local->a.block(0, col0, local_m, b));
      };
    desim::TaskGraph::Hook b_copy;
    if (mode == PayloadMode::Real && pg.my_row() == b_root)
      b_copy = [&args, &panel = b_panels[static_cast<std::size_t>(slot)],
                pivot, b_root, b, local_n, local_k_b] {
        const index_t row0 = pivot - static_cast<index_t>(b_root) * local_k_b;
        panel.view().copy_from(args.local->b.block(row0, 0, b, local_n));
      };

    const std::vector<BcastStage> a_stages =
        hier_bcast_stages(pg.row_comm(), a_root, args.row_levels);
    for (std::size_t i = 0; i < a_stages.size(); ++i)
      add_stage(a_stages[i], /*is_a=*/true,
                i == 0 ? std::move(a_copy) : desim::TaskGraph::Hook{});
    const std::vector<BcastStage> b_stages =
        hier_bcast_stages(pg.col_comm(), b_root, args.col_levels);
    for (std::size_t i = 0; i < b_stages.size(); ++i)
      add_stage(b_stages[i], /*is_a=*/false,
                i == 0 ? std::move(b_copy) : desim::TaskGraph::Hook{});

    desim::TaskSpec c_spec;
    c_spec.kind = desim::TaskKind::Compute;
    c_spec.phase = kPhaseFlat;
    c_spec.step = q;
    c_spec.label = "rank-b update";
    c_spec.in = {a_region, b_region};
    take_mark(c_spec);
    const double flops = la::gemm_flops(local_m, local_n, b);
    // Size-1 comms have no broadcast stage (hier_bcast's p == 1 early out),
    // so a root copy that found no comm task to ride runs here instead.
    desim::TaskGraph::Hook c_before;
    if (a_stages.empty() && a_copy) c_before = std::move(a_copy);
    if (b_stages.empty() && b_copy) {
      if (c_before)
        c_before = [first = std::move(c_before), second = std::move(b_copy)] {
          first();
          second();
        };
      else
        c_before = std::move(b_copy);
    }
    graph.add(
        std::move(c_spec),
        [&machine, self, flops, tracer = args.tracer] {
          return compute_charge(machine, self, flops, tracer);
        },
        std::move(c_before),
        [mode, &args, &stats, flops,
         &a_panel = a_panels[static_cast<std::size_t>(slot)],
         &b_panel = b_panels[static_cast<std::size_t>(slot)]] {
          if (mode == PayloadMode::Real)
            la::gemm(a_panel.view(), b_panel.view(), args.local->c.view());
          stats.flops += static_cast<std::uint64_t>(flops);
        });
    prev_comm = std::move(step_comm);
  }

  PlanObserver observer(engine, stats, args.tracer);
  co_await desim::run_task_graph(engine, graph, D, &observer);
  observer.flush();
}

// ---------------------------------------------------------------------------
// Cannon
// ---------------------------------------------------------------------------

desim::Task<void> cannon_task_plan(CannonArgs args) {
  const ProblemSpec& prob = args.problem;
  HS_REQUIRE_MSG(args.shape.rows == args.shape.cols,
                 "Cannon requires a square process grid, got "
                     << args.shape.rows << "x" << args.shape.cols);
  HS_REQUIRE_MSG(prob.m == prob.k && prob.k == prob.n,
                 "Cannon requires square matrices");
  const int q = args.shape.rows;
  HS_REQUIRE_MSG(prob.n % q == 0, "n must be divisible by the grid dimension");

  const grid::ProcessGrid pg(args.comm, args.shape);
  mpc::Machine& machine = args.comm.machine();
  const int self = args.comm.my_world_rank();
  desim::Engine& engine = machine.engine();
  const index_t nb = prob.n / q;
  const auto count = static_cast<std::size_t>(nb * nb);
  const bool real = args.local != nullptr;

  trace::RankStats scratch_stats;
  trace::RankStats& stats = args.stats ? *args.stats : scratch_stats;

  const int i = pg.my_row();
  const int j = pg.my_col();
  const int D = args.lookahead;
  // Slot ring: step st's blocks live in slot st % S. S >= 2 keeps the send
  // (slot st-1) and receive (slot st) of a rotation disjoint.
  const int S = std::max(2, D + 1);

  std::vector<std::vector<double>> a_slots(static_cast<std::size_t>(S));
  std::vector<std::vector<double>> b_slots(static_cast<std::size_t>(S));
  std::vector<double> a_init;
  std::vector<double> b_init;
  if (real) {
    a_init.assign(args.local->a.data(), args.local->a.data() + count);
    b_init.assign(args.local->b.data(), args.local->b.data() + count);
    for (auto& slot : a_slots) slot.resize(count);
    for (auto& slot : b_slots) slot.resize(count);
  }
  // Step st's physical A block: the skew (or, skew-less, the initial copy)
  // feeds step 0; rotations feed the ring slots.
  const auto a_data = [&](int st) -> std::vector<double>& {
    return st == 0 && i == 0 ? a_init
                             : a_slots[static_cast<std::size_t>(st % S)];
  };
  const auto b_data = [&](int st) -> std::vector<double>& {
    return st == 0 && j == 0 ? b_init
                             : b_slots[static_cast<std::size_t>(st % S)];
  };
  const auto send_buf = [&](std::vector<double>& storage) {
    return real ? mpc::ConstBuf(std::span<const double>(storage))
                : mpc::ConstBuf::phantom(count);
  };
  const auto recv_buf = [&](std::vector<double>& storage) {
    return real ? mpc::Buf(std::span<double>(storage))
                : mpc::Buf::phantom(count);
  };
  const auto a_region = [](int st) {
    return desim::region_id("cannon.a", static_cast<std::uint64_t>(st));
  };
  const auto b_region = [](int st) {
    return desim::region_id("cannon.b", static_cast<std::uint64_t>(st));
  };

  desim::TaskGraph graph;
  const desim::RegionId a_init_region = desim::region_id("cannon.ainit", 0);
  const desim::RegionId b_init_region = desim::region_id("cannon.binit", 0);

  // Skew alignment: A(i,j) -> (i, j-i), B(i,j) -> (i-j, j), as single
  // distance-i/j rotations (tags 1 and 2, matching the classic loop).
  if (i > 0) {
    desim::TaskSpec spec;
    spec.kind = desim::TaskKind::Comm;
    spec.phase = kPhaseFlat;
    spec.label = "skew A";
    spec.in = {a_init_region};
    spec.out = {a_region(0)};
    const int left = (j - i + q) % q;
    const int right = (j + i) % q;
    graph.add(std::move(spec), [&pg, &a_init, &send_buf, &recv_buf, &a_data,
                                left, right]() -> desim::Task<void> {
      return pg.row_comm().sendrecv(left, send_buf(a_init), right,
                                    recv_buf(a_data(0)), /*send_tag=*/1,
                                    /*recv_tag=*/1);
    });
  }
  if (j > 0) {
    desim::TaskSpec spec;
    spec.kind = desim::TaskKind::Comm;
    spec.phase = kPhaseFlat;
    spec.label = "skew B";
    spec.in = {b_init_region};
    spec.out = {b_region(0)};
    const int up = (i - j + q) % q;
    const int down = (i + j) % q;
    graph.add(std::move(spec), [&pg, &b_init, &send_buf, &recv_buf, &b_data,
                                up, down]() -> desim::Task<void> {
      return pg.col_comm().sendrecv(up, send_buf(b_init), down,
                                    recv_buf(b_data(0)), /*send_tag=*/2,
                                    /*recv_tag=*/2);
    });
  }

  for (int st = 0; st < q; ++st) {
    if (st > 0) {
      desim::TaskSpec spec;
      spec.kind = desim::TaskKind::Comm;
      spec.phase = kPhaseFlat;
      spec.step = st;
      spec.label = "rotate A/B";
      spec.in = {a_region((st - 1) % S), b_region((st - 1) % S)};
      spec.out = {a_region(st % S), b_region(st % S)};
      graph.add(std::move(spec),
                [&pg, &send_buf, &recv_buf, &a_data, &b_data, st, i, j, q] {
                  return cannon_rotate_pair(
                      pg.row_comm(), (j - 1 + q) % q, (j + 1) % q,
                      send_buf(a_data(st - 1)), recv_buf(a_data(st)),
                      pg.col_comm(), (i - 1 + q) % q, (i + 1) % q,
                      send_buf(b_data(st - 1)), recv_buf(b_data(st)));
                });
    }

    desim::TaskSpec c_spec;
    c_spec.kind = desim::TaskKind::Compute;
    c_spec.phase = kPhaseFlat;
    c_spec.step = st;
    c_spec.label = "block multiply";
    c_spec.in = {a_region(st % S), b_region(st % S)};
    c_spec.marks = {{static_cast<long long>(st), kPhaseFlat}};
    const double flops = la::gemm_flops(nb, nb, nb);
    graph.add(
        std::move(c_spec),
        [&machine, self, flops, tracer = args.tracer] {
          return compute_charge(machine, self, flops, tracer);
        },
        {},
        [real, &args, &stats, flops, &a_data, &b_data, st, nb] {
          if (real) {
            la::ConstMatrixView a_view(a_data(st).data(), nb, nb, nb);
            la::ConstMatrixView b_view(b_data(st).data(), nb, nb, nb);
            la::gemm(a_view, b_view, args.local->c.view());
          }
          stats.flops += static_cast<std::uint64_t>(flops);
        });
  }

  PlanObserver observer(engine, stats, args.tracer);
  co_await desim::run_task_graph(engine, graph, D, &observer);
  observer.flush();
}

// ---------------------------------------------------------------------------
// LU
// ---------------------------------------------------------------------------

desim::Task<void> lu_task_plan(LuArgs args) {
  check_lu_preconditions(args.shape, args.n, args.block);
  const grid::ProcessGrid pg(args.comm, args.shape);
  mpc::Machine& machine = args.comm.machine();
  const int self = args.comm.my_world_rank();
  desim::Engine& engine = machine.engine();

  const index_t b = args.block;
  const index_t local_rows = args.n / pg.rows();
  const index_t local_cols = args.n / pg.cols();
  const PayloadMode mode =
      args.local_a == nullptr ? PayloadMode::Phantom : PayloadMode::Real;

  trace::RankStats scratch_stats;
  trace::RankStats& stats = args.stats ? *args.stats : scratch_stats;

  const int D = args.lookahead;
  // Look-ahead LU is depth-1 (factor k+1 during update k); D only needs to
  // widen the slot rings from one to two.
  const int ring = D >= 1 ? 2 : 1;
  std::vector<PanelBuffer> diag_slots;
  std::vector<PanelBuffer> l_slots;
  std::vector<PanelBuffer> u_slots;
  diag_slots.reserve(static_cast<std::size_t>(ring));
  l_slots.reserve(static_cast<std::size_t>(ring));
  u_slots.reserve(static_cast<std::size_t>(ring));
  for (int s = 0; s < ring; ++s) {
    diag_slots.emplace_back(b, b, mode);
    l_slots.emplace_back(local_rows, b, mode);  // sized for the worst case
    u_slots.emplace_back(b, local_cols, mode);
  }

  // Region granularity along the columns: one region per global column
  // block this rank owns ("lu.acol", global block index). The factor of
  // step k+1 depends only on its own column strip, which is what lets the
  // split trailing update unblock it early.
  const auto acol = [](index_t global_block) {
    return desim::region_id("lu.acol",
                            static_cast<std::uint64_t>(global_block));
  };
  const index_t col_blocks = local_cols / b;
  const index_t my_first_block =
      static_cast<index_t>(pg.my_col()) * local_cols / b;

  desim::TaskGraph graph;
  const index_t steps = args.n / b;
  for (index_t k = 0; k < steps; ++k) {
    const index_t pivot = k * b;
    const int owner_row = static_cast<int>(pivot / local_rows);
    const int owner_col = static_cast<int>(pivot / local_cols);
    const index_t local_r0 =
        pivot - static_cast<index_t>(owner_row) * local_rows;
    const index_t local_c0 =
        pivot - static_cast<index_t>(owner_col) * local_cols;
    const index_t row_start = std::clamp<index_t>(
        pivot + b - static_cast<index_t>(pg.my_row()) * local_rows, 0,
        local_rows);
    const index_t col_start = std::clamp<index_t>(
        pivot + b - static_cast<index_t>(pg.my_col()) * local_cols, 0,
        local_cols);
    const index_t trailing_rows = local_rows - row_start;
    const index_t trailing_cols = local_cols - col_start;
    const int ks = static_cast<int>(k % ring);
    const desim::RegionId diag_region =
        desim::region_id("lu.diag", static_cast<std::uint64_t>(ks));
    const desim::RegionId l_region =
        desim::region_id("lu.l", static_cast<std::uint64_t>(ks));
    const desim::RegionId u_region =
        desim::region_id("lu.u", static_cast<std::uint64_t>(ks));

    // My trailing column regions (global block indices > k that I own).
    std::vector<desim::RegionId> trailing_regions;
    for (index_t lc = col_start / b; lc < col_blocks; ++lc)
      trailing_regions.push_back(acol(my_first_block + lc));

    bool step_mark_pending = true;
    const auto take_mark = [&](desim::TaskSpec& spec) {
      if (step_mark_pending)
        spec.marks.push_back({static_cast<long long>(k), kPhaseFlat});
      step_mark_pending = false;
    };

    // 1. Factor the diagonal block (owner), then share it down the pivot
    //    column and across the pivot row.
    if (pg.my_row() == owner_row && pg.my_col() == owner_col) {
      desim::TaskSpec spec;
      spec.kind = desim::TaskKind::Compute;
      spec.phase = kPhaseFlat;
      spec.priority = 1;
      spec.step = k;
      spec.label = "factor";
      spec.in = {acol(k)};
      spec.out = {acol(k), diag_region};
      take_mark(spec);
      const double flops = 2.0 / 3.0 * static_cast<double>(b) *
                           static_cast<double>(b) * static_cast<double>(b);
      graph.add(
          std::move(spec),
          [&machine, self, flops, tracer = args.tracer] {
            return compute_charge(machine, self, flops, tracer);
          },
          {},
          [mode, &args, &diag = diag_slots[static_cast<std::size_t>(ks)],
           local_r0, local_c0, b] {
            if (mode != PayloadMode::Real) return;
            la::MatrixView block_kk =
                args.local_a->block(local_r0, local_c0, b, b);
            la::lu_factor_inplace(block_kk);
            diag.view().copy_from(block_kk);
          });
    }
    if (pg.my_col() == owner_col) {
      desim::TaskSpec spec;
      spec.kind = desim::TaskKind::Comm;
      spec.phase = kPhaseFlat;
      spec.channel = pg.col_comm().context();
      spec.step = k;
      spec.label = "diag bcast col";
      spec.in = {diag_region};
      spec.out = {diag_region};
      take_mark(spec);
      graph.add(std::move(spec),
                [&pg, &args, &diag = diag_slots[static_cast<std::size_t>(ks)],
                 owner_row] {
                  return mpc::bcast(pg.col_comm(), owner_row, diag.buf(),
                                    args.bcast_algo);
                });
    }
    if (pg.my_row() == owner_row) {
      desim::TaskSpec spec;
      spec.kind = desim::TaskKind::Comm;
      spec.phase = kPhaseFlat;
      spec.channel = pg.row_comm().context();
      spec.step = k;
      spec.label = "diag bcast row";
      spec.in = {diag_region};
      spec.out = {diag_region};
      take_mark(spec);
      graph.add(std::move(spec),
                [&pg, &args, &diag = diag_slots[static_cast<std::size_t>(ks)],
                 owner_col] {
                  return mpc::bcast(pg.row_comm(), owner_col, diag.buf(),
                                    args.bcast_algo);
                });
    }

    // 2 + 3a. Pivot-column ranks form the L panel; everyone joins its
    //         (hierarchical) row broadcast.
    if (trailing_rows > 0) {
      if (pg.my_col() == owner_col) {
        desim::TaskSpec spec;
        spec.kind = desim::TaskKind::Compute;
        spec.phase = kPhaseFlat;
        spec.priority = 1;
        spec.step = k;
        spec.label = "L solve";
        spec.in = {diag_region, acol(k)};
        spec.out = {acol(k), l_region};
        const double flops = static_cast<double>(trailing_rows) *
                             static_cast<double>(b) * static_cast<double>(b);
        graph.add(
            std::move(spec),
            [&machine, self, flops, tracer = args.tracer] {
              return compute_charge(machine, self, flops, tracer);
            },
            {},
            [mode, &args, &diag = diag_slots[static_cast<std::size_t>(ks)],
             &l_panel = l_slots[static_cast<std::size_t>(ks)], row_start,
             local_c0, trailing_rows, b] {
              if (mode != PayloadMode::Real) return;
              la::MatrixView a_panel =
                  args.local_a->block(row_start, local_c0, trailing_rows, b);
              la::trsm_right_upper(diag.view(), a_panel);
              l_panel.view().block(0, 0, trailing_rows, b).copy_from(a_panel);
            });
      }
      desim::TaskSpec spec;
      spec.kind = desim::TaskKind::Comm;
      spec.phase = kPhaseFlat;
      spec.channel = pg.row_comm().context();
      spec.step = k;
      spec.label = "L bcast";
      spec.in = {l_region};
      spec.out = {l_region};
      take_mark(spec);
      graph.add(std::move(spec),
                [&pg, &args, &l_panel = l_slots[static_cast<std::size_t>(ks)],
                 owner_col, trailing_rows] {
                  return hier_bcast(pg.row_comm(), owner_col,
                                    l_panel.row_slice(0, trailing_rows),
                                    args.row_levels, args.bcast_algo);
                });
    }

    // 2 + 3b. Pivot-row ranks form the U panel; everyone joins its
    //         (hierarchical) column broadcast.
    if (trailing_cols > 0) {
      if (pg.my_row() == owner_row) {
        desim::TaskSpec spec;
        spec.kind = desim::TaskKind::Compute;
        spec.phase = kPhaseFlat;
        spec.priority = 1;
        spec.step = k;
        spec.label = "U solve";
        spec.in = {diag_region};
        spec.out = trailing_regions;
        spec.out.push_back(u_region);
        const double flops = static_cast<double>(trailing_cols) *
                             static_cast<double>(b) * static_cast<double>(b);
        graph.add(
            std::move(spec),
            [&machine, self, flops, tracer = args.tracer] {
              return compute_charge(machine, self, flops, tracer);
            },
            {},
            [mode, &args, &diag = diag_slots[static_cast<std::size_t>(ks)],
             &u_panel = u_slots[static_cast<std::size_t>(ks)], local_r0,
             col_start, trailing_cols, b] {
              if (mode != PayloadMode::Real) return;
              la::MatrixView a_panel =
                  args.local_a->block(local_r0, col_start, b, trailing_cols);
              la::trsm_left_lower_unit(diag.view(), a_panel);
              // Pack the strided panel into contiguous storage for the wire.
              la::MatrixView packed(u_panel.view().data(), b, trailing_cols,
                                    trailing_cols);
              packed.copy_from(a_panel);
            });
      }
      desim::TaskSpec spec;
      spec.kind = desim::TaskKind::Comm;
      spec.phase = kPhaseFlat;
      spec.channel = pg.col_comm().context();
      spec.step = k;
      spec.label = "U bcast";
      spec.in = {u_region};
      spec.out = {u_region};
      take_mark(spec);
      graph.add(std::move(spec),
                [&pg, &args, mode,
                 &u_panel = u_slots[static_cast<std::size_t>(ks)], owner_row,
                 trailing_cols, b] {
                  mpc::Buf u_buf =
                      mode == PayloadMode::Real
                          ? mpc::Buf(std::span<double>(
                                u_panel.view().data(),
                                static_cast<std::size_t>(b * trailing_cols)))
                          : mpc::Buf::phantom(
                                static_cast<std::size_t>(b * trailing_cols));
                  return hier_bcast(pg.col_comm(), owner_row, u_buf,
                                    args.col_levels, args.bcast_algo);
                });
    }

    // 4. Trailing update. With look-ahead the next pivot column's strip is
    //    updated first (its own task), so F(k+1) and the step-k+1
    //    broadcasts can proceed while the bulk of the update streams.
    if (trailing_rows > 0 && trailing_cols > 0) {
      const bool own_next =
          D >= 1 && k + 1 < steps &&
          pg.my_col() == static_cast<int>((pivot + b) / local_cols);
      const auto add_update = [&](index_t c0, index_t cols,
                                  std::vector<desim::RegionId> out,
                                  const char* label) {
        desim::TaskSpec spec;
        spec.kind = desim::TaskKind::Compute;
        spec.phase = kPhaseFlat;
        spec.step = k;
        spec.label = label;
        spec.in = {l_region, u_region};
        spec.out = std::move(out);
        const double flops = la::gemm_flops(trailing_rows, cols, b);
        graph.add(
            std::move(spec),
            [&machine, self, flops, tracer = args.tracer] {
              return compute_charge(machine, self, flops, tracer);
            },
            {},
            [mode, &args, &stats, flops,
             &l_panel = l_slots[static_cast<std::size_t>(ks)],
             &u_panel = u_slots[static_cast<std::size_t>(ks)], row_start,
             trailing_rows, trailing_cols, c0, cols, col_start, b] {
              if (mode == PayloadMode::Real) {
                la::ConstMatrixView l_view(l_panel.view().data(),
                                           trailing_rows, b, b);
                la::ConstMatrixView u_view(
                    u_panel.view().data() + (c0 - col_start), b, cols,
                    trailing_cols);
                la::gemm_subtract(
                    l_view, u_view,
                    args.local_a->block(row_start, c0, trailing_rows, cols));
              }
              stats.flops += static_cast<std::uint64_t>(flops);
            });
      };
      if (own_next) {
        // col_start == local offset of global block k+1 on this rank.
        add_update(col_start, b, {acol(k + 1)}, "update next strip");
        if (trailing_cols > b) {
          std::vector<desim::RegionId> rest(trailing_regions.begin() + 1,
                                            trailing_regions.end());
          add_update(col_start + b, trailing_cols - b, std::move(rest),
                     "trailing update");
        }
      } else {
        add_update(col_start, trailing_cols, trailing_regions,
                   "trailing update");
      }
    }
  }

  PlanObserver observer(engine, stats, args.tracer);
  co_await desim::run_task_graph(engine, graph, D, &observer);
  observer.flush();
}

}  // namespace hs::core
