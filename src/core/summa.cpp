#include "core/summa.hpp"

#include "core/panel.hpp"
#include "core/task_plan.hpp"
#include "la/gemm.hpp"
#include "mpc/collectives.hpp"

namespace hs::core {

void check_summa_divisibility(grid::GridShape shape, const ProblemSpec& p) {
  const index_t b = p.block;
  HS_REQUIRE_MSG(p.m > 0 && p.n > 0 && p.k > 0 && b > 0,
                 "problem dimensions must be positive");
  HS_REQUIRE_MSG(p.m % shape.rows == 0,
                 "m=" << p.m << " not divisible by grid rows " << shape.rows);
  HS_REQUIRE_MSG(p.n % shape.cols == 0,
                 "n=" << p.n << " not divisible by grid cols " << shape.cols);
  HS_REQUIRE_MSG(p.k % (static_cast<index_t>(shape.cols) * b) == 0,
                 "k=" << p.k << " must be divisible by t*b = "
                      << shape.cols * b
                      << " so A pivot panels align to one grid column");
  HS_REQUIRE_MSG(p.k % (static_cast<index_t>(shape.rows) * b) == 0,
                 "k=" << p.k << " must be divisible by s*b = "
                      << shape.rows * b
                      << " so B pivot panels align to one grid row");
}

desim::Task<void> summa_rank(SummaArgs args) {
  if (args.lookahead > 0) {
    // Overlapped execution is a task-plan schedule (core/task_plan.hpp).
    co_await summa_task_plan(std::move(args));
    co_return;
  }
  check_summa_divisibility(args.shape, args.problem);
  const grid::ProcessGrid pg(args.comm, args.shape);
  mpc::Machine& machine = args.comm.machine();
  const int self = args.comm.my_world_rank();
  desim::Engine& engine = machine.engine();

  const ProblemSpec& prob = args.problem;
  const index_t b = prob.block;
  const index_t local_m = prob.m / pg.rows();
  const index_t local_n = prob.n / pg.cols();
  const index_t local_k_a = prob.k / pg.cols();  // my slice of A's columns
  const index_t local_k_b = prob.k / pg.rows();  // my slice of B's rows
  const PayloadMode mode =
      args.local == nullptr ? PayloadMode::Phantom : PayloadMode::Real;

  trace::RankStats scratch_stats;
  trace::RankStats& stats = args.stats ? *args.stats : scratch_stats;

  const index_t steps = prob.k / b;

  PanelBuffer a_panel(local_m, b, mode);
  PanelBuffer b_panel(b, local_n, mode);

  for (index_t q = 0; q < steps; ++q) {
    args.tracer.begin_step(engine, q, trace::Phase::Flat);
    const index_t pivot = q * b;  // global position along the k dimension

    // Horizontal broadcast of A's pivot column panel along my grid row.
    const int a_root = static_cast<int>(pivot / local_k_a);
    if (mode == PayloadMode::Real && pg.my_col() == a_root) {
      const index_t col0 = pivot - static_cast<index_t>(a_root) * local_k_a;
      a_panel.view().copy_from(args.local->a.block(0, col0, local_m, b));
    }
    {
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await mpc::bcast(pg.row_comm(), a_root, a_panel.buf(),
                          args.bcast_algo);
    }

    // Vertical broadcast of B's pivot row panel along my grid column.
    const int b_root = static_cast<int>(pivot / local_k_b);
    if (mode == PayloadMode::Real && pg.my_row() == b_root) {
      const index_t row0 = pivot - static_cast<index_t>(b_root) * local_k_b;
      b_panel.view().copy_from(args.local->b.block(row0, 0, b, local_n));
    }
    {
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await mpc::bcast(pg.col_comm(), b_root, b_panel.buf(),
                          args.bcast_algo);
    }

    // Local rank-b update: C += A_panel * B_panel.
    const double flops = la::gemm_flops(local_m, local_n, b);
    {
      trace::PhaseTimer timer(stats.comp_time, engine);
      trace::ComputeSpanGuard span(args.tracer, engine, flops);
      co_await machine.compute(self, flops);
    }
    if (mode == PayloadMode::Real)
      la::gemm(a_panel.view(), b_panel.view(), args.local->c.view());
    stats.flops += static_cast<std::uint64_t>(flops);
  }
}

}  // namespace hs::core
