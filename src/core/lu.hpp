// Distributed right-looking block LU factorization with hierarchical panel
// broadcasts — the paper's "apply the same approach to other numerical
// linear algebra kernels such as QR/LU factorization" future work.
//
// Per pivot step k (block size b, unpivoted; the driver generates
// diagonally dominant inputs):
//   1. the diagonal block's owner factors A_kk = L_kk U_kk locally and
//      broadcasts the factored block down its grid column and across its
//      grid row;
//   2. pivot-column ranks solve L_ik = A_ik U_kk^{-1}, pivot-row ranks
//      solve U_kj = L_kk^{-1} A_kj;
//   3. the L panels broadcast along grid rows and the U panels along grid
//      columns — the same SUMMA-shaped broadcasts the paper's hierarchy
//      accelerates, here decomposed with hier_bcast level factors;
//   4. every rank updates its trailing sub-matrix A_ij -= L_ik U_kj.
//
// With empty level factors this is plain distributed block LU; with
// factors {J} / {I} it is the LU analogue of HSUMMA.
#pragma once

#include <optional>
#include <vector>

#include "core/spec.hpp"
#include "desim/task.hpp"
#include "la/generate.hpp"
#include "mpc/comm.hpp"
#include "trace/phase.hpp"
#include "trace/recorder.hpp"

namespace hs::core {

struct LuArgs {
  mpc::Comm comm;
  grid::GridShape shape;     // s x t
  index_t n = 0;             // square matrix dimension
  index_t block = 0;         // panel width b
  std::vector<int> row_levels;  // hierarchy along grid rows (t)
  std::vector<int> col_levels;  // hierarchy along grid cols (s)
  /// Local (n/s) x (n/t) block of A; factored in place. nullptr = phantom.
  la::Matrix* local_a = nullptr;
  trace::RankStats* stats = nullptr;
  std::optional<net::BcastAlgo> bcast_algo;
  /// Look-ahead depth (see SummaArgs::lookahead). D >= 1 runs the task
  /// plan: the trailing update of step k is split into the next pivot
  /// column strip plus the remainder, so panel k+1 factors and its
  /// broadcasts fly while the bulk of update k still streams (classic
  /// look-ahead LU; the depth is 1 panel regardless of D, which only
  /// widens the diag/panel slot rings).
  int lookahead = 0;
  /// Optional structured trace sink (step marks + task spans).
  trace::RankTracer tracer;
};

/// Per-rank program. Preconditions: s | n, t | n, b | n/s, b | n/t.
desim::Task<void> lu_rank(LuArgs args);

/// The preconditions above, throwing hs::PreconditionError on violation.
/// The registry's validation hook calls this before any rank is spawned.
void check_lu_preconditions(grid::GridShape shape, index_t n, index_t block);

/// Input generator the LU harness factors: uniform noise plus n on the
/// diagonal (diagonally dominant, so unpivoted LU is stable). Exposed so
/// callers can rebuild A on the host (e.g. for solves against the factors).
la::ElementFn lu_input_elements(std::uint64_t seed, index_t n);

}  // namespace hs::core

// The end-to-end harness for this kernel is core::run() with
// Algorithm::Lu (problem = ProblemSpec::factorization(n, block)); see
// core/kernel_registry.hpp for the registered descriptor.
