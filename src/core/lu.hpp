// Distributed right-looking block LU factorization with hierarchical panel
// broadcasts — the paper's "apply the same approach to other numerical
// linear algebra kernels such as QR/LU factorization" future work.
//
// Per pivot step k (block size b, unpivoted; the driver generates
// diagonally dominant inputs):
//   1. the diagonal block's owner factors A_kk = L_kk U_kk locally and
//      broadcasts the factored block down its grid column and across its
//      grid row;
//   2. pivot-column ranks solve L_ik = A_ik U_kk^{-1}, pivot-row ranks
//      solve U_kj = L_kk^{-1} A_kj;
//   3. the L panels broadcast along grid rows and the U panels along grid
//      columns — the same SUMMA-shaped broadcasts the paper's hierarchy
//      accelerates, here decomposed with hier_bcast level factors;
//   4. every rank updates its trailing sub-matrix A_ij -= L_ik U_kj.
//
// With empty level factors this is plain distributed block LU; with
// factors {J} / {I} it is the LU analogue of HSUMMA.
#pragma once

#include <optional>
#include <vector>

#include "core/spec.hpp"
#include "desim/task.hpp"
#include "mpc/comm.hpp"
#include "trace/phase.hpp"

namespace hs::core {

struct LuArgs {
  mpc::Comm comm;
  grid::GridShape shape;     // s x t
  index_t n = 0;             // square matrix dimension
  index_t block = 0;         // panel width b
  std::vector<int> row_levels;  // hierarchy along grid rows (t)
  std::vector<int> col_levels;  // hierarchy along grid cols (s)
  /// Local (n/s) x (n/t) block of A; factored in place. nullptr = phantom.
  la::Matrix* local_a = nullptr;
  trace::RankStats* stats = nullptr;
  std::optional<net::BcastAlgo> bcast_algo;
};

/// Per-rank program. Preconditions: s | n, t | n, b | n/s, b | n/t.
desim::Task<void> lu_rank(LuArgs args);

struct LuOptions {
  grid::GridShape grid;
  index_t n = 0;
  index_t block = 0;
  std::vector<int> row_levels;
  std::vector<int> col_levels;
  PayloadMode mode = PayloadMode::Real;
  std::optional<net::BcastAlgo> bcast_algo;
  bool verify = false;       // Real mode only
  std::uint64_t seed = 7;
};

struct LuResult {
  trace::TimingReport timing;
  /// max |(L*U)_ij - A_ij| over the full matrix; -1 when not verified.
  double max_error = -1.0;
  std::uint64_t messages = 0;
  std::uint64_t wire_bytes = 0;
};

/// Harness: distribute a diagonally dominant A, factor it, optionally
/// reassemble L*U on the host and compare against A.
LuResult run_lu(mpc::Machine& machine, const LuOptions& options);

}  // namespace hs::core
