// Cannon's algorithm (1969) — the classic square-grid baseline the paper's
// introduction starts from.
//
// Requires a q x q grid and a square problem. After skew alignment (A's row
// i rotated left by i, B's column j rotated up by j), each of the q steps
// multiplies the resident blocks and rotates A left / B up by one.
// Communication is neighbor-to-neighbor only — optimal bandwidth, but the
// square-grid restriction is exactly why SUMMA displaced it in libraries.
#pragma once

#include "core/spec.hpp"
#include "desim/task.hpp"
#include "mpc/comm.hpp"
#include "trace/phase.hpp"
#include "trace/recorder.hpp"

namespace hs::core {

struct CannonArgs {
  mpc::Comm comm;
  grid::GridShape shape;  // must be square
  ProblemSpec problem;    // m == k == n required
  LocalBlocks* local = nullptr;
  trace::RankStats* stats = nullptr;
  /// Look-ahead depth (see SummaArgs::lookahead). D >= 1 runs the task
  /// plan with a max(2, D+1)-slot block ring, overlapping the A/B
  /// rotations of step q+1 with the multiply of step q.
  int lookahead = 0;
  /// Optional structured trace sink (step marks + task spans).
  trace::RankTracer tracer;
};

desim::Task<void> cannon_rank(CannonArgs args);

}  // namespace hs::core
