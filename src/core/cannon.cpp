#include "core/cannon.hpp"

#include <utility>
#include <vector>

#include "core/task_plan.hpp"
#include "grid/process_grid.hpp"
#include "la/gemm.hpp"
#include "mpc/collectives.hpp"

namespace hs::core {

namespace {

// Exchange the resident block with a rotation partner: send mine to `dst`,
// receive my replacement from `src` (ranks within `comm`), then swap the
// scratch into place.
desim::Task<void> rotate(mpc::Comm comm, int dst, int src,
                         std::vector<double>& mine,
                         std::vector<double>& scratch, std::size_t count,
                         bool real, int tag) {
  mpc::ConstBuf send = real ? mpc::ConstBuf(std::span<const double>(mine))
                            : mpc::ConstBuf::phantom(count);
  mpc::Buf recv = real ? mpc::Buf(std::span<double>(scratch))
                       : mpc::Buf::phantom(count);
  co_await comm.sendrecv(dst, send, src, recv, tag, tag);
  if (real) mine.swap(scratch);
}

}  // namespace

desim::Task<void> cannon_rank(CannonArgs args) {
  if (args.lookahead > 0) {
    // Overlapped execution is a task-plan schedule (core/task_plan.hpp).
    co_await cannon_task_plan(std::move(args));
    co_return;
  }
  const ProblemSpec& prob = args.problem;
  HS_REQUIRE_MSG(args.shape.rows == args.shape.cols,
                 "Cannon requires a square process grid, got "
                     << args.shape.rows << "x" << args.shape.cols);
  HS_REQUIRE_MSG(prob.m == prob.k && prob.k == prob.n,
                 "Cannon requires square matrices");
  const int q = args.shape.rows;
  HS_REQUIRE_MSG(prob.n % q == 0, "n must be divisible by the grid dimension");

  const grid::ProcessGrid pg(args.comm, args.shape);
  mpc::Machine& machine = args.comm.machine();
  const int self = args.comm.my_world_rank();
  desim::Engine& engine = machine.engine();
  const index_t nb = prob.n / q;
  const auto count = static_cast<std::size_t>(nb * nb);
  const bool real = args.local != nullptr;

  trace::RankStats scratch_stats;
  trace::RankStats& stats = args.stats ? *args.stats : scratch_stats;

  const int i = pg.my_row();
  const int j = pg.my_col();

  // Working copies (A and B rotate; C accumulates in place).
  std::vector<double> a_work, b_work, scratch;
  if (real) {
    a_work.assign(args.local->a.data(), args.local->a.data() + count);
    b_work.assign(args.local->b.data(), args.local->b.data() + count);
    scratch.resize(count);
  }

  // Skew alignment: A(i,j) -> (i, j-i), B(i,j) -> (i-j, j), as single
  // distance-i/j rotations.
  if (i > 0) {
    const int left = (j - i + q) % q;
    const int right = (j + i) % q;
    trace::PhaseTimer timer(stats.comm_time, engine);
    co_await rotate(pg.row_comm(), left, right, a_work, scratch, count, real,
                    /*tag=*/1);
  }
  if (j > 0) {
    const int up = (i - j + q) % q;
    const int down = (i + j) % q;
    trace::PhaseTimer timer(stats.comm_time, engine);
    co_await rotate(pg.col_comm(), up, down, b_work, scratch, count, real,
                    /*tag=*/2);
  }

  for (int step = 0; step < q; ++step) {
    args.tracer.begin_step(engine, step, trace::Phase::Flat);
    const double flops = la::gemm_flops(nb, nb, nb);
    {
      trace::PhaseTimer timer(stats.comp_time, engine);
      trace::ComputeSpanGuard span(args.tracer, engine, flops);
      co_await machine.compute(self, flops);
    }
    if (real) {
      la::ConstMatrixView a_view(a_work.data(), nb, nb, nb);
      la::ConstMatrixView b_view(b_work.data(), nb, nb, nb);
      la::gemm(a_view, b_view, args.local->c.view());
    }
    stats.flops += static_cast<std::uint64_t>(flops);

    if (step + 1 == q) break;  // last multiply needs no further rotation
    {
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await rotate(pg.row_comm(), (j - 1 + q) % q, (j + 1) % q, a_work,
                      scratch, count, real, /*tag=*/3);
      co_await rotate(pg.col_comm(), (i - 1 + q) % q, (i + 1) % q, b_work,
                      scratch, count, real, /*tag=*/4);
    }
  }
}

}  // namespace hs::core
