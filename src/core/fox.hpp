// Fox's algorithm (BMR, 1987) — the second classical square-grid baseline.
//
// Step l of q: the diagonal-offset block A(i, (i+l) mod q) is broadcast
// along grid row i, multiplied into C against the resident B block, and B
// is rotated up by one. Same square-grid restriction as Cannon; broadcast
// along rows instead of A-rotation.
#pragma once

#include "core/spec.hpp"
#include "desim/task.hpp"
#include "mpc/comm.hpp"
#include "trace/phase.hpp"

namespace hs::core {

struct FoxArgs {
  mpc::Comm comm;
  grid::GridShape shape;  // must be square
  ProblemSpec problem;    // m == k == n required
  LocalBlocks* local = nullptr;
  trace::RankStats* stats = nullptr;
  std::optional<net::BcastAlgo> bcast_algo;
};

desim::Task<void> fox_rank(FoxArgs args);

}  // namespace hs::core
