// Multilevel hierarchical broadcast and the >2-level HSUMMA extension
// (the paper's "more than two levels of hierarchy" future work).
//
// hier_bcast decomposes a broadcast over p ranks into phases given level
// factors f1 x f2 x ... x fL = p: first among f1 representatives (one per
// block of p/f1 ranks, at the root's offset within its block), then
// recursively inside each block. With a single factor {J} applied to
// SUMMA's row broadcast this is exactly HSUMMA's two-phase structure with
// b = B; deeper factor chains give 3-level, 4-level, ... HSUMMA.
#pragma once

#include <span>
#include <vector>

#include "core/spec.hpp"
#include "desim/task.hpp"
#include "mpc/collectives.hpp"
#include "trace/phase.hpp"

namespace hs::core {

/// Hierarchical broadcast. Every element of `level_factors` must divide the
/// remaining block size; factors need not multiply to exactly comm.size()
/// (a trailing factor of "whatever remains" is implied).
desim::Task<void> hier_bcast(mpc::Comm comm, int root, mpc::Buf buf,
                             std::vector<int> level_factors,
                             std::optional<net::BcastAlgo> algo);

struct HsummaMultilevelArgs {
  mpc::Comm comm;
  grid::GridShape shape;
  ProblemSpec problem;               // single block size b (outer_block unused)
  std::vector<int> row_levels;       // factor chain along grid rows (t)
  std::vector<int> col_levels;       // factor chain along grid cols (s)
  LocalBlocks* local = nullptr;
  trace::RankStats* stats = nullptr;
  std::optional<net::BcastAlgo> bcast_algo;
};

/// SUMMA with every broadcast replaced by a multilevel hierarchical
/// broadcast. With row_levels = {J} and col_levels = {I} this reproduces
/// HSUMMA(I x J groups, b = B) exactly (asserted by tests).
desim::Task<void> hsumma_multilevel_rank(HsummaMultilevelArgs args);

/// Balanced factor chain for a multilevel hierarchy over `extent` ranks
/// with `levels` levels (e.g. extent=64, levels=3 -> {4, 4} leaving blocks
/// of 4). Factors are as equal as possible among divisors.
std::vector<int> balanced_levels(int extent, int levels);

}  // namespace hs::core
