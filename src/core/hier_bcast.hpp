// Multilevel hierarchical broadcast and the >2-level HSUMMA extension
// (the paper's "more than two levels of hierarchy" future work).
//
// hier_bcast decomposes a broadcast over p ranks into phases given level
// factors f1 x f2 x ... x fL = p: first among f1 representatives (one per
// block of p/f1 ranks, at the root's offset within its block), then
// recursively inside each block. With a single factor {J} applied to
// SUMMA's row broadcast this is exactly HSUMMA's two-phase structure with
// b = B; deeper factor chains give 3-level, 4-level, ... HSUMMA.
#pragma once

#include <span>
#include <vector>

#include "core/spec.hpp"
#include "desim/task.hpp"
#include "mpc/collectives.hpp"
#include "trace/phase.hpp"
#include "trace/recorder.hpp"

namespace hs::core {

/// One phase of a hierarchical broadcast on the calling rank: a plain
/// mpc::bcast on `comm` rooted at `root`. `level` is the position in the
/// factor chain (0 = outermost); the trailing "whatever remains" phase
/// carries level = number of factors consumed before it.
struct BcastStage {
  mpc::Comm comm;
  int root = 0;
  int level = 0;
};

/// The calling rank's phase sequence for hier_bcast(comm, root, factors):
/// awaiting mpc::bcast on each stage in order is exactly the hierarchical
/// broadcast. Exposed so the task runtime can lower every phase to its own
/// comm task (per-level spans, per-level slot-ring dependencies) and the
/// blocking kernel can wrap each phase in a per-level timer, while both
/// share one decomposition. Ranks that are not representatives at a level
/// simply have no stage for it; a size-1 comm yields no stages at all.
std::vector<BcastStage> hier_bcast_stages(mpc::Comm comm, int root,
                                          const std::vector<int>& factors);

/// Hierarchical broadcast. Every element of `level_factors` must divide the
/// remaining block size; factors need not multiply to exactly comm.size()
/// (a trailing factor of "whatever remains" is implied).
desim::Task<void> hier_bcast(mpc::Comm comm, int root, mpc::Buf buf,
                             std::vector<int> level_factors,
                             std::optional<net::BcastAlgo> algo);

struct HsummaMultilevelArgs {
  mpc::Comm comm;
  grid::GridShape shape;
  ProblemSpec problem;               // single block size b (outer_block unused)
  std::vector<int> row_levels;       // factor chain along grid rows (t)
  std::vector<int> col_levels;       // factor chain along grid cols (s)
  LocalBlocks* local = nullptr;
  trace::RankStats* stats = nullptr;
  std::optional<net::BcastAlgo> bcast_algo;
  /// Look-ahead depth (see SummaArgs::lookahead). D >= 1 runs the task
  /// plan (core/task_plan.hpp): the slot ring composes with any chain
  /// depth, so multi-level broadcasts prefetch like flat SUMMA's.
  int lookahead = 0;
  trace::RankTracer tracer;
};

/// SUMMA with every broadcast replaced by a multilevel hierarchical
/// broadcast. With row_levels = {J} and col_levels = {I} this reproduces
/// HSUMMA(I x J groups, b = B) exactly (asserted by tests). Fills the
/// per-level communication split (trace::RankStats::level_comm_time, one
/// slot per chain level plus the trailing remainder phase).
desim::Task<void> hsumma_multilevel_rank(HsummaMultilevelArgs args);

/// Balanced factor chain for a multilevel hierarchy over `extent` ranks
/// with `levels` levels. Contract (pinned by tests/core/test_multilevel.cpp):
///   * returns at most levels-1 factors, each >= 2 and dividing the
///     remaining extent; their product divides `extent` and the implied
///     trailing factor is extent / product (>= 1);
///   * extent = 1 (or levels = 1) -> empty chain (nothing to split);
///   * each factor is the divisor of the remaining extent nearest the
///     balanced ideal remaining^(1/levels_left) — for prime extents that
///     is the extent itself, so the chain collapses to {extent} and the
///     deeper levels degenerate;
///   * once the remaining extent reaches 1 the chain stops, so levels >
///     log2(extent) never produces factors of 1.
/// (e.g. extent=64, levels=3 -> {4, 4} leaving blocks of 4.)
std::vector<int> balanced_levels(int extent, int levels);

}  // namespace hs::core
