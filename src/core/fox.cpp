#include "core/fox.hpp"

#include <vector>

#include "grid/process_grid.hpp"
#include "la/gemm.hpp"
#include "mpc/collectives.hpp"

namespace hs::core {

desim::Task<void> fox_rank(FoxArgs args) {
  const ProblemSpec& prob = args.problem;
  HS_REQUIRE_MSG(args.shape.rows == args.shape.cols,
                 "Fox requires a square process grid");
  HS_REQUIRE_MSG(prob.m == prob.k && prob.k == prob.n,
                 "Fox requires square matrices");
  const int q = args.shape.rows;
  HS_REQUIRE_MSG(prob.n % q == 0, "n must be divisible by the grid dimension");

  const grid::ProcessGrid pg(args.comm, args.shape);
  mpc::Machine& machine = args.comm.machine();
  const int self = args.comm.my_world_rank();
  desim::Engine& engine = machine.engine();
  const index_t nb = prob.n / q;
  const auto count = static_cast<std::size_t>(nb * nb);
  const bool real = args.local != nullptr;

  trace::RankStats scratch_stats;
  trace::RankStats& stats = args.stats ? *args.stats : scratch_stats;

  const int i = pg.my_row();
  const int j = pg.my_col();

  std::vector<double> a_panel, b_work, scratch;
  if (real) {
    a_panel.resize(count);
    b_work.assign(args.local->b.data(), args.local->b.data() + count);
    scratch.resize(count);
  }

  for (int step = 0; step < q; ++step) {
    const int root = (i + step) % q;  // column holding this step's A block
    if (real && j == root)
      std::copy(args.local->a.data(), args.local->a.data() + count,
                a_panel.begin());
    {
      mpc::Buf panel = real ? mpc::Buf(std::span<double>(a_panel))
                            : mpc::Buf::phantom(count);
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await mpc::bcast(pg.row_comm(), root, panel, args.bcast_algo);
    }

    const double flops = la::gemm_flops(nb, nb, nb);
    {
      trace::PhaseTimer timer(stats.comp_time, engine);
      co_await machine.compute(self, flops);
    }
    if (real) {
      la::ConstMatrixView a_view(a_panel.data(), nb, nb, nb);
      la::ConstMatrixView b_view(b_work.data(), nb, nb, nb);
      la::gemm(a_view, b_view, args.local->c.view());
    }
    stats.flops += static_cast<std::uint64_t>(flops);

    if (step + 1 == q) break;
    // Rotate B up by one grid row.
    {
      mpc::ConstBuf send = real ? mpc::ConstBuf(std::span<const double>(b_work))
                                : mpc::ConstBuf::phantom(count);
      mpc::Buf recv = real ? mpc::Buf(std::span<double>(scratch))
                           : mpc::Buf::phantom(count);
      trace::PhaseTimer timer(stats.comm_time, engine);
      co_await pg.col_comm().sendrecv((i - 1 + q) % q, send, (i + 1) % q,
                                      recv, /*send_tag=*/5, /*recv_tag=*/5);
      if (real) b_work.swap(scratch);
    }
  }
}

}  // namespace hs::core
