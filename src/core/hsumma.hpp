// HSUMMA — Hierarchical SUMMA, the paper's contribution.
//
// The s x t grid is partitioned into an I x J arrangement of groups, each
// an (s/I) x (t/J) sub-grid. Every SUMMA broadcast is split in two:
//
//   outer phase  — the processors owning the pivot panel (one per group,
//                  at the same local position) exchange the *outer block*
//                  (size B) across groups, horizontally for A over
//                  group_row_comm and vertically for B over group_col_comm;
//   inner phase  — within each group, the panel is broadcast in *inner
//                  blocks* (size b <= B) over the group's row/col
//                  communicators, interleaved with the local updates.
//
// The number of steps (k/B outer times B/b inner) and the total data volume
// equal SUMMA's; only the broadcast participant counts change — which is
// precisely where the Section IV analysis gets its G = sqrt(p) optimum.
// G = 1 and G = p degenerate to SUMMA exactly.
#pragma once

#include "core/spec.hpp"
#include "desim/task.hpp"
#include "grid/hier_grid.hpp"
#include "mpc/comm.hpp"
#include "trace/phase.hpp"
#include "trace/recorder.hpp"

namespace hs::core {

struct HsummaArgs {
  mpc::Comm comm;
  grid::GridShape shape;        // s x t
  grid::GridShape groups;       // I x J (I | s, J | t)
  ProblemSpec problem;          // block = b, outer_block = B (0 -> b)
  LocalBlocks* local = nullptr;
  trace::RankStats* stats = nullptr;
  std::optional<net::BcastAlgo> bcast_algo;
  /// Look-ahead depth (see SummaArgs::lookahead). D=1 reproduces the old
  /// double-buffered *intra-group* pipeline (outer-phase broadcasts stay
  /// blocking); D>=2 additionally prefetches up to D outer panels across
  /// big-step boundaries — the win the hand-rolled pipeline could not
  /// express.
  int lookahead = 0;
  /// Optional structured trace sink (detached by default). Marks every
  /// outer step (Phase::Outer) and inner step (Phase::Inner, numbered
  /// big_step*inner_steps + inner) so collective and compute spans carry
  /// the phase attribution the critical-path analyzer splits on.
  trace::RankTracer tracer;
};

/// The per-rank HSUMMA program (the paper's Algorithm 1).
/// Preconditions: SUMMA's divisibility for block b, plus b | B and B
/// aligned to single owners ((t*B) | k and (s*B) | k).
desim::Task<void> hsumma_rank(HsummaArgs args);

void check_hsumma_divisibility(grid::GridShape shape, grid::GridShape groups,
                               const ProblemSpec& p);

}  // namespace hs::core
