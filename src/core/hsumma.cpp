#include "core/hsumma.hpp"

#include "core/panel.hpp"
#include "core/summa.hpp"
#include "core/task_plan.hpp"
#include "la/gemm.hpp"
#include "mpc/collectives.hpp"

namespace hs::core {

void check_hsumma_divisibility(grid::GridShape shape, grid::GridShape groups,
                               const ProblemSpec& p) {
  check_summa_divisibility(shape, p);
  const index_t outer = p.effective_outer_block();
  HS_REQUIRE_MSG(outer % p.block == 0,
                 "outer block B=" << outer
                                  << " must be a multiple of inner block b="
                                  << p.block);
  HS_REQUIRE_MSG(p.k % (static_cast<index_t>(shape.cols) * outer) == 0,
                 "k=" << p.k << " must be divisible by t*B = "
                      << shape.cols * outer);
  HS_REQUIRE_MSG(p.k % (static_cast<index_t>(shape.rows) * outer) == 0,
                 "k=" << p.k << " must be divisible by s*B = "
                      << shape.rows * outer);
  HS_REQUIRE_MSG(groups.rows >= 1 && shape.rows % groups.rows == 0 &&
                     groups.cols >= 1 && shape.cols % groups.cols == 0,
                 "group arrangement " << groups.rows << "x" << groups.cols
                                      << " must divide the process grid");
}

desim::Task<void> hsumma_rank(HsummaArgs args) {
  if (args.lookahead > 0) {
    // Overlapped execution is a task-plan schedule (core/task_plan.hpp).
    co_await hsumma_task_plan(std::move(args));
    co_return;
  }
  check_hsumma_divisibility(args.shape, args.groups, args.problem);
  const grid::HierGrid hg(args.comm, args.shape, args.groups);
  mpc::Machine& machine = args.comm.machine();
  const int self = args.comm.my_world_rank();
  desim::Engine& engine = machine.engine();

  const ProblemSpec& prob = args.problem;
  const index_t b = prob.block;
  const index_t outer = prob.effective_outer_block();
  const index_t local_m = prob.m / args.shape.rows;
  const index_t local_n = prob.n / args.shape.cols;
  const index_t local_k_a = prob.k / args.shape.cols;
  const index_t local_k_b = prob.k / args.shape.rows;
  const grid::GridShape local_shape = hg.local_shape();
  const PayloadMode mode =
      args.local == nullptr ? PayloadMode::Phantom : PayloadMode::Real;

  trace::RankStats scratch_stats;
  trace::RankStats& stats = args.stats ? *args.stats : scratch_stats;

  PanelBuffer a_outer(local_m, outer, mode);
  PanelBuffer b_outer(outer, local_n, mode);
  PanelBuffer a_inner(local_m, b, mode);
  PanelBuffer b_inner(b, local_n, mode);

  const index_t outer_steps = prob.k / outer;
  const index_t inner_steps = outer / b;

  for (index_t big_step = 0; big_step < outer_steps; ++big_step) {
    args.tracer.begin_step(engine, big_step, trace::Phase::Outer);
    const index_t pivot = big_step * outer;

    // --- outer phase: inter-group broadcasts of the outer blocks -------
    // A's outer pivot panel lives on grid column a_col; within each group
    // that is local column a_local_col of group column a_group_col.
    const int a_col = static_cast<int>(pivot / local_k_a);
    const int a_group_col = a_col / local_shape.cols;
    const int a_local_col = a_col % local_shape.cols;
    if (hg.local_col() == a_local_col) {
      if (mode == PayloadMode::Real && hg.flat().my_col() == a_col) {
        const index_t col0 = pivot - static_cast<index_t>(a_col) * local_k_a;
        a_outer.view().copy_from(args.local->a.block(0, col0, local_m, outer));
      }
      trace::PhaseTimer timer(stats.comm_time, engine);
      trace::PhaseTimer outer_timer(stats.outer_comm_time, engine);
      co_await mpc::bcast(hg.group_row_comm(), a_group_col, a_outer.buf(),
                          args.bcast_algo);
    }

    const int b_row = static_cast<int>(pivot / local_k_b);
    const int b_group_row = b_row / local_shape.rows;
    const int b_local_row = b_row % local_shape.rows;
    if (hg.local_row() == b_local_row) {
      if (mode == PayloadMode::Real && hg.flat().my_row() == b_row) {
        const index_t row0 = pivot - static_cast<index_t>(b_row) * local_k_b;
        b_outer.view().copy_from(args.local->b.block(row0, 0, outer, local_n));
      }
      trace::PhaseTimer timer(stats.comm_time, engine);
      trace::PhaseTimer outer_timer(stats.outer_comm_time, engine);
      co_await mpc::bcast(hg.group_col_comm(), b_group_row, b_outer.buf(),
                          args.bcast_algo);
    }

    // --- inner phase: intra-group SUMMA over the outer blocks ----------
    for (index_t inner = 0; inner < inner_steps; ++inner) {
      args.tracer.begin_step(engine, big_step * inner_steps + inner,
                             trace::Phase::Inner);
      const index_t offset = inner * b;

      if (mode == PayloadMode::Real && hg.local_col() == a_local_col)
        a_inner.view().copy_from(
            a_outer.view().block(0, offset, local_m, b));
      {
        trace::PhaseTimer timer(stats.comm_time, engine);
        trace::PhaseTimer inner_timer(stats.inner_comm_time, engine);
        co_await mpc::bcast(hg.row_comm(), a_local_col, a_inner.buf(),
                            args.bcast_algo);
      }

      if (mode == PayloadMode::Real && hg.local_row() == b_local_row)
        b_inner.view().copy_from(
            b_outer.view().block(offset, 0, b, local_n));
      {
        trace::PhaseTimer timer(stats.comm_time, engine);
        trace::PhaseTimer inner_timer(stats.inner_comm_time, engine);
        co_await mpc::bcast(hg.col_comm(), b_local_row, b_inner.buf(),
                            args.bcast_algo);
      }

      const double flops = la::gemm_flops(local_m, local_n, b);
      {
        trace::PhaseTimer timer(stats.comp_time, engine);
        trace::ComputeSpanGuard span(args.tracer, engine, flops);
        co_await machine.compute(self, flops);
      }
      if (mode == PayloadMode::Real)
        la::gemm(a_inner.view(), b_inner.view(), args.local->c.view());
      stats.flops += static_cast<std::uint64_t>(flops);
    }
  }
}

}  // namespace hs::core
