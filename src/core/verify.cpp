#include "core/verify.hpp"

#include "la/norms.hpp"

namespace hs::core {

la::Matrix reference_c_block(const la::ElementFn& a, const la::ElementFn& b,
                             index_t k, index_t row0, index_t col0,
                             index_t rows, index_t cols) {
  la::Matrix reference(rows, cols);
  for (index_t i = 0; i < rows; ++i) {
    for (index_t l = 0; l < k; ++l) {
      const double a_il = a(row0 + i, l);
      if (a_il == 0.0) continue;
      for (index_t j = 0; j < cols; ++j)
        reference(i, j) += a_il * b(l, col0 + j);
    }
  }
  return reference;
}

double verify_c_block(la::ConstMatrixView c_local, const la::ElementFn& a,
                      const la::ElementFn& b, index_t k, index_t row0,
                      index_t col0) {
  const la::Matrix reference = reference_c_block(a, b, k, row0, col0,
                                                 c_local.rows(),
                                                 c_local.cols());
  return la::max_abs_diff(c_local, reference.view());
}

double verify_c_cyclic(la::ConstMatrixView c_local,
                       const grid::BlockCyclicDistribution& dist,
                       int grid_row, int grid_col, const la::ElementFn& a,
                       const la::ElementFn& b, index_t k) {
  la::Matrix reference(c_local.rows(), c_local.cols());
  for (index_t i = 0; i < c_local.rows(); ++i) {
    const index_t gi = dist.global_row(grid_row, i);
    for (index_t l = 0; l < k; ++l) {
      const double a_il = a(gi, l);
      if (a_il == 0.0) continue;
      for (index_t j = 0; j < c_local.cols(); ++j)
        reference(i, j) += a_il * b(l, dist.global_col(grid_col, j));
    }
  }
  return la::max_abs_diff(c_local, reference.view());
}

}  // namespace hs::core
