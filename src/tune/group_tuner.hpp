// Group-count autotuner.
//
// The paper selects the optimal number of groups by "sampling over valid
// values ... using few iterations of HSUMMA"; this module automates exactly
// that. Each candidate G runs a truncated phantom-payload HSUMMA (a handful
// of outer steps) on a fresh simulated machine; measured communication time
// is scaled to the full step count. The analytic model orders candidates so
// the sweep can be cut short (`max_candidates`), and G = 1 (SUMMA) is
// always sampled as the fallback the paper guarantees never to lose to.
#pragma once

#include <memory>
#include <vector>

#include "core/runner.hpp"
#include "fault/fault_plan.hpp"
#include "net/model.hpp"

namespace hs::exec {
class ParallelExecutor;
}

namespace hs::tune {

struct TuneOptions {
  /// Kernel to tune. Group counts are adapted per kernel by
  /// core::adapt_groups: the SUMMA families switch flat/hierarchical, the
  /// factorizations (Lu, Cholesky) map G onto hierarchical panel broadcast
  /// level factors. Factorization samples always run the full step count
  /// (panel steps are heterogeneous, so a truncated prefix would not be
  /// representative); the multiplication kernels sample a truncated k.
  core::Algorithm kernel = core::Algorithm::Summa;
  grid::GridShape grid;
  core::ProblemSpec problem;
  std::shared_ptr<const net::NetworkModel> network;
  mpc::MachineConfig machine_config;  // .ranks is overwritten from grid
  std::optional<net::BcastAlgo> bcast_algo;
  /// Outer steps per sample (the "few iterations").
  int sample_outer_steps = 2;
  /// Candidate group counts; empty -> all valid counts for the grid.
  std::vector<int> candidates;
  /// Explicit multi-level candidate chains, sampled after the scalar
  /// candidates (depth <= 1 entries are skipped — the scalar sweep covers
  /// them). Each must fit the grid (core::hierarchy_fits).
  std::vector<core::GroupHierarchy> hierarchies;
  /// Maximum hierarchy depth to derive candidates for automatically:
  /// >= 2 adds core::candidate_hierarchies(grid, max_levels) — balanced
  /// divisor chains of every valid group count — plus platform-derived
  /// chains whose outermost level matches the network's structure (one
  /// group per TwoLevelModel switch / Torus3DModel node, optionally split
  /// once more inside). 1 (the default) keeps the legacy scalar-only
  /// search.
  int max_levels = 1;
  /// Candidate look-ahead depths, sampled jointly with G (the best (G, D)
  /// pair is reported). The default tunes the blocking schedule only;
  /// {0, 1, 2} spans blocking, double-buffered and deep prefetch. Every
  /// depth must be supported by the kernel (see core::OverlapSupport).
  std::vector<int> lookaheads = {0};
  /// Cap on sampled candidates (<=0 -> no cap). Candidates nearest the
  /// model's predicted optimum are kept.
  int max_candidates = 0;
  /// Optional parallel executor: candidate samples run concurrently and
  /// repeated configurations (e.g. a later full sweep over the same grid)
  /// hit its result cache. Samples and the best pick are identical to the
  /// serial path for any worker count.
  exec::ParallelExecutor* executor = nullptr;
  /// Optional fault plan (see fault/fault_plan.hpp): every candidate
  /// sample runs under these faults, so the tuner picks the best G *for
  /// the faulty machine* — stragglers can shift the optimum (see
  /// bench/fault_study). Null or empty plans change nothing.
  std::shared_ptr<const fault::FaultPlan> faults;
};

struct Sample {
  /// Scalar candidates: the sampled G. Chain candidates: the chain's total
  /// innermost group count (product of the level factors).
  int groups = 1;
  int lookahead = 0;
  /// The candidate as a chain (from_scalar(G) for scalar candidates).
  core::GroupHierarchy hierarchy;
  /// Scalar candidates: the I x J group arrangement. Chains: the
  /// outermost level's arrangement.
  grid::GridShape arrangement;
  double comm_time = 0.0;       // scaled to the full problem; with
                                // lookahead > 0, the *exposed* comm
  double total_time = 0.0;      // scaled
};

struct TuneResult {
  int best_groups = 1;
  int best_lookahead = 0;
  /// The winning candidate as a chain; scalar winners are from_scalar(G).
  /// A multi-level chain wins only by strictly beating every scalar G.
  core::GroupHierarchy best_hierarchy;
  grid::GridShape best_arrangement{1, 1};
  double best_comm_time = 0.0;
  std::vector<Sample> samples;  // in sampling order
};

TuneResult tune_groups(const TuneOptions& options);

}  // namespace hs::tune
