#include "tune/group_tuner.hpp"

#include <algorithm>
#include <cmath>

#include "grid/hier_grid.hpp"
#include <limits>
#include <numeric>
#include <set>

#include "core/hier_bcast.hpp"
#include "core/kernel_registry.hpp"
#include "exec/executor.hpp"
#include "model/cost_model.hpp"
#include "net/topology.hpp"

namespace hs::tune {

namespace {

// Truncated problem: `outer_steps` outer blocks, keeping all divisibility
// preconditions (k' must be a multiple of lcm(s,t) * B and of lcm(s,t) * b,
// which B | k' and the b | B precondition already give).
core::ProblemSpec truncated_problem(const core::ProblemSpec& problem,
                                    grid::GridShape grid, int outer_steps) {
  const auto outer = problem.effective_outer_block();
  const auto lcm = std::lcm(static_cast<long long>(grid.rows),
                            static_cast<long long>(grid.cols));
  core::ProblemSpec sample = problem;
  sample.k = std::min<la::index_t>(
      problem.k, static_cast<la::index_t>(outer_steps) *
                     static_cast<la::index_t>(lcm) * outer);
  if (sample.k == 0 || problem.k % sample.k != 0) sample.k = problem.k;
  return sample;
}

}  // namespace

TuneResult tune_groups(const TuneOptions& options) {
  HS_REQUIRE(options.network != nullptr);
  HS_REQUIRE(options.sample_outer_steps >= 1);

  std::vector<int> candidates = options.candidates;
  if (candidates.empty()) candidates = grid::valid_group_counts(options.grid);
  HS_REQUIRE_MSG(!candidates.empty(), "no valid group counts for this grid");
  if (std::find(candidates.begin(), candidates.end(), 1) == candidates.end())
    candidates.insert(candidates.begin(), 1);

  if (options.max_candidates > 0 &&
      static_cast<int>(candidates.size()) > options.max_candidates) {
    // Keep the candidates nearest (in log-space) to the model's predicted
    // optimum G = sqrt(p), plus G = 1.
    const double target = std::sqrt(static_cast<double>(options.grid.size()));
    std::stable_sort(candidates.begin(), candidates.end(),
                     [target](int a, int b) {
                       const auto d = [target](int g) {
                         return std::fabs(std::log2(static_cast<double>(g)) -
                                          std::log2(target));
                       };
                       return d(a) < d(b);
                     });
    candidates.resize(static_cast<std::size_t>(options.max_candidates));
    if (std::find(candidates.begin(), candidates.end(), 1) ==
        candidates.end())
      candidates.back() = 1;
    std::sort(candidates.begin(), candidates.end());
  }

  // Look-ahead depths are sampled jointly with G: overlap shifts which
  // communication is exposed, so the best group count can move with D.
  // Depth support is validated here (rather than deep in run_sim_job) so a
  // misconfigured sweep fails before any sample runs.
  std::vector<int> depths = options.lookaheads;
  if (depths.empty()) depths = {0};
  const core::KernelDescriptor& descriptor =
      core::kernel_descriptor(options.kernel);
  for (int depth : depths) {
    HS_REQUIRE_MSG(depth >= 0, "lookahead must be >= 0");
    if (depth >= 1)
      HS_REQUIRE_MSG(
          descriptor.overlap_support != core::OverlapSupport::None &&
              (descriptor.overlap_support == core::OverlapSupport::TaskPlan ||
               depth <= 1),
          "kernel '" << descriptor.name << "' cannot run lookahead depth "
                     << depth << "; task-plan kernels: "
                     << core::overlap_kernel_name_list());
  }

  // Factorization kernels keep the full problem: their panel steps shrink
  // as the factorization advances, so a truncated prefix would not be
  // representative (and m == k == n is a kernel precondition).
  const bool factorization = descriptor.factorization;
  const core::ProblemSpec sample_problem =
      factorization ? options.problem
                    : truncated_problem(options.problem, options.grid,
                                        options.sample_outer_steps);
  const double scale =
      static_cast<double>(options.problem.k) /
      static_cast<double>(sample_problem.k);

  // Multi-level candidate chains, sampled after every scalar G (so a chain
  // wins only by strictly beating the whole scalar sweep): explicit
  // candidates, balanced divisor chains of the valid group counts, and
  // platform-derived chains whose outermost level matches the network's
  // own hierarchy (one group per switch / torus node).
  std::vector<core::GroupHierarchy> chains;
  {
    std::set<std::string> seen;
    const auto push = [&](const core::GroupHierarchy& chain) {
      if (chain.depth() < 2) return;  // the scalar sweep covers it
      if (!core::hierarchy_fits(chain, options.grid)) return;
      if (seen.insert(chain.to_string()).second) chains.push_back(chain);
    };
    for (const core::GroupHierarchy& chain : options.hierarchies) {
      HS_REQUIRE_MSG(core::hierarchy_fits(chain, options.grid),
                     "candidate hierarchy " << chain.to_string()
                                            << " does not fit a "
                                            << options.grid.rows << "x"
                                            << options.grid.cols << " grid");
      push(chain);
    }
    if (options.max_levels >= 2) {
      for (const core::GroupHierarchy& chain :
           core::candidate_hierarchies(options.grid, options.max_levels))
        push(chain);
      const int p = options.grid.size();
      if (const auto* two = dynamic_cast<const net::TwoLevelModel*>(
              options.network.get())) {
        const int rps = two->ranks_per_switch();
        if (rps > 1 && p % rps == 0 && p / rps > 1) {
          const int switches = p / rps;
          push(core::GroupHierarchy(core::full_group_chain(switches, 2)));
          for (int f : core::balanced_levels(rps, 2))
            push(core::GroupHierarchy({switches, f}));
        }
      }
      if (const auto* torus = dynamic_cast<const net::Torus3DModel*>(
              options.network.get())) {
        const int rpn = torus->ranks_per_node();
        if (rpn > 1 && p % rpn == 0 && p / rpn > 1) {
          const int nodes = p / rpn;
          push(core::GroupHierarchy(core::full_group_chain(nodes, 2)));
          for (int f : core::balanced_levels(rpn, 2))
            push(core::GroupHierarchy({nodes, f}));
        }
      }
    }
  }

  // Every runnable candidate x D pair becomes one executor job
  // (run_sim_job applies the same flat/hier/multilevel adaptation this
  // loop used to). Jobs are submitted before any result is read — with an
  // executor the whole sampling sweep runs concurrently — and aggregated in
  // candidate order, so samples and the best pick match the serial path
  // exactly.
  struct Candidate {
    core::GroupHierarchy hierarchy;
    int groups = 1;
    int lookahead = 0;
    grid::GridShape arrangement{1, 1};
  };
  std::vector<Candidate> runnable;
  std::vector<exec::SimJob> jobs;
  const auto base_job = [&] {
    exec::SimJob job;
    job.network = options.network;
    job.gamma_flop = options.machine_config.gamma_flop;
    job.collective_mode = options.machine_config.collective_mode;
    job.machine_bcast_algo = options.machine_config.bcast_algo;
    job.rank_gamma = options.machine_config.rank_gamma;
    job.algorithm = options.kernel;  // adapt_hierarchy picks the kernel
    job.grid = options.grid;
    job.problem = sample_problem;
    job.bcast_algo = options.bcast_algo;
    job.faults = options.faults;
    return job;
  };
  for (int groups : candidates) {
    const grid::GridShape arrangement =
        grid::group_arrangement(options.grid, groups);
    if (arrangement.size() != groups) continue;
    for (int depth : depths) {
      exec::SimJob job = base_job();
      job.groups = groups;
      job.lookahead = depth;
      runnable.push_back({core::GroupHierarchy::from_scalar(groups), groups,
                          depth, arrangement});
      jobs.push_back(std::move(job));
    }
  }
  for (const core::GroupHierarchy& chain : chains) {
    const grid::GridShape outer =
        core::arrange_hierarchy(chain, options.grid).levels.front();
    for (int depth : depths) {
      exec::SimJob job = base_job();
      job.hierarchy = chain;
      job.lookahead = depth;
      runnable.push_back(
          {chain, static_cast<int>(chain.product()), depth, outer});
      jobs.push_back(std::move(job));
    }
  }

  std::vector<std::size_t> indices;
  if (options.executor != nullptr)
    for (const exec::SimJob& job : jobs)
      indices.push_back(options.executor->submit(job));

  TuneResult result;
  result.best_comm_time = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < runnable.size(); ++i) {
    const core::RunResult run = options.executor != nullptr
                                    ? options.executor->result(indices[i])
                                    : exec::run_sim_job(jobs[i]);

    Sample sample;
    sample.groups = runnable[i].groups;
    sample.lookahead = runnable[i].lookahead;
    sample.hierarchy = runnable[i].hierarchy;
    sample.arrangement = runnable[i].arrangement;
    sample.comm_time = run.timing.max_comm_time * scale;
    sample.total_time =
        (run.timing.max_comm_time + run.timing.max_comp_time) * scale;
    result.samples.push_back(sample);

    // Exposed comm is the right joint metric: flops are invariant across
    // both G and D, so argmin(exposed comm) == argmin(total). Strict `<`
    // keeps the first-sampled pair on ties — deeper D never wins unless
    // it actually hides something, and a chain never wins unless it beats
    // every scalar G.
    if (sample.comm_time < result.best_comm_time) {
      result.best_comm_time = sample.comm_time;
      result.best_groups = sample.groups;
      result.best_lookahead = sample.lookahead;
      result.best_hierarchy = sample.hierarchy;
      result.best_arrangement = sample.arrangement;
    }
  }
  HS_REQUIRE_MSG(!result.samples.empty(),
                 "no group candidate was runnable on this grid");
  return result;
}

}  // namespace hs::tune
