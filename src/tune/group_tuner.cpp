#include "tune/group_tuner.hpp"

#include <algorithm>
#include <cmath>

#include "grid/hier_grid.hpp"
#include <limits>
#include <numeric>

#include "model/cost_model.hpp"

namespace hs::tune {

namespace {

// Truncated problem: `outer_steps` outer blocks, keeping all divisibility
// preconditions (k' must be a multiple of lcm(s,t) * B and of lcm(s,t) * b,
// which B | k' and the b | B precondition already give).
core::ProblemSpec truncated_problem(const core::ProblemSpec& problem,
                                    grid::GridShape grid, int outer_steps) {
  const auto outer = problem.effective_outer_block();
  const auto lcm = std::lcm(static_cast<long long>(grid.rows),
                            static_cast<long long>(grid.cols));
  core::ProblemSpec sample = problem;
  sample.k = std::min<la::index_t>(
      problem.k, static_cast<la::index_t>(outer_steps) *
                     static_cast<la::index_t>(lcm) * outer);
  if (sample.k == 0 || problem.k % sample.k != 0) sample.k = problem.k;
  return sample;
}

}  // namespace

TuneResult tune_groups(const TuneOptions& options) {
  HS_REQUIRE(options.network != nullptr);
  HS_REQUIRE(options.sample_outer_steps >= 1);

  std::vector<int> candidates = options.candidates;
  if (candidates.empty()) candidates = grid::valid_group_counts(options.grid);
  HS_REQUIRE_MSG(!candidates.empty(), "no valid group counts for this grid");
  if (std::find(candidates.begin(), candidates.end(), 1) == candidates.end())
    candidates.insert(candidates.begin(), 1);

  if (options.max_candidates > 0 &&
      static_cast<int>(candidates.size()) > options.max_candidates) {
    // Keep the candidates nearest (in log-space) to the model's predicted
    // optimum G = sqrt(p), plus G = 1.
    const double target = std::sqrt(static_cast<double>(options.grid.size()));
    std::stable_sort(candidates.begin(), candidates.end(),
                     [target](int a, int b) {
                       const auto d = [target](int g) {
                         return std::fabs(std::log2(static_cast<double>(g)) -
                                          std::log2(target));
                       };
                       return d(a) < d(b);
                     });
    candidates.resize(static_cast<std::size_t>(options.max_candidates));
    if (std::find(candidates.begin(), candidates.end(), 1) ==
        candidates.end())
      candidates.back() = 1;
    std::sort(candidates.begin(), candidates.end());
  }

  const core::ProblemSpec sample_problem = truncated_problem(
      options.problem, options.grid, options.sample_outer_steps);
  const double scale =
      static_cast<double>(options.problem.k) /
      static_cast<double>(sample_problem.k);

  TuneResult result;
  result.best_comm_time = std::numeric_limits<double>::infinity();
  for (int groups : candidates) {
    const grid::GridShape arrangement =
        grid::group_arrangement(options.grid, groups);
    if (arrangement.size() != groups) continue;

    desim::Engine engine;
    mpc::MachineConfig config = options.machine_config;
    config.ranks = options.grid.size();
    mpc::Machine machine(engine, options.network, config);

    core::RunOptions run_options;
    run_options.algorithm =
        groups == 1 ? core::Algorithm::Summa : core::Algorithm::Hsumma;
    run_options.grid = options.grid;
    run_options.groups = arrangement;
    run_options.problem = sample_problem;
    run_options.mode = core::PayloadMode::Phantom;
    run_options.bcast_algo = options.bcast_algo;
    const core::RunResult run = core::run(machine, run_options);

    Sample sample;
    sample.groups = groups;
    sample.arrangement = arrangement;
    sample.comm_time = run.timing.max_comm_time * scale;
    sample.total_time =
        (run.timing.max_comm_time + run.timing.max_comp_time) * scale;
    result.samples.push_back(sample);

    if (sample.comm_time < result.best_comm_time) {
      result.best_comm_time = sample.comm_time;
      result.best_groups = groups;
      result.best_arrangement = arrangement;
    }
  }
  HS_REQUIRE_MSG(!result.samples.empty(),
                 "no group candidate was runnable on this grid");
  return result;
}

}  // namespace hs::tune
