// Chrome-trace-event JSON exporter for Recorder contents.
//
// Produces the "JSON Array Format" with object wrapper that Perfetto
// (https://ui.perfetto.dev) and chrome://tracing load directly:
//
//   * one process per session ("<label> ranks"), one thread group per rank
//     holding the rank's collective/compute spans plus step markers;
//     overlapping spans on a rank (communication/computation overlap forks)
//     are spread across nesting-safe sub-lanes, so every exported track is
//     properly nested;
//   * a companion wire process ("<label> wire") with one lane per sending
//     rank for point-to-point transfers and spill lanes for ClosedForm
//     collective sites;
//   * counter tracks: cumulative wire bytes for the run, and per-rank
//     cumulative port busy time (send and receive series).
//
// Timestamps are virtual seconds converted to the format's microseconds.
// Several sessions may be written into one file (e.g. the SUMMA vs HSUMMA
// pair bench/trace_timeline emits): each gets its own process pair.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>

#include "trace/recorder.hpp"

namespace hs::trace {

struct TraceSession {
  const Recorder* recorder = nullptr;
  std::string label;
};

/// Write every session into one Chrome-trace JSON document.
void write_chrome_trace(std::ostream& out,
                        std::span<const TraceSession> sessions);

/// Single-recorder convenience overload.
void write_chrome_trace(std::ostream& out, const Recorder& recorder,
                        std::string_view label = "sim");

}  // namespace hs::trace
