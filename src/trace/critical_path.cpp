#include "trace/critical_path.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "trace/recorder.hpp"

namespace hs::trace {

namespace {

/// Unified view over compute and collective spans for the backward walk.
struct WorkSpan {
  double start = 0.0;
  double end = 0.0;
  int rank = -1;
  bool compute = false;
  std::size_t index = 0;  // into the recorder's computes()/collectives()
};

/// The chain level a collective span's time is attributed to: the explicit
/// stamp when the kernel provided one, else the legacy phase marks (Outer
/// is level 0, Inner level 1 — the two-level special case), else -1 (flat).
int effective_level(const CollectiveSpan& span) {
  if (span.level >= 0) return span.level;
  switch (span.phase) {
    case Phase::Outer: return 0;
    case Phase::Inner: return 1;
    case Phase::Flat: return -1;
  }
  return -1;
}

PathCategory comm_category(int level) {
  if (level == 0) return PathCategory::OuterComm;
  if (level >= 1) return PathCategory::InnerComm;
  return PathCategory::FlatComm;
}

}  // namespace

std::string_view to_string(PathCategory category) {
  switch (category) {
    case PathCategory::Comp: return "comp";
    case PathCategory::OuterComm: return "outer-comm";
    case PathCategory::InnerComm: return "inner-comm";
    case PathCategory::FlatComm: return "flat-comm";
    case PathCategory::Idle: return "idle";
  }
  return "unknown";
}

double CriticalPathSplit::of(PathCategory category) const {
  switch (category) {
    case PathCategory::Comp: return comp;
    case PathCategory::OuterComm: return outer_comm;
    case PathCategory::InnerComm: return inner_comm;
    case PathCategory::FlatComm: return flat_comm;
    case PathCategory::Idle: return idle;
  }
  return 0.0;
}

std::string CriticalPathSplit::summary() const {
  std::ostringstream os;
  os << "critical path " << hs::format_seconds(total()) << " = comp "
     << hs::format_seconds(comp) << " + outer "
     << hs::format_seconds(outer_comm) << " + inner "
     << hs::format_seconds(inner_comm) << " + flat "
     << hs::format_seconds(flat_comm) << " + idle "
     << hs::format_seconds(idle) << " (" << segments.size() << " segments)";
  // Two levels are fully described by the outer/inner head line (kept
  // byte-identical for existing goldens); deeper chains get the full
  // per-level split underneath.
  if (depth() > 2) {
    for (int l = 0; l < depth(); ++l)
      os << "\n  level " << l << ": "
         << hs::format_seconds(level_comm[static_cast<std::size_t>(l)]);
  }
  return os.str();
}

Table CriticalPathSplit::breakdown_table() const {
  Table table({"category", "time", "share"});
  const double denom = total();
  const auto add = [&table, denom](const std::string& name, double value) {
    table.add_row({name, hs::format_seconds(value),
                   denom > 0.0 ? hs::format_ratio(value / denom) : "-"});
  };
  for (PathCategory category :
       {PathCategory::Comp, PathCategory::OuterComm, PathCategory::InnerComm,
        PathCategory::FlatComm, PathCategory::Idle})
    add(std::string(to_string(category)), of(category));
  if (depth() > 2)
    for (int l = 0; l < depth(); ++l)
      add("level-" + std::to_string(l) + "-comm",
          level_comm[static_cast<std::size_t>(l)]);
  return table;
}

CriticalPathSplit analyze_critical_path(const Recorder& recorder) {
  CriticalPathSplit report;

  // Flatten the recorder's work spans and index collective participants by
  // (ctx, seq) so the walk can hop to the latest-arriving rank.
  std::vector<WorkSpan> spans;
  spans.reserve(recorder.computes().size() + recorder.collectives().size());
  for (std::size_t i = 0; i < recorder.computes().size(); ++i) {
    const ComputeSpan& span = recorder.computes()[i];
    spans.push_back({span.start, span.end, span.rank, true, i});
  }
  std::map<std::pair<int, std::uint64_t>, std::vector<std::size_t>> sites;
  for (std::size_t i = 0; i < recorder.collectives().size(); ++i) {
    const CollectiveSpan& span = recorder.collectives()[i];
    spans.push_back({span.start, span.end, span.rank, false, i});
    sites[{span.ctx, span.seq}].push_back(i);
  }
  if (spans.empty()) return report;

  // Per-rank lists sorted by end; the walk consumes each rank's list from
  // the back, which both finds "the work that just finished here" and
  // guarantees termination.
  int max_rank = 0;
  for (const WorkSpan& span : spans) max_rank = std::max(max_rank, span.rank);
  std::vector<std::vector<const WorkSpan*>> per_rank(
      static_cast<std::size_t>(max_rank) + 1);
  for (const WorkSpan& span : spans)
    if (span.rank >= 0) per_rank[static_cast<std::size_t>(span.rank)].push_back(&span);
  for (auto& list : per_rank)
    std::sort(list.begin(), list.end(),
              [](const WorkSpan* a, const WorkSpan* b) {
                if (a->end != b->end) return a->end < b->end;
                return a->start < b->start;
              });
  std::vector<std::size_t> cursor(per_rank.size());
  for (std::size_t r = 0; r < per_rank.size(); ++r)
    cursor[r] = per_rank[r].size();

  double min_start = spans.front().start;
  const WorkSpan* last = &spans.front();
  for (const WorkSpan& span : spans) {
    min_start = std::min(min_start, span.start);
    if (span.end > last->end) last = &span;
  }
  report.end_time = last->end;
  const double eps = 1e-12 * std::max(1.0, report.end_time);

  double t = report.end_time;
  int rank = last->rank;
  auto push = [&report](double start, double end, PathCategory category,
                        int rank_, long long step, int level,
                        std::string label) {
    if (end <= start) return;
    report.segments.push_back(
        {start, end, category, rank_, step, level, std::move(label)});
  };

  // Backward walk. Each iteration either consumes one span off the current
  // rank's list or closes an idle gap down to that span's end, so the loop
  // runs at most 2 * |spans| + |ranks| times; the cap is a safety net.
  const std::size_t iteration_cap = 4 * spans.size() + 64;
  std::size_t iterations = 0;
  while (t > min_start + eps && iterations++ < iteration_cap) {
    if (rank < 0 || static_cast<std::size_t>(rank) >= per_rank.size()) break;
    auto& list = per_rank[static_cast<std::size_t>(rank)];
    auto& cur = cursor[static_cast<std::size_t>(rank)];
    while (cur > 0 && list[cur - 1]->end > t + eps) --cur;
    if (cur == 0) break;  // this rank was idle since the run began
    const WorkSpan* span = list[cur - 1];
    if (span->end < t - eps) {
      // Nothing was running on this rank right before t: it was waiting.
      push(span->end, t, PathCategory::Idle, rank, -1, -1, "idle");
      t = span->end;
      continue;
    }
    --cur;
    if (span->compute) {
      const ComputeSpan& comp = recorder.computes()[span->index];
      push(comp.start, t, PathCategory::Comp, rank, comp.step, -1, "compute");
      t = comp.start;
      continue;
    }
    const CollectiveSpan& coll = recorder.collectives()[span->index];
    // A collective completes when its last participant arrives: continue on
    // the latest-entering rank. Falls back to this rank's own entry when
    // the hop would not move backward in time (possible in point-to-point
    // mode, where completion times differ per rank).
    double hop_start = coll.start;
    int hop_rank = rank;
    const auto site = sites.find({coll.ctx, coll.seq});
    if (site != sites.end()) {
      for (std::size_t participant : site->second) {
        const CollectiveSpan& other = recorder.collectives()[participant];
        if (other.start > hop_start && other.start < t - eps) {
          hop_start = other.start;
          hop_rank = other.rank;
        }
      }
    }
    const int level = effective_level(coll);
    push(hop_start, t, comm_category(level), rank, coll.step, level,
         std::string(to_string(coll.op)));
    t = hop_start;
    rank = hop_rank;
  }
  // Whatever is left below t is startup idle on the path's earliest rank
  // (it had not recorded any work yet).
  push(min_start, t, PathCategory::Idle, rank, -1, -1, "idle");
  report.start_time = min_start;

  std::reverse(report.segments.begin(), report.segments.end());
  for (const PathSegment& segment : report.segments) {
    const double duration = segment.duration();
    switch (segment.category) {
      case PathCategory::Comp: report.comp += duration; break;
      case PathCategory::OuterComm: report.outer_comm += duration; break;
      case PathCategory::InnerComm: report.inner_comm += duration; break;
      case PathCategory::FlatComm: report.flat_comm += duration; break;
      case PathCategory::Idle: report.idle += duration; break;
    }
    if (segment.level >= 0) {
      if (static_cast<std::size_t>(segment.level) >= report.level_comm.size())
        report.level_comm.resize(static_cast<std::size_t>(segment.level) + 1,
                                 0.0);
      report.level_comm[static_cast<std::size_t>(segment.level)] += duration;
    }
  }
  return report;
}

}  // namespace hs::trace
