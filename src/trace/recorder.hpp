// Structured event recording for simulation runs.
//
// A Recorder is an optional sink attachable to mpc::Machine (like
// TransferLog, but structured and collective-aware): it captures per-rank
// *spans* for every collective call (operation, broadcast algorithm,
// communicator context, collective sequence number, root, payload bytes,
// virtual start/end), per-rank compute charges, pivot-step/phase markers
// emitted by the kernels, every committed wire transfer, and — in
// ClosedForm mode — one synthetic site span per collective, so timelines
// cover both CollectiveModes.
//
// Hard invariant: recording must not perturb the simulation. Every hook
// only *reads* the engine clock (desim::Engine::now()) and appends to a
// vector; no virtual time is ever charged, so RunResults are bit-identical
// with a recorder attached or detached (locked by
// tests/trace/test_zero_perturbation.cpp). Detached cost is one
// null-pointer branch per hook.
//
// The RAII guards are coroutine-safe the same way trace::PhaseTimer is:
// their destructors run when the enclosing scope of the coroutine frame
// exits, even across co_await suspensions, so a guard wrapping
// `co_await bcast(...)` brackets exactly the virtual interval of the call.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "desim/engine.hpp"
#include "trace/sample.hpp"

namespace hs::trace {

class SpanChunkWriter;

/// Collective operation identifier. Mirrors mpc::Machine::SiteKind (kept in
/// sync by a static_assert in machine.cpp) but lives here so the trace
/// layer needs no mpc dependency — hs_mpc links hs_trace, not vice versa.
enum class CollectiveOp {
  Bcast,
  Barrier,
  Reduce,
  Allreduce,
  AllreduceRabenseifner,
  ReduceScatter,
  Gather,
  Scatter,
  Allgather,
};
inline constexpr int kCollectiveOpCount = 9;
std::string_view to_string(CollectiveOp op);

/// Which algorithmic phase a rank is in, as reported by the kernels: flat
/// algorithms stay in Flat; HSUMMA alternates between the inter-group
/// (Outer) and intra-group (Inner) broadcast phases of the paper's
/// Tables I/II.
enum class Phase { Flat, Outer, Inner };
std::string_view to_string(Phase phase);

/// One collective call on one rank: entry to gate-fire, in virtual time.
struct CollectiveSpan {
  double start = 0.0;
  double end = 0.0;
  int rank = -1;        // world rank of the caller
  CollectiveOp op = CollectiveOp::Bcast;
  int algo = -1;        // resolved net::BcastAlgo index; -1 = not a bcast
  int ctx = 0;          // communicator context id
  std::uint64_t seq = 0;  // collective sequence number on that context
  int root = -1;        // world rank of the root; -1 = rootless collective
  std::uint64_t bytes = 0;  // per-member payload bytes
  long long step = -1;  // kernel pivot step at call time; -1 = unmarked
  Phase phase = Phase::Flat;
  /// Hierarchy chain level of the enclosing broadcast stage (0 =
  /// outermost), stamped from the rank's current level state; -1 when the
  /// kernel reports no level (flat and legacy two-level runs).
  int level = -1;
  bool closed_form = false;
};

/// One Machine::compute charge on one rank.
struct ComputeSpan {
  double start = 0.0;
  double end = 0.0;
  int rank = -1;
  double flops = 0.0;
  long long step = -1;
  Phase phase = Phase::Flat;
  int level = -1;  // see CollectiveSpan::level
};

/// A kernel's "pivot step k begins" marker.
struct StepMark {
  double time = 0.0;
  int rank = -1;
  long long step = -1;
  Phase phase = Phase::Flat;
};

/// One committed point-to-point wire transfer (same data as
/// mpc::TransferRecord; duplicated here so the exporter needs no mpc types).
struct WireSpan {
  double start = 0.0;
  double end = 0.0;
  int src = -1;
  int dst = -1;
  std::uint64_t bytes = 0;
  int ctx = 0;
  int tag = 0;
};

/// One ClosedForm collective site: from the last participant's entry to the
/// shared completion instant. wire_bytes is the (p-1)*bytes convention the
/// closed-form mode charges (see DESIGN.md "Observability").
struct SiteSpan {
  double start = 0.0;  // max over participant entry times
  double end = 0.0;
  CollectiveOp op = CollectiveOp::Barrier;
  int ctx = 0;
  std::uint64_t seq = 0;
  int root = -1;       // world rank of the root; -1 = rootless
  std::uint64_t wire_bytes = 0;
  int members = 0;
};

/// Task-runtime span kinds (core/task_plan.hpp): a communication task's
/// transfer span, a compute task's charge, or the scheduler's exposed wait
/// on a communication task (the non-hidden remainder the critical-path
/// analyzer treats as reclaimable idle).
enum class TaskSpanKind { Comm, Compute, Wait };
std::string_view to_string(TaskSpanKind kind);

/// One task-runtime event on one rank. Comm/Compute spans cover the task
/// body's virtual interval; Wait spans cover the scheduler's join waits
/// (inline D=0 execution waits for the full comm span, overlapped execution
/// only for the exposed remainder — comparing the two is exactly the
/// "idle reclaimed" number).
struct TaskSpan {
  double start = 0.0;
  double end = 0.0;
  int rank = -1;
  TaskSpanKind kind = TaskSpanKind::Comm;
  long long step = -1;
  Phase phase = Phase::Flat;
  /// Hierarchy chain level of the task's broadcast stage (exact — derived
  /// from the task plan's phase encoding); -1 for flat/legacy tasks.
  int level = -1;
  const char* label = "";  // static storage (TaskSpec::label)
};

/// Fault-event taxonomy (mirrors fault::FaultPlan's event kinds, kept
/// mpc/fault-independent here for the same layering reason as
/// CollectiveOp): injected windows and discrete fault hits, rendered as a
/// dedicated Perfetto track by write_chrome_trace.
enum class FaultKind { RankSlowdown, LinkDegrade, MessageDrop, Timeout };
std::string_view to_string(FaultKind kind);

/// One fault event. Windows (RankSlowdown, LinkDegrade) have start < end and
/// use `factor` for the multiplier; discrete hits (MessageDrop, Timeout) are
/// instants with start == end. `a` is the rank (slowdown/timeout) or the
/// source rank (link/drop); `b` is the destination rank, -1 when absent.
struct FaultSpan {
  double start = 0.0;
  double end = 0.0;
  FaultKind kind = FaultKind::RankSlowdown;
  int a = -1;
  int b = -1;
  double factor = 0.0;
};

/// Append-only event store for one simulation. Single-threaded like the
/// engine that feeds it: attach one recorder per machine, one machine per
/// thread (parallel sweeps give every job its own recorder).
///
/// Two scale features, both off by default:
///
///   * a rank sample (set_sample): spans of unsampled ranks are dropped at
///     the door (wire spans survive when either endpoint is sampled; sites
///     and fault events are global and always kept), so a p = 2^20 trace
///     stores O(sampled ranks) spans. The exposed-wait histogram keeps
///     accumulating over *every* rank — filtering affects storage only.
///   * a streaming sink (set_stream): whenever the buffered span estimate
///     exceeds the budget, everything buffered is spilled to the sink's
///     on-disk chunk file and the vectors are cleared, bounding recorder
///     RSS for arbitrarily long runs (see trace/stream_sink.hpp for the
///     format, loader and Chrome-trace converter).
class Recorder {
 public:
  /// Update rank `rank`'s current (step, phase) and record a marker.
  /// Subsequent collective/compute spans on that rank are stamped with the
  /// new state.
  void begin_step(double now, int rank, long long step, Phase phase) {
    RankState& state = state_of(rank);
    state.step = step;
    state.phase = phase;
    if (!rank_sampled(rank)) return;
    steps_.push_back({now, rank, step, phase});
    note_span(sizeof(StepMark));
  }

  /// Update rank `rank`'s current hierarchy chain level (-1 = none);
  /// subsequent collective/compute spans on that rank carry it.
  void set_level(int rank, int level) { state_of(rank).level = level; }

  /// Record a finished collective span; step/phase/level are stamped from
  /// the caller rank's current state.
  void add_collective(CollectiveSpan span) {
    const RankState& state = state_of(span.rank);
    span.step = state.step;
    span.phase = state.phase;
    span.level = state.level;
    if (!rank_sampled(span.rank)) return;
    collectives_.push_back(span);
    note_span(sizeof(CollectiveSpan));
  }

  /// Record a finished compute span; stamped like add_collective.
  void add_compute(ComputeSpan span) {
    const RankState& state = state_of(span.rank);
    span.step = state.step;
    span.phase = state.phase;
    span.level = state.level;
    if (!rank_sampled(span.rank)) return;
    computes_.push_back(span);
    note_span(sizeof(ComputeSpan));
  }

  void add_transfer(const WireSpan& span) {
    if (!rank_sampled(span.src) && !rank_sampled(span.dst)) return;
    wires_.push_back(span);
    note_span(sizeof(WireSpan));
  }
  void add_site(const SiteSpan& span) {
    sites_.push_back(span);
    note_span(sizeof(SiteSpan));
  }
  void add_fault(const FaultSpan& span) {
    faults_.push_back(span);
    note_span(sizeof(FaultSpan));
  }
  void add_task(const TaskSpan& span) {
    if (span.kind == TaskSpanKind::Wait)
      exposed_wait_hist_.add(span.end - span.start);
    if (!rank_sampled(span.rank)) return;
    tasks_.push_back(span);
    note_span(sizeof(TaskSpan));
  }

  // --- rank sampling -------------------------------------------------------

  /// Restrict storage to `sample`'s ranks. The default (and an empty
  /// TraceSample resolution) keeps every rank.
  void set_sample(RankSampleSet sample) { sample_ = std::move(sample); }
  const RankSampleSet& sample() const noexcept { return sample_; }
  bool rank_sampled(int rank) const noexcept {
    return sample_.contains(rank);
  }

  // --- streaming sink ------------------------------------------------------

  /// Attach a chunk sink: once the buffered span estimate exceeds
  /// `budget_bytes`, buffered spans are appended to the sink and the
  /// in-memory vectors are cleared (rank state and histograms persist).
  /// The sink must outlive the recorder's recording phase; detach with
  /// nullptr. Call flush_stream() after the run to push the remainder.
  void set_stream(SpanChunkWriter* sink, std::size_t budget_bytes) {
    stream_ = sink;
    stream_budget_bytes_ = budget_bytes;
  }
  SpanChunkWriter* stream() const noexcept { return stream_; }
  /// Spill everything still buffered to the sink (no-op without one).
  void flush_stream();
  /// Estimated bytes of buffered (not yet spilled) span storage.
  std::size_t buffered_bytes() const noexcept { return buffered_bytes_; }
  /// Spans pushed to the sink so far.
  std::uint64_t spilled_spans() const noexcept { return spilled_spans_; }

  // --- always-on distributions --------------------------------------------

  /// Exposed scheduler waits (TaskSpanKind::Wait durations) over all
  /// ranks, sampled or not. Feeds trace.task.exposed_wait_s.
  const hs::Histogram& exposed_wait_histogram() const noexcept {
    return exposed_wait_hist_;
  }

  // --- raw restore (chunk loader) -----------------------------------------

  /// Append a span verbatim: no state stamping, no sampling, no spill
  /// accounting. Used by load_span_chunks to reconstruct a recorder from a
  /// chunk file; not meant for recording hooks.
  void restore(const CollectiveSpan& span) { collectives_.push_back(span); }
  void restore(const ComputeSpan& span) { computes_.push_back(span); }
  void restore(const StepMark& mark) { steps_.push_back(mark); }
  void restore(const WireSpan& span) { wires_.push_back(span); }
  void restore(const SiteSpan& span) { sites_.push_back(span); }
  void restore(const FaultSpan& span) { faults_.push_back(span); }
  void restore(const TaskSpan& span) { tasks_.push_back(span); }

  const std::vector<CollectiveSpan>& collectives() const noexcept {
    return collectives_;
  }
  const std::vector<ComputeSpan>& computes() const noexcept {
    return computes_;
  }
  const std::vector<StepMark>& steps() const noexcept { return steps_; }
  const std::vector<WireSpan>& wires() const noexcept { return wires_; }
  const std::vector<SiteSpan>& sites() const noexcept { return sites_; }
  const std::vector<FaultSpan>& faults() const noexcept { return faults_; }
  const std::vector<TaskSpan>& tasks() const noexcept { return tasks_; }

  bool empty() const noexcept {
    return collectives_.empty() && computes_.empty() && steps_.empty() &&
           wires_.empty() && sites_.empty() && faults_.empty() &&
           tasks_.empty();
  }

  /// Highest rank index seen across all recorded events, plus one.
  int rank_count() const;

  void clear() {
    collectives_.clear();
    computes_.clear();
    steps_.clear();
    wires_.clear();
    sites_.clear();
    faults_.clear();
    tasks_.clear();
    states_.clear();
    buffered_bytes_ = 0;
  }

 private:
  struct RankState {
    long long step = -1;
    Phase phase = Phase::Flat;
    int level = -1;
  };
  RankState& state_of(int rank) {
    const auto index =
        static_cast<std::size_t>(rank < 0 ? 0 : rank);
    if (index >= states_.size()) states_.resize(index + 1);
    return states_[index];
  }

  /// Account one stored span and spill when a sink is attached and the
  /// budget is exceeded.
  void note_span(std::size_t bytes) {
    buffered_bytes_ += bytes;
    if (stream_ != nullptr && buffered_bytes_ > stream_budget_bytes_)
      spill_now();
  }
  void spill_now();  // recorder.cpp: writes buffered spans, clears vectors

  std::vector<CollectiveSpan> collectives_;
  std::vector<ComputeSpan> computes_;
  std::vector<StepMark> steps_;
  std::vector<WireSpan> wires_;
  std::vector<SiteSpan> sites_;
  std::vector<FaultSpan> faults_;
  std::vector<TaskSpan> tasks_;
  std::vector<RankState> states_;
  RankSampleSet sample_;
  hs::Histogram exposed_wait_hist_;
  SpanChunkWriter* stream_ = nullptr;
  std::size_t stream_budget_bytes_ = 0;
  std::size_t buffered_bytes_ = 0;
  std::uint64_t spilled_spans_ = 0;
};

/// A rank's handle on the (possibly absent) recorder: what the kernel arg
/// structs carry. Default-constructed = detached; every operation is then a
/// single null check.
class RankTracer {
 public:
  RankTracer() = default;
  RankTracer(Recorder* recorder, int rank)
      : recorder_(recorder), rank_(rank) {}

  Recorder* recorder() const noexcept { return recorder_; }
  int rank() const noexcept { return rank_; }

  /// Mark the start of pivot step `step` in `phase` at the current virtual
  /// time.
  void begin_step(desim::Engine& engine, long long step, Phase phase) const {
    if (recorder_ != nullptr)
      recorder_->begin_step(engine.now(), rank_, step, phase);
  }

  /// Set this rank's current hierarchy chain level (-1 = none); spans
  /// recorded afterwards carry it. Pure state, no event is stored.
  void set_level(int level) const {
    if (recorder_ != nullptr) recorder_->set_level(rank_, level);
  }

 private:
  Recorder* recorder_ = nullptr;
  int rank_ = -1;
};

/// RAII span over one collective call. Construct with the span's identity
/// fields filled in (start/end are stamped here); the destructor records it.
class CollectiveSpanGuard {
 public:
  CollectiveSpanGuard(Recorder* recorder, desim::Engine& engine,
                      const CollectiveSpan& span)
      : recorder_(recorder), engine_(&engine), span_(span) {
    if (recorder_ != nullptr) span_.start = engine.now();
  }
  CollectiveSpanGuard(const CollectiveSpanGuard&) = delete;
  CollectiveSpanGuard& operator=(const CollectiveSpanGuard&) = delete;
  ~CollectiveSpanGuard() {
    if (recorder_ == nullptr) return;
    span_.end = engine_->now();
    recorder_->add_collective(span_);
  }

 private:
  Recorder* recorder_;
  desim::Engine* engine_;
  CollectiveSpan span_;
};

/// RAII span over one Machine::compute charge.
class ComputeSpanGuard {
 public:
  ComputeSpanGuard(const RankTracer& tracer, desim::Engine& engine,
                   double flops)
      : recorder_(tracer.recorder()), engine_(&engine) {
    if (recorder_ == nullptr) return;
    span_.rank = tracer.rank();
    span_.flops = flops;
    span_.start = engine.now();
  }
  ComputeSpanGuard(const ComputeSpanGuard&) = delete;
  ComputeSpanGuard& operator=(const ComputeSpanGuard&) = delete;
  ~ComputeSpanGuard() {
    if (recorder_ == nullptr) return;
    span_.end = engine_->now();
    recorder_->add_compute(span_);
  }

 private:
  Recorder* recorder_;
  desim::Engine* engine_;
  ComputeSpan span_;
};

}  // namespace hs::trace
