// Structured event recording for simulation runs.
//
// A Recorder is an optional sink attachable to mpc::Machine (like
// TransferLog, but structured and collective-aware): it captures per-rank
// *spans* for every collective call (operation, broadcast algorithm,
// communicator context, collective sequence number, root, payload bytes,
// virtual start/end), per-rank compute charges, pivot-step/phase markers
// emitted by the kernels, every committed wire transfer, and — in
// ClosedForm mode — one synthetic site span per collective, so timelines
// cover both CollectiveModes.
//
// Hard invariant: recording must not perturb the simulation. Every hook
// only *reads* the engine clock (desim::Engine::now()) and appends to a
// vector; no virtual time is ever charged, so RunResults are bit-identical
// with a recorder attached or detached (locked by
// tests/trace/test_zero_perturbation.cpp). Detached cost is one
// null-pointer branch per hook.
//
// The RAII guards are coroutine-safe the same way trace::PhaseTimer is:
// their destructors run when the enclosing scope of the coroutine frame
// exits, even across co_await suspensions, so a guard wrapping
// `co_await bcast(...)` brackets exactly the virtual interval of the call.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "desim/engine.hpp"

namespace hs::trace {

/// Collective operation identifier. Mirrors mpc::Machine::SiteKind (kept in
/// sync by a static_assert in machine.cpp) but lives here so the trace
/// layer needs no mpc dependency — hs_mpc links hs_trace, not vice versa.
enum class CollectiveOp {
  Bcast,
  Barrier,
  Reduce,
  Allreduce,
  AllreduceRabenseifner,
  ReduceScatter,
  Gather,
  Scatter,
  Allgather,
};
inline constexpr int kCollectiveOpCount = 9;
std::string_view to_string(CollectiveOp op);

/// Which algorithmic phase a rank is in, as reported by the kernels: flat
/// algorithms stay in Flat; HSUMMA alternates between the inter-group
/// (Outer) and intra-group (Inner) broadcast phases of the paper's
/// Tables I/II.
enum class Phase { Flat, Outer, Inner };
std::string_view to_string(Phase phase);

/// One collective call on one rank: entry to gate-fire, in virtual time.
struct CollectiveSpan {
  double start = 0.0;
  double end = 0.0;
  int rank = -1;        // world rank of the caller
  CollectiveOp op = CollectiveOp::Bcast;
  int algo = -1;        // resolved net::BcastAlgo index; -1 = not a bcast
  int ctx = 0;          // communicator context id
  std::uint64_t seq = 0;  // collective sequence number on that context
  int root = -1;        // world rank of the root; -1 = rootless collective
  std::uint64_t bytes = 0;  // per-member payload bytes
  long long step = -1;  // kernel pivot step at call time; -1 = unmarked
  Phase phase = Phase::Flat;
  bool closed_form = false;
};

/// One Machine::compute charge on one rank.
struct ComputeSpan {
  double start = 0.0;
  double end = 0.0;
  int rank = -1;
  double flops = 0.0;
  long long step = -1;
  Phase phase = Phase::Flat;
};

/// A kernel's "pivot step k begins" marker.
struct StepMark {
  double time = 0.0;
  int rank = -1;
  long long step = -1;
  Phase phase = Phase::Flat;
};

/// One committed point-to-point wire transfer (same data as
/// mpc::TransferRecord; duplicated here so the exporter needs no mpc types).
struct WireSpan {
  double start = 0.0;
  double end = 0.0;
  int src = -1;
  int dst = -1;
  std::uint64_t bytes = 0;
  int ctx = 0;
  int tag = 0;
};

/// One ClosedForm collective site: from the last participant's entry to the
/// shared completion instant. wire_bytes is the (p-1)*bytes convention the
/// closed-form mode charges (see DESIGN.md "Observability").
struct SiteSpan {
  double start = 0.0;  // max over participant entry times
  double end = 0.0;
  CollectiveOp op = CollectiveOp::Barrier;
  int ctx = 0;
  std::uint64_t seq = 0;
  int root = -1;       // world rank of the root; -1 = rootless
  std::uint64_t wire_bytes = 0;
  int members = 0;
};

/// Task-runtime span kinds (core/task_plan.hpp): a communication task's
/// transfer span, a compute task's charge, or the scheduler's exposed wait
/// on a communication task (the non-hidden remainder the critical-path
/// analyzer treats as reclaimable idle).
enum class TaskSpanKind { Comm, Compute, Wait };
std::string_view to_string(TaskSpanKind kind);

/// One task-runtime event on one rank. Comm/Compute spans cover the task
/// body's virtual interval; Wait spans cover the scheduler's join waits
/// (inline D=0 execution waits for the full comm span, overlapped execution
/// only for the exposed remainder — comparing the two is exactly the
/// "idle reclaimed" number).
struct TaskSpan {
  double start = 0.0;
  double end = 0.0;
  int rank = -1;
  TaskSpanKind kind = TaskSpanKind::Comm;
  long long step = -1;
  Phase phase = Phase::Flat;
  const char* label = "";  // static storage (TaskSpec::label)
};

/// Fault-event taxonomy (mirrors fault::FaultPlan's event kinds, kept
/// mpc/fault-independent here for the same layering reason as
/// CollectiveOp): injected windows and discrete fault hits, rendered as a
/// dedicated Perfetto track by write_chrome_trace.
enum class FaultKind { RankSlowdown, LinkDegrade, MessageDrop, Timeout };
std::string_view to_string(FaultKind kind);

/// One fault event. Windows (RankSlowdown, LinkDegrade) have start < end and
/// use `factor` for the multiplier; discrete hits (MessageDrop, Timeout) are
/// instants with start == end. `a` is the rank (slowdown/timeout) or the
/// source rank (link/drop); `b` is the destination rank, -1 when absent.
struct FaultSpan {
  double start = 0.0;
  double end = 0.0;
  FaultKind kind = FaultKind::RankSlowdown;
  int a = -1;
  int b = -1;
  double factor = 0.0;
};

/// Append-only event store for one simulation. Single-threaded like the
/// engine that feeds it: attach one recorder per machine, one machine per
/// thread (parallel sweeps give every job its own recorder).
class Recorder {
 public:
  /// Update rank `rank`'s current (step, phase) and record a marker.
  /// Subsequent collective/compute spans on that rank are stamped with the
  /// new state.
  void begin_step(double now, int rank, long long step, Phase phase) {
    RankState& state = state_of(rank);
    state.step = step;
    state.phase = phase;
    steps_.push_back({now, rank, step, phase});
  }

  /// Record a finished collective span; step/phase are stamped from the
  /// caller rank's current state.
  void add_collective(CollectiveSpan span) {
    const RankState& state = state_of(span.rank);
    span.step = state.step;
    span.phase = state.phase;
    collectives_.push_back(span);
  }

  /// Record a finished compute span; stamped like add_collective.
  void add_compute(ComputeSpan span) {
    const RankState& state = state_of(span.rank);
    span.step = state.step;
    span.phase = state.phase;
    computes_.push_back(span);
  }

  void add_transfer(const WireSpan& span) { wires_.push_back(span); }
  void add_site(const SiteSpan& span) { sites_.push_back(span); }
  void add_fault(const FaultSpan& span) { faults_.push_back(span); }
  void add_task(const TaskSpan& span) { tasks_.push_back(span); }

  const std::vector<CollectiveSpan>& collectives() const noexcept {
    return collectives_;
  }
  const std::vector<ComputeSpan>& computes() const noexcept {
    return computes_;
  }
  const std::vector<StepMark>& steps() const noexcept { return steps_; }
  const std::vector<WireSpan>& wires() const noexcept { return wires_; }
  const std::vector<SiteSpan>& sites() const noexcept { return sites_; }
  const std::vector<FaultSpan>& faults() const noexcept { return faults_; }
  const std::vector<TaskSpan>& tasks() const noexcept { return tasks_; }

  bool empty() const noexcept {
    return collectives_.empty() && computes_.empty() && steps_.empty() &&
           wires_.empty() && sites_.empty() && faults_.empty() &&
           tasks_.empty();
  }

  /// Highest rank index seen across all recorded events, plus one.
  int rank_count() const;

  void clear() {
    collectives_.clear();
    computes_.clear();
    steps_.clear();
    wires_.clear();
    sites_.clear();
    faults_.clear();
    tasks_.clear();
    states_.clear();
  }

 private:
  struct RankState {
    long long step = -1;
    Phase phase = Phase::Flat;
  };
  RankState& state_of(int rank) {
    const auto index =
        static_cast<std::size_t>(rank < 0 ? 0 : rank);
    if (index >= states_.size()) states_.resize(index + 1);
    return states_[index];
  }

  std::vector<CollectiveSpan> collectives_;
  std::vector<ComputeSpan> computes_;
  std::vector<StepMark> steps_;
  std::vector<WireSpan> wires_;
  std::vector<SiteSpan> sites_;
  std::vector<FaultSpan> faults_;
  std::vector<TaskSpan> tasks_;
  std::vector<RankState> states_;
};

/// A rank's handle on the (possibly absent) recorder: what the kernel arg
/// structs carry. Default-constructed = detached; every operation is then a
/// single null check.
class RankTracer {
 public:
  RankTracer() = default;
  RankTracer(Recorder* recorder, int rank)
      : recorder_(recorder), rank_(rank) {}

  Recorder* recorder() const noexcept { return recorder_; }
  int rank() const noexcept { return rank_; }

  /// Mark the start of pivot step `step` in `phase` at the current virtual
  /// time.
  void begin_step(desim::Engine& engine, long long step, Phase phase) const {
    if (recorder_ != nullptr)
      recorder_->begin_step(engine.now(), rank_, step, phase);
  }

 private:
  Recorder* recorder_ = nullptr;
  int rank_ = -1;
};

/// RAII span over one collective call. Construct with the span's identity
/// fields filled in (start/end are stamped here); the destructor records it.
class CollectiveSpanGuard {
 public:
  CollectiveSpanGuard(Recorder* recorder, desim::Engine& engine,
                      const CollectiveSpan& span)
      : recorder_(recorder), engine_(&engine), span_(span) {
    if (recorder_ != nullptr) span_.start = engine.now();
  }
  CollectiveSpanGuard(const CollectiveSpanGuard&) = delete;
  CollectiveSpanGuard& operator=(const CollectiveSpanGuard&) = delete;
  ~CollectiveSpanGuard() {
    if (recorder_ == nullptr) return;
    span_.end = engine_->now();
    recorder_->add_collective(span_);
  }

 private:
  Recorder* recorder_;
  desim::Engine* engine_;
  CollectiveSpan span_;
};

/// RAII span over one Machine::compute charge.
class ComputeSpanGuard {
 public:
  ComputeSpanGuard(const RankTracer& tracer, desim::Engine& engine,
                   double flops)
      : recorder_(tracer.recorder()), engine_(&engine) {
    if (recorder_ == nullptr) return;
    span_.rank = tracer.rank();
    span_.flops = flops;
    span_.start = engine.now();
  }
  ComputeSpanGuard(const ComputeSpanGuard&) = delete;
  ComputeSpanGuard& operator=(const ComputeSpanGuard&) = delete;
  ~ComputeSpanGuard() {
    if (recorder_ == nullptr) return;
    span_.end = engine_->now();
    recorder_->add_compute(span_);
  }

 private:
  Recorder* recorder_;
  desim::Engine* engine_;
  ComputeSpan span_;
};

}  // namespace hs::trace
