#include "trace/sample.hpp"

#include <algorithm>
#include <charconv>

#include "common/check.hpp"

namespace hs::trace {

namespace {

int parse_count(std::string_view term, std::string_view suffix) {
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(suffix.data(), suffix.data() + suffix.size(), value);
  HS_REQUIRE_MSG(ec == std::errc() &&
                     ptr == suffix.data() + suffix.size() && value >= 1,
                 "bad --trace-sample term '"
                     << std::string(term)
                     << "' (want a positive count after ':')");
  return value;
}

/// splitmix64: the repo's standard cheap seed-expanding generator.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

TraceSample TraceSample::parse(std::string_view spec) {
  TraceSample sample;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t next = std::min(spec.find('+', pos), spec.size());
    const std::string_view term = spec.substr(pos, next - pos);
    pos = next + 1;
    if (term.empty()) continue;
    if (term == "all") {
      sample.all = true;
    } else if (term == "root") {
      sample.root = true;
    } else if (term == "leaders") {
      sample.leaders_per_level =
          std::max(sample.leaders_per_level, kDefaultLeadersPerLevel);
    } else if (term.rfind("leaders:", 0) == 0) {
      sample.leaders_per_level = std::max(
          sample.leaders_per_level, parse_count(term, term.substr(8)));
    } else if (term.rfind("random:", 0) == 0) {
      sample.random_count =
          std::max(sample.random_count, parse_count(term, term.substr(7)));
    } else if (term.rfind("slowest:", 0) == 0) {
      sample.slowest_count =
          std::max(sample.slowest_count, parse_count(term, term.substr(8)));
    } else {
      HS_REQUIRE_MSG(false, "unknown --trace-sample term '"
                                << std::string(term)
                                << "' (terms: all, root, leaders[:N], "
                                   "random:K, slowest:K)");
    }
  }
  return sample;
}

std::string TraceSample::to_string() const {
  std::string out;
  const auto append = [&out](const std::string& term) {
    if (!out.empty()) out += '+';
    out += term;
  };
  if (all) append("all");
  if (root) append("root");
  if (leaders_per_level > 0)
    append(leaders_per_level == kDefaultLeadersPerLevel
               ? "leaders"
               : "leaders:" + std::to_string(leaders_per_level));
  if (random_count > 0) append("random:" + std::to_string(random_count));
  if (slowest_count > 0) append("slowest:" + std::to_string(slowest_count));
  return out;
}

RankSampleSet RankSampleSet::all(int ranks) {
  HS_REQUIRE(ranks >= 1);
  RankSampleSet set;
  set.mask_.assign(static_cast<std::size_t>(ranks), true);
  set.count_ = ranks;
  set.complete_ = true;
  return set;
}

RankSampleSet RankSampleSet::resolve(const TraceSample& sample,
                                     const SampleInputs& inputs) {
  HS_REQUIRE(inputs.ranks >= 1);
  if (sample.all || sample.empty()) return all(inputs.ranks);

  RankSampleSet set;
  set.mask_.assign(static_cast<std::size_t>(inputs.ranks), false);
  set.complete_ = false;
  const auto mark = [&set](int rank) {
    if (rank < 0 || static_cast<std::size_t>(rank) >= set.mask_.size())
      return;
    if (!set.mask_[static_cast<std::size_t>(rank)]) {
      set.mask_[static_cast<std::size_t>(rank)] = true;
      ++set.count_;
    }
  };

  if (sample.root || sample.leaders_per_level > 0) mark(0);

  if (sample.leaders_per_level > 0) {
    // Evenly strided pick of at most N leaders per level, first and last
    // group included — deterministic, and the span volume stays O(N * L)
    // however many groups the level has.
    const auto cap = static_cast<std::size_t>(sample.leaders_per_level);
    for (const std::vector<int>& leaders : inputs.level_leaders) {
      if (leaders.size() <= cap) {
        for (int rank : leaders) mark(rank);
        continue;
      }
      for (std::size_t i = 0; i < cap; ++i) {
        const std::size_t pick =
            i * (leaders.size() - 1) / (cap - 1);
        mark(leaders[pick]);
      }
    }
  }

  if (sample.random_count > 0) {
    // Seed-stamped rejection sampling: deterministic for (seed, p, K), and
    // K distinct ranks whenever K <= p.
    const int want =
        std::min(sample.random_count, inputs.ranks);
    std::uint64_t state = inputs.seed ^ 0x7472616365736d70ull;  // "tracesmp"
    std::vector<bool> drawn(static_cast<std::size_t>(inputs.ranks), false);
    int found = 0;
    while (found < want) {
      const int rank = static_cast<int>(
          splitmix64(state) % static_cast<std::uint64_t>(inputs.ranks));
      if (drawn[static_cast<std::size_t>(rank)]) continue;
      drawn[static_cast<std::size_t>(rank)] = true;
      ++found;
      mark(rank);
    }
  }

  if (sample.slowest_count > 0 && !inputs.rank_slowness.empty()) {
    // The K slowest ranks by effective factor, ties broken by rank index;
    // nominal ranks (factor <= 1) never qualify, so a homogeneous run adds
    // nothing under this term.
    std::vector<int> slow;
    for (std::size_t r = 0; r < inputs.rank_slowness.size(); ++r)
      if (inputs.rank_slowness[r] > 1.0) slow.push_back(static_cast<int>(r));
    const auto take = std::min(slow.size(),
                               static_cast<std::size_t>(sample.slowest_count));
    std::partial_sort(slow.begin(), slow.begin() + static_cast<long>(take),
                      slow.end(), [&inputs](int a, int b) {
                        const double fa =
                            inputs.rank_slowness[static_cast<std::size_t>(a)];
                        const double fb =
                            inputs.rank_slowness[static_cast<std::size_t>(b)];
                        if (fa != fb) return fa > fb;
                        return a < b;
                      });
    for (std::size_t i = 0; i < take; ++i) mark(slow[i]);
  }

  // A sample that resolved to nothing (e.g. "slowest:4" on a homogeneous
  // run) still records the root: an entirely empty trace would look like a
  // recorder bug, not a sampling decision.
  if (set.count_ == 0) mark(0);
  return set;
}

std::vector<int> RankSampleSet::selected() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(count_));
  for (std::size_t r = 0; r < mask_.size(); ++r)
    if (mask_[r]) out.push_back(static_cast<int>(r));
  return out;
}

}  // namespace hs::trace
