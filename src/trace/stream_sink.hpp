// Bounded-memory streaming sink for Recorder spans.
//
// A Recorder with a SpanChunkWriter attached (Recorder::set_stream) spills
// its buffered spans to disk whenever they exceed the RSS budget, so a
// traced run's memory stays O(budget + ranks) no matter how long it runs or
// how many ranks are sampled. The on-disk format is a compact append-only
// record stream ("HSSPANS1"): one byte of record kind, then the span's
// fields in fixed-width little-endian, task labels length-prefixed. No
// framing or compression — the point is cheap sequential writes from inside
// the simulation loop; the file is only ever read back whole.
//
// Reading back:
//   * load_span_chunks() reconstructs a Recorder (labels are interned into
//     a process-lifetime pool so TaskSpan::label stays a stable
//     const char*), after which the usual analyses — critical path,
//     Chrome-trace export — apply unchanged;
//   * convert_span_chunks_to_chrome() is the one-call chunk -> Perfetto
//     converter built on top of that.
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <string_view>

namespace hs::trace {

class Recorder;

/// Magic bytes at the start of every chunk file (8 bytes, includes the
/// format version).
inline constexpr std::string_view kSpanChunkMagic = "HSSPANS1";

/// Append-only span chunk file writer. The file is opened lazily on the
/// first spill, so constructing a writer that never spills leaves no file
/// behind. One writer per recorder; single-threaded like the recorder.
class SpanChunkWriter {
 public:
  explicit SpanChunkWriter(std::string path) : path_(std::move(path)) {}
  SpanChunkWriter(const SpanChunkWriter&) = delete;
  SpanChunkWriter& operator=(const SpanChunkWriter&) = delete;
  ~SpanChunkWriter() { finish(); }

  /// Append every span currently buffered in `recorder` to the chunk file;
  /// returns how many were written. Does not clear the recorder — that is
  /// Recorder::spill_now()'s job (it owns the accounting).
  std::uint64_t spill(const Recorder& recorder);

  /// Flush and close the file. Idempotent; the destructor calls it.
  void finish();

  std::uint64_t spans_written() const noexcept { return spans_; }
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  bool opened_ = false;
  std::uint64_t spans_ = 0;
};

/// Load a chunk file back into `out` (via Recorder::restore — no stamping,
/// no sampling). Returns the number of spans loaded. Aborts (HS_REQUIRE) on
/// a bad magic or a truncated record.
std::uint64_t load_span_chunks(const std::string& path, Recorder& out);

/// One-call converter: load `chunk_path` and write a Chrome-trace JSON
/// document to `out`, so Perfetto export works for streamed runs exactly as
/// for in-memory ones. Returns the number of spans converted.
std::uint64_t convert_span_chunks_to_chrome(const std::string& chunk_path,
                                            std::ostream& out,
                                            std::string_view label = "sim");

}  // namespace hs::trace
