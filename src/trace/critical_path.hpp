// Critical-path extraction from recorded simulation events.
//
// Walks a Recorder's span set backward from the latest-ending event to
// reconstruct one chain of dependent work that realizes the run's makespan,
// then attributes every segment of that chain to computation, outer
// (inter-group) communication, inner (intra-group) communication, flat
// communication, or idle waiting. This turns "HSUMMA was 1.8x faster" into
// "the critical path swapped 0.4 s of flat broadcast for 0.1 s of outer +
// 0.15 s of inner broadcast".
//
// The walk hops between ranks through collectives: a collective completes
// when its last participant arrives, so the path continues on the
// latest-arriving rank at that rank's entry time. For ClosedForm runs of
// the non-overlapped kernels this is exact: segments tile
// [start_time, end_time] with no double counting, so the category sums add
// up to the run's total_time (locked to 1e-9 by
// tests/trace/test_critical_path.cpp), and the outer/inner sums are
// bounded by the TimingReport's max_outer/inner_comm_time. For
// point-to-point or overlapped runs the chain is a best-effort
// approximation (spans on one rank may overlap; the walk picks the
// latest-ending candidate).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/table.hpp"

namespace hs::trace {

class Recorder;

enum class PathCategory { Comp, OuterComm, InnerComm, FlatComm, Idle };
std::string_view to_string(PathCategory category);

/// One hop of the critical path, in virtual time. Chronological order.
struct PathSegment {
  double start = 0.0;
  double end = 0.0;
  PathCategory category = PathCategory::Idle;
  int rank = -1;          // rank the segment is charged to
  long long step = -1;    // kernel pivot step, -1 = unmarked
  std::string label;      // "compute", collective op name, or "idle"
  double duration() const { return end - start; }
};

struct CriticalPathReport {
  std::vector<PathSegment> segments;  // chronological, tiling [start, end]
  double comp = 0.0;
  double outer_comm = 0.0;
  double inner_comm = 0.0;
  double flat_comm = 0.0;
  double idle = 0.0;
  double start_time = 0.0;
  double end_time = 0.0;

  double total() const { return end_time - start_time; }
  double of(PathCategory category) const;

  /// One-line decomposition, e.g.
  /// "critical path 1.23 s = comp 0.81 s + outer 0.21 s + inner 0.18 s
  ///  + flat 0 s + idle 0.03 s (42 segments)".
  std::string summary() const;

  /// Per-category table: category, time, share of the path.
  Table breakdown_table() const;
};

/// Extract the critical path from `recorder`'s events. Returns an empty
/// report (no segments, total() == 0) if the recorder holds no spans.
CriticalPathReport analyze_critical_path(const Recorder& recorder);

}  // namespace hs::trace
