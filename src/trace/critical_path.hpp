// Critical-path extraction from recorded simulation events.
//
// Walks a Recorder's span set backward from the latest-ending event to
// reconstruct one chain of dependent work that realizes the run's makespan,
// then attributes every segment of that chain to computation, communication
// at some hierarchy chain level, flat communication, or idle waiting. This
// turns "HSUMMA was 1.8x faster" into "the critical path swapped 0.4 s of
// flat broadcast for 0.1 s of level-0 + 0.15 s of level-1 broadcast".
//
// Communication attribution is per *chain level*, so a depth-L hierarchy
// gets an L-entry split (level_comm), not a fixed outer/inner pair. The
// classic two-level decomposition is the L = 2 special case: level 0 is the
// inter-group ("outer") phase, level 1 the intra-group ("inner") phase, and
// the legacy outer_comm/inner_comm accessors keep reporting exactly those —
// for deeper chains inner_comm aggregates every level >= 1. Spans carry
// their level explicitly when the kernel stamps one (the recursive
// multilevel path does); unstamped spans fall back to the Outer/Inner phase
// marks, so two-level traces split identically to the fixed-category
// analyzer they replace.
//
// The walk hops between ranks through collectives: a collective completes
// when its last participant arrives, so the path continues on the
// latest-arriving rank at that rank's entry time. For ClosedForm runs of
// the non-overlapped kernels this is exact: segments tile
// [start_time, end_time] with no double counting, so the category sums add
// up to the run's total_time for any chain depth (locked to 1e-9 by
// tests/trace/test_critical_path.cpp), and each level's sum is bounded by
// the TimingReport's matching max level_comm_time entry
// (max_outer/inner_comm_time at depth 2). For point-to-point or overlapped
// runs the chain is a best-effort approximation (spans on one rank may
// overlap; the walk picks the latest-ending candidate).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/table.hpp"

namespace hs::trace {

class Recorder;

/// OuterComm is communication at chain level 0, InnerComm at any level
/// >= 1; FlatComm is level-less (non-hierarchical algorithms). The
/// PathSegment::level field carries the exact level.
enum class PathCategory { Comp, OuterComm, InnerComm, FlatComm, Idle };
std::string_view to_string(PathCategory category);

/// One hop of the critical path, in virtual time. Chronological order.
struct PathSegment {
  double start = 0.0;
  double end = 0.0;
  PathCategory category = PathCategory::Idle;
  int rank = -1;          // rank the segment is charged to
  long long step = -1;    // kernel pivot step, -1 = unmarked
  int level = -1;         // chain level for comm segments; -1 otherwise
  std::string label;      // "compute", collective op name, or "idle"
  double duration() const { return end - start; }
};

/// The makespan decomposition: comp + per-level comm + flat comm + idle
/// tile [start_time, end_time].
struct CriticalPathSplit {
  std::vector<PathSegment> segments;  // chronological, tiling [start, end]
  double comp = 0.0;
  double outer_comm = 0.0;  // comm at level 0
  double inner_comm = 0.0;  // comm at every level >= 1
  double flat_comm = 0.0;
  double idle = 0.0;
  /// Communication time per chain level, outermost first; empty for flat
  /// runs. level_comm[0] == outer_comm and the tail sums to inner_comm.
  std::vector<double> level_comm;
  double start_time = 0.0;
  double end_time = 0.0;

  double total() const { return end_time - start_time; }
  double of(PathCategory category) const;
  /// Number of chain levels the path's communication touched.
  int depth() const { return static_cast<int>(level_comm.size()); }

  /// One-line decomposition, e.g.
  /// "critical path 1.23 s = comp 0.81 s + outer 0.21 s + inner 0.18 s
  ///  + flat 0 s + idle 0.03 s (42 segments)".
  /// For chains deeper than two levels, per-level continuation lines
  /// ("  level 2: 0.04 s") follow the (unchanged) head line.
  std::string summary() const;

  /// Per-category table: category, time, share of the path. Chains deeper
  /// than two levels get one extra row per level.
  Table breakdown_table() const;
};

/// The pre-generalization name; the depth <= 2 fields behave identically.
using CriticalPathReport = CriticalPathSplit;

/// Extract the critical path from `recorder`'s events. Returns an empty
/// split (no segments, total() == 0) if the recorder holds no spans.
CriticalPathSplit analyze_critical_path(const Recorder& recorder);

}  // namespace hs::trace
