#include "trace/recorder.hpp"

#include <algorithm>

#include "trace/stream_sink.hpp"

namespace hs::trace {

std::string_view to_string(CollectiveOp op) {
  switch (op) {
    case CollectiveOp::Bcast: return "bcast";
    case CollectiveOp::Barrier: return "barrier";
    case CollectiveOp::Reduce: return "reduce";
    case CollectiveOp::Allreduce: return "allreduce";
    case CollectiveOp::AllreduceRabenseifner: return "allreduce-rabenseifner";
    case CollectiveOp::ReduceScatter: return "reduce-scatter";
    case CollectiveOp::Gather: return "gather";
    case CollectiveOp::Scatter: return "scatter";
    case CollectiveOp::Allgather: return "allgather";
  }
  return "unknown";
}

std::string_view to_string(Phase phase) {
  switch (phase) {
    case Phase::Flat: return "flat";
    case Phase::Outer: return "outer";
    case Phase::Inner: return "inner";
  }
  return "unknown";
}

std::string_view to_string(TaskSpanKind kind) {
  switch (kind) {
    case TaskSpanKind::Comm: return "comm";
    case TaskSpanKind::Compute: return "compute";
    case TaskSpanKind::Wait: return "wait";
  }
  return "unknown";
}

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::RankSlowdown: return "rank-slowdown";
    case FaultKind::LinkDegrade: return "link-degrade";
    case FaultKind::MessageDrop: return "message-drop";
    case FaultKind::Timeout: return "timeout";
  }
  return "unknown";
}

int Recorder::rank_count() const {
  int max_rank = -1;
  for (const auto& span : collectives_) max_rank = std::max(max_rank, span.rank);
  for (const auto& span : computes_) max_rank = std::max(max_rank, span.rank);
  for (const auto& mark : steps_) max_rank = std::max(max_rank, mark.rank);
  for (const auto& wire : wires_) {
    max_rank = std::max(max_rank, wire.src);
    max_rank = std::max(max_rank, wire.dst);
  }
  for (const auto& fault : faults_) {
    max_rank = std::max(max_rank, fault.a);
    max_rank = std::max(max_rank, fault.b);
  }
  for (const auto& task : tasks_) max_rank = std::max(max_rank, task.rank);
  return max_rank + 1;
}

void Recorder::spill_now() {
  if (stream_ == nullptr) return;
  spilled_spans_ += stream_->spill(*this);
  // Rank state and histograms survive a spill on purpose: only the span
  // storage is bounded, the stamping context is O(ranks) and stays.
  collectives_.clear();
  computes_.clear();
  steps_.clear();
  wires_.clear();
  sites_.clear();
  faults_.clear();
  tasks_.clear();
  buffered_bytes_ = 0;
}

void Recorder::flush_stream() {
  if (stream_ == nullptr || buffered_bytes_ == 0) return;
  spill_now();
}

}  // namespace hs::trace
