#include "trace/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/check.hpp"
#include "desim/engine.hpp"

namespace hs::trace {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string gauge_repr(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(std::string(name));
  return it == gauges_.end() ? 0.0 : it->second;
}

const hs::Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  const auto it = histograms_.find(std::string(name));
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) {
    const auto [it, inserted] = gauges_.emplace(name, value);
    if (!inserted) it->second = std::max(it->second, value);
  }
  for (const auto& [name, hist] : other.histograms_)
    histograms_[name].merge(hist);
}

Table MetricsRegistry::to_table() const {
  Table table({"metric", "value"});
  for (const auto& [name, value] : counters_)
    table.add_row({name, std::to_string(value)});
  for (const auto& [name, value] : gauges_)
    table.add_row({name, gauge_repr(value)});
  for (const auto& [name, hist] : histograms_) {
    std::string summary = "count=" + std::to_string(hist.count());
    if (!hist.empty()) {
      summary += " p50=" + gauge_repr(hist.quantile(0.50));
      summary += " p90=" + gauge_repr(hist.quantile(0.90));
      summary += " p99=" + gauge_repr(hist.quantile(0.99));
      summary += " max=" + gauge_repr(hist.max());
    }
    table.add_row({name, summary});
  }
  return table;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << gauge_repr(value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":{\"count\":" << hist.count();
    if (hist.empty()) {
      out << "}";
      continue;
    }
    out << ",\"sum\":" << gauge_repr(hist.sum())
        << ",\"min\":" << gauge_repr(hist.min())
        << ",\"max\":" << gauge_repr(hist.max())
        << ",\"p50\":" << gauge_repr(hist.quantile(0.50))
        << ",\"p90\":" << gauge_repr(hist.quantile(0.90))
        << ",\"p99\":" << gauge_repr(hist.quantile(0.99)) << "}";
  }
  out << "}}";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void collect_engine_metrics(const desim::Engine& engine,
                            MetricsRegistry& metrics) {
  metrics.add_counter("desim.events_processed", engine.events_processed());
  metrics.add_counter("desim.heap_peak",
                      static_cast<std::uint64_t>(engine.heap_peak()));
  if (!engine.queue_depth_histogram().empty())
    metrics.histogram("desim.queue_depth")
        .merge(engine.queue_depth_histogram());
}

}  // namespace hs::trace
