#include "trace/metrics.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/check.hpp"
#include "desim/engine.hpp"

namespace hs::trace {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string gauge_repr(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(std::string(name));
  return it == gauges_.end() ? 0.0 : it->second;
}

Table MetricsRegistry::to_table() const {
  Table table({"metric", "value"});
  for (const auto& [name, value] : counters_)
    table.add_row({name, std::to_string(value)});
  for (const auto& [name, value] : gauges_)
    table.add_row({name, gauge_repr(value)});
  return table;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << gauge_repr(value);
  }
  out << "}}";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void collect_engine_metrics(const desim::Engine& engine,
                            MetricsRegistry& metrics) {
  metrics.add_counter("desim.events_processed", engine.events_processed());
  metrics.add_counter("desim.heap_peak",
                      static_cast<std::uint64_t>(engine.heap_peak()));
}

}  // namespace hs::trace
