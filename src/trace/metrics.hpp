// Cross-layer metrics registry: named monotonic counters and point-in-time
// gauges, harvested from whichever subsystems a run touched.
//
// Producers expose a `collect_metrics(MetricsRegistry&)` hook (mpc::Machine,
// exec::ParallelExecutor) or a free collector (collect_engine_metrics below)
// that dumps their always-on counters under a dotted-name convention:
//
//   mpc.collective.bcast.calls     per-SiteKind call counts / payload bytes
//   mpc.bcast_algo.binomial.calls  broadcast algorithm usage
//   mpc.port.send_busy_max_s       port utilization gauges
//   desim.events_processed         engine event loop counters
//   exec.cache_hits                sweep executor cache behavior
//
// The registry renders as an aligned table (human) or JSON (tooling); both
// orderings are deterministic (sorted by name).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "common/table.hpp"

namespace hs::desim {
class Engine;
}

namespace hs::trace {

class MetricsRegistry {
 public:
  /// Add `delta` to counter `name` (created at zero on first use).
  void add_counter(std::string_view name, std::uint64_t delta) {
    counters_[std::string(name)] += delta;
  }

  /// Set gauge `name` to `value` (last write wins).
  void set_gauge(std::string_view name, double value) {
    gauges_[std::string(name)] = value;
  }

  std::uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  bool has_counter(std::string_view name) const {
    return counters_.find(std::string(name)) != counters_.end();
  }
  bool has_gauge(std::string_view name) const {
    return gauges_.find(std::string(name)) != gauges_.end();
  }

  const std::map<std::string, std::uint64_t>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const noexcept {
    return gauges_;
  }
  bool empty() const noexcept { return counters_.empty() && gauges_.empty(); }
  void clear() {
    counters_.clear();
    gauges_.clear();
  }

  /// Aligned two-column rendering, counters first, sorted by name.
  Table to_table() const;

  /// {"counters": {...}, "gauges": {...}}, keys sorted, gauges rendered
  /// with enough digits to round-trip.
  void write_json(std::ostream& out) const;
  std::string to_json() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
};

/// Harvest the engine's event-loop counters: desim.events_processed and
/// desim.heap_peak.
void collect_engine_metrics(const desim::Engine& engine,
                            MetricsRegistry& metrics);

}  // namespace hs::trace
