// Cross-layer metrics registry: named monotonic counters and point-in-time
// gauges, harvested from whichever subsystems a run touched.
//
// Producers expose a `collect_metrics(MetricsRegistry&)` hook (mpc::Machine,
// exec::ParallelExecutor) or a free collector (collect_engine_metrics below)
// that dumps their always-on counters under a dotted-name convention:
//
//   mpc.collective.bcast.calls     per-SiteKind call counts / payload bytes
//   mpc.bcast_algo.binomial.calls  broadcast algorithm usage
//   mpc.port.send_busy_max_s       port utilization gauges
//   desim.events_processed         engine event loop counters
//   exec.cache_hits                sweep executor cache behavior
//
// Besides counters and gauges the registry holds named log-bucketed
// histograms (hs::Histogram) for quantities whose *distribution* matters at
// scale — transfer latency, exposed task waits, per-level broadcast times,
// engine queue depth — rendered as p50/p90/p99/max. Histograms share a
// fixed bucket layout, so merge() across executor workers is element-wise
// and deterministic regardless of worker completion order.
//
// The registry renders as an aligned table (human) or JSON (tooling); both
// orderings are deterministic (sorted by name).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "common/stats.hpp"
#include "common/table.hpp"

namespace hs::desim {
class Engine;
}

namespace hs::trace {

class MetricsRegistry {
 public:
  /// Add `delta` to counter `name` (created at zero on first use).
  void add_counter(std::string_view name, std::uint64_t delta) {
    counters_[std::string(name)] += delta;
  }

  /// Set gauge `name` to `value` (last write wins).
  void set_gauge(std::string_view name, double value) {
    gauges_[std::string(name)] = value;
  }

  /// Mutable reference to histogram `name` (created empty on first use);
  /// producers call registry.histogram("...").add(x) or .merge(h).
  hs::Histogram& histogram(std::string_view name) {
    return histograms_[std::string(name)];
  }

  std::uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  const hs::Histogram* find_histogram(std::string_view name) const;
  bool has_counter(std::string_view name) const {
    return counters_.find(std::string(name)) != counters_.end();
  }
  bool has_gauge(std::string_view name) const {
    return gauges_.find(std::string(name)) != gauges_.end();
  }
  bool has_histogram(std::string_view name) const {
    return histograms_.find(std::string(name)) != histograms_.end();
  }

  const std::map<std::string, std::uint64_t>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const noexcept {
    return gauges_;
  }
  const std::map<std::string, hs::Histogram>& histograms() const noexcept {
    return histograms_;
  }
  bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void clear() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

  /// Fold `other` into this registry: counters add, gauges take the max
  /// (every current gauge is a peak/ceiling figure), histograms merge
  /// bucket-wise. Commutative on counters and histogram counts, which makes
  /// cross-worker aggregation independent of completion order.
  void merge(const MetricsRegistry& other);

  /// Aligned two-column rendering, counters first, then gauges, then
  /// histograms as "count=N p50=... p90=... p99=... max=...", sorted by
  /// name within each group.
  Table to_table() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}, keys
  /// sorted, doubles rendered with enough digits to round-trip. Each
  /// histogram entry carries count/sum/min/max/p50/p90/p99.
  void write_json(std::ostream& out) const;
  std::string to_json() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, hs::Histogram> histograms_;
};

/// Harvest the engine's event-loop counters: desim.events_processed and
/// desim.heap_peak.
void collect_engine_metrics(const desim::Engine& engine,
                            MetricsRegistry& metrics);

}  // namespace hs::trace
