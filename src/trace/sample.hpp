// Rank-sampling policy for tracing at scale.
//
// At p = 2^20 a full trace is out of the question: every rank records
// O(steps * log p) spans, so an unsampled recorder would buffer hundreds of
// millions of events and the Chrome-trace export would dwarf any viewer.
// TraceSample is the canonical sampling spec — which *ranks* get their
// spans recorded — so a traced run stores O(sampled ranks) spans while the
// simulation itself is untouched (sampling is a pure store-side filter; the
// zero-perturbation invariant holds exactly as without it).
//
// Spec strings are '+'-separated terms, canonicalized by to_string():
//
//   all          every rank (sampling off)
//   root         rank 0
//   leaders      per-level group leaders, at most N per level
//   leaders:N    (default N = 16, evenly strided over the level's groups)
//   random:K     K distinct ranks drawn from a seed-stamped splitmix64
//   slowest:K    the K slowest ranks (effective slowdown factor > 1) from
//                MachineConfig::rank_gamma and fault-plan slowdown windows
//
// e.g. "leaders+slowest:4" — the acceptance spec for the p = 2^20 figure.
//
// Layering: this header knows nothing about grids, hierarchies or fault
// plans (hs_mpc and hs_core link hs_trace, not vice versa). The caller —
// core::run — computes the per-level leader rank lists and the per-rank
// slowness vector from its own geometry and passes them in as
// SampleInputs; resolve() only combines them into a rank set.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hs::trace {

struct TraceSample {
  static constexpr int kDefaultLeadersPerLevel = 16;

  bool all = false;
  bool root = false;
  /// 0 = leaders term absent; > 0 = cap per hierarchy level.
  int leaders_per_level = 0;
  int random_count = 0;
  int slowest_count = 0;

  /// No terms at all. An empty sample means "no sampling requested":
  /// attaching it to a Recorder is a no-op (everything records).
  bool empty() const noexcept {
    return !all && !root && leaders_per_level == 0 && random_count == 0 &&
           slowest_count == 0;
  }

  /// Parses a spec string; "" parses to the empty sample. Duplicate terms
  /// combine by max. Aborts (HS_REQUIRE) on unknown terms or bad counts.
  static TraceSample parse(std::string_view spec);

  /// Canonical spec: terms in the fixed order all, root, leaders, random,
  /// slowest; "leaders" spelled bare when the cap is the default.
  /// parse(to_string()) round-trips.
  std::string to_string() const;
};

/// Everything a TraceSample resolves against. The leader lists are world
/// ranks per hierarchy level, outermost first (flat runs pass none — the
/// leaders term then only contributes the root). rank_slowness is the
/// effective per-rank slowdown factor (1 = nominal); empty = homogeneous.
struct SampleInputs {
  int ranks = 0;
  std::uint64_t seed = 0;
  std::vector<std::vector<int>> level_leaders;
  std::vector<double> rank_slowness;
};

/// The resolved rank set: a dense bitmap (128 KiB at p = 2^20), O(1)
/// membership. Default-constructed = complete (every rank sampled), which
/// is what a Recorder without an explicit sample uses.
class RankSampleSet {
 public:
  RankSampleSet() = default;

  static RankSampleSet all(int ranks);
  static RankSampleSet resolve(const TraceSample& sample,
                               const SampleInputs& inputs);

  /// True when every rank is sampled (also for the default-constructed
  /// set, whose universe is unknown).
  bool complete() const noexcept { return complete_; }
  bool contains(int rank) const noexcept {
    if (complete_) return true;
    return rank >= 0 && static_cast<std::size_t>(rank) < mask_.size() &&
           mask_[static_cast<std::size_t>(rank)];
  }
  /// Number of sampled ranks; 0 means "complete" for the default set.
  int count() const noexcept { return count_; }
  int universe() const noexcept { return static_cast<int>(mask_.size()); }
  /// Sampled ranks in ascending order (empty for a complete set).
  std::vector<int> selected() const;

 private:
  std::vector<bool> mask_;
  int count_ = 0;
  bool complete_ = true;
};

}  // namespace hs::trace
