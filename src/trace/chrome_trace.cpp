#include "trace/chrome_trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <vector>

#include "common/check.hpp"

namespace hs::trace {

namespace {

// Per-rank cumulative port-busy counters are emitted only for runs small
// enough that one counter track per rank stays readable.
constexpr int kMaxBusyCounterRanks = 128;

std::string fmt_us(double seconds) {
  // Microseconds with nanosecond resolution: plenty for Hockney-scale
  // virtual times, and rounding is monotone so span containment survives.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e6);
  return buf;
}

std::string fmt_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Comma-separated event emission into the traceEvents array.
class EventSink {
 public:
  explicit EventSink(std::ostream& out) : out_(&out) {}
  void emit(const std::string& event) {
    if (!first_) *out_ << ",\n";
    first_ = false;
    *out_ << event;
  }

 private:
  std::ostream* out_;
  bool first_ = true;
};

std::string metadata_event(int pid, int tid, std::string_view kind,
                           std::string_view name) {
  std::string event = "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
                      ",\"tid\":" + std::to_string(tid) + ",\"name\":\"";
  event += kind;
  event += "\",\"args\":{\"name\":\"" + json_escape(name) + "\"}}";
  return event;
}

/// An interval to be placed on a nesting-safe sub-lane.
struct TimedItem {
  double start = 0.0;
  double end = 0.0;
  bool compute = false;
  std::size_t index = 0;  // into the source vector
};

/// Greedy lane assignment: sorts `items` by (start asc, end desc) and
/// places each on the first lane where it either follows every open span or
/// nests inside the innermost one, so spans sharing a lane never partially
/// overlap. Returns one lane id per (sorted) item; lane count is
/// max(lane) + 1, unbounded (overlap pipelines fork a handful of
/// concurrent spans, not hundreds).
std::vector<int> assign_lanes(std::vector<TimedItem>& items) {
  std::sort(items.begin(), items.end(),
            [](const TimedItem& a, const TimedItem& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.end != b.end) return a.end > b.end;
              return a.index < b.index;
            });
  std::vector<std::vector<double>> open_ends;  // per lane, stack of open ends
  std::vector<int> lanes(items.size(), 0);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const TimedItem& item = items[i];
    int lane = -1;
    for (std::size_t l = 0; l < open_ends.size(); ++l) {
      auto& stack = open_ends[l];
      while (!stack.empty() && stack.back() <= item.start) stack.pop_back();
      if (stack.empty() || item.end <= stack.back()) {
        lane = static_cast<int>(l);
        break;
      }
    }
    if (lane < 0) {
      open_ends.emplace_back();
      lane = static_cast<int>(open_ends.size()) - 1;
    }
    open_ends[static_cast<std::size_t>(lane)].push_back(item.end);
    lanes[i] = lane;
  }
  return lanes;
}

std::string complete_event(int pid, int tid, double start, double end,
                           std::string_view name, std::string_view category,
                           const std::string& args) {
  std::string event = "{\"ph\":\"X\",\"pid\":" + std::to_string(pid) +
                      ",\"tid\":" + std::to_string(tid) + ",\"ts\":" +
                      fmt_us(start) + ",\"dur\":" + fmt_us(end - start) +
                      ",\"name\":\"" + json_escape(name) + "\",\"cat\":\"";
  event += category;
  event += "\",\"args\":{" + args + "}}";
  return event;
}

std::string collective_args(const CollectiveSpan& span) {
  std::string args = "\"ctx\":" + std::to_string(span.ctx) +
                     ",\"seq\":" + std::to_string(span.seq) +
                     ",\"root\":" + std::to_string(span.root) +
                     ",\"bytes\":" + std::to_string(span.bytes) +
                     ",\"step\":" + std::to_string(span.step) +
                     ",\"phase\":\"";
  args += to_string(span.phase);
  args += "\",\"closed_form\":";
  args += span.closed_form ? "true" : "false";
  if (span.algo >= 0) args += ",\"algo_id\":" + std::to_string(span.algo);
  return args;
}

void write_session(EventSink& sink, const TraceSession& session,
                   std::size_t session_index) {
  HS_REQUIRE(session.recorder != nullptr);
  const Recorder& recorder = *session.recorder;
  const int pid_ranks = static_cast<int>(3 * session_index);
  const int pid_wire = pid_ranks + 1;
  const int pid_tasks = pid_ranks + 2;  // only emitted when tasks exist
  const int ranks = recorder.rank_count();

  sink.emit(metadata_event(pid_ranks, 0, "process_name",
                           session.label + " ranks"));
  sink.emit(metadata_event(pid_wire, 0, "process_name",
                           session.label + " wire"));

  // --- per-rank span tracks (collectives + computes, lane-spilled) ------
  std::vector<std::vector<TimedItem>> per_rank(
      static_cast<std::size_t>(std::max(ranks, 0)));
  auto rank_slot = [&per_rank](int rank) -> std::vector<TimedItem>* {
    if (rank < 0 || static_cast<std::size_t>(rank) >= per_rank.size())
      return nullptr;
    return &per_rank[static_cast<std::size_t>(rank)];
  };
  for (std::size_t i = 0; i < recorder.collectives().size(); ++i) {
    const CollectiveSpan& span = recorder.collectives()[i];
    if (auto* slot = rank_slot(span.rank))
      slot->push_back({span.start, span.end, false, i});
  }
  for (std::size_t i = 0; i < recorder.computes().size(); ++i) {
    const ComputeSpan& span = recorder.computes()[i];
    if (auto* slot = rank_slot(span.rank))
      slot->push_back({span.start, span.end, true, i});
  }

  // Dense tids: every rank owns [tid_base[r], tid_base[r] + lanes(r)).
  std::vector<int> tid_base(per_rank.size() + 1, 0);
  std::vector<std::vector<int>> rank_lanes(per_rank.size());
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    rank_lanes[r] = assign_lanes(per_rank[r]);
    int lane_count = 1;
    for (int lane : rank_lanes[r]) lane_count = std::max(lane_count, lane + 1);
    tid_base[r + 1] = tid_base[r] + lane_count;
  }

  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    const int lanes_here = tid_base[r + 1] - tid_base[r];
    for (int lane = 0; lane < lanes_here; ++lane) {
      std::string name = "rank " + std::to_string(r);
      if (lane > 0) name += " ~" + std::to_string(lane);
      sink.emit(metadata_event(pid_ranks, tid_base[r] + lane, "thread_name",
                               name));
    }
    for (std::size_t i = 0; i < per_rank[r].size(); ++i) {
      const TimedItem& item = per_rank[r][i];
      const int tid = tid_base[r] + rank_lanes[r][i];
      if (item.compute) {
        const ComputeSpan& span = recorder.computes()[item.index];
        sink.emit(complete_event(
            pid_ranks, tid, span.start, span.end, "compute", "compute",
            "\"flops\":" + fmt_double(span.flops) +
                ",\"step\":" + std::to_string(span.step) + ",\"phase\":\"" +
                std::string(to_string(span.phase)) + "\""));
      } else {
        const CollectiveSpan& span = recorder.collectives()[item.index];
        sink.emit(complete_event(pid_ranks, tid, span.start, span.end,
                                 to_string(span.op), "collective",
                                 collective_args(span)));
      }
    }
  }

  // --- step markers ------------------------------------------------------
  for (const StepMark& mark : recorder.steps()) {
    if (mark.rank < 0 || static_cast<std::size_t>(mark.rank) >= per_rank.size())
      continue;
    std::string name = "step " + std::to_string(mark.step) + " (" +
                       std::string(to_string(mark.phase)) + ")";
    sink.emit("{\"ph\":\"i\",\"s\":\"t\",\"pid\":" +
              std::to_string(pid_ranks) + ",\"tid\":" +
              std::to_string(tid_base[static_cast<std::size_t>(mark.rank)]) +
              ",\"ts\":" + fmt_us(mark.time) + ",\"name\":\"" +
              json_escape(name) + "\"}");
  }

  // --- wire tracks: one lane per sending rank (the single-port model
  // serializes a rank's sends, so these never overlap), sites spilled onto
  // lanes above the rank range.
  for (const WireSpan& wire : recorder.wires()) {
    const int tid = std::max(wire.src, 0);
    sink.emit(complete_event(
        pid_wire, tid, wire.start, wire.end,
        "send \xE2\x86\x92 " + std::to_string(wire.dst), "wire",
        "\"src\":" + std::to_string(wire.src) +
            ",\"dst\":" + std::to_string(wire.dst) +
            ",\"bytes\":" + std::to_string(wire.bytes) +
            ",\"ctx\":" + std::to_string(wire.ctx) +
            ",\"tag\":" + std::to_string(wire.tag)));
  }
  if (!recorder.wires().empty())
    for (int r = 0; r < ranks; ++r)
      sink.emit(metadata_event(pid_wire, r, "thread_name",
                               "send port rank " + std::to_string(r)));

  std::vector<TimedItem> site_items;
  site_items.reserve(recorder.sites().size());
  for (std::size_t i = 0; i < recorder.sites().size(); ++i) {
    const SiteSpan& site = recorder.sites()[i];
    site_items.push_back({site.start, site.end, false, i});
  }
  const std::vector<int> site_lanes = assign_lanes(site_items);
  int site_lane_count = 0;
  for (int lane : site_lanes) site_lane_count = std::max(site_lane_count, lane + 1);
  for (int lane = 0; lane < site_lane_count; ++lane)
    sink.emit(metadata_event(pid_wire, ranks + lane, "thread_name",
                             "collective sites ~" + std::to_string(lane)));
  for (std::size_t i = 0; i < site_items.size(); ++i) {
    const SiteSpan& site = recorder.sites()[site_items[i].index];
    sink.emit(complete_event(
        pid_wire, ranks + site_lanes[i], site.start, site.end,
        "site:" + std::string(to_string(site.op)), "site",
        "\"ctx\":" + std::to_string(site.ctx) +
            ",\"seq\":" + std::to_string(site.seq) +
            ",\"root\":" + std::to_string(site.root) +
            ",\"wire_bytes\":" + std::to_string(site.wire_bytes) +
            ",\"members\":" + std::to_string(site.members)));
  }

  // --- fault track: plan windows + drop/timeout instants, spilled onto
  // lanes above the collective-site range. Open-ended windows (end = inf)
  // are clamped to the latest finite time the recorder saw, so Perfetto's
  // viewport stays finite.
  if (!recorder.faults().empty()) {
    double horizon = 0.0;
    auto stretch_horizon = [&horizon](double t) {
      if (std::isfinite(t)) horizon = std::max(horizon, t);
    };
    for (const CollectiveSpan& span : recorder.collectives())
      stretch_horizon(span.end);
    for (const ComputeSpan& span : recorder.computes())
      stretch_horizon(span.end);
    for (const WireSpan& span : recorder.wires()) stretch_horizon(span.end);
    for (const SiteSpan& span : recorder.sites()) stretch_horizon(span.end);
    for (const FaultSpan& span : recorder.faults()) {
      stretch_horizon(span.start);
      stretch_horizon(span.end);
    }

    const int fault_tid_base = ranks + site_lane_count;
    std::vector<TimedItem> fault_items;
    fault_items.reserve(recorder.faults().size());
    for (std::size_t i = 0; i < recorder.faults().size(); ++i) {
      const FaultSpan& span = recorder.faults()[i];
      const double end = std::isfinite(span.end) ? span.end : horizon;
      fault_items.push_back({span.start, std::max(end, span.start), false, i});
    }
    const std::vector<int> fault_lanes = assign_lanes(fault_items);
    int fault_lane_count = 0;
    for (int lane : fault_lanes)
      fault_lane_count = std::max(fault_lane_count, lane + 1);
    for (int lane = 0; lane < fault_lane_count; ++lane)
      sink.emit(metadata_event(pid_wire, fault_tid_base + lane, "thread_name",
                               "faults ~" + std::to_string(lane)));
    for (std::size_t i = 0; i < fault_items.size(); ++i) {
      const FaultSpan& span = recorder.faults()[fault_items[i].index];
      const int tid = fault_tid_base + fault_lanes[i];
      std::string name(to_string(span.kind));
      if (span.a >= 0) {
        name += span.b >= 0 ? " " + std::to_string(span.a) + "\xE2\x86\x92" +
                                  std::to_string(span.b)
                            : " rank " + std::to_string(span.a);
      }
      std::string args = "\"kind\":\"" + std::string(to_string(span.kind)) +
                         "\",\"a\":" + std::to_string(span.a) +
                         ",\"b\":" + std::to_string(span.b) +
                         ",\"factor\":" + fmt_double(span.factor);
      if (span.start < span.end) {
        sink.emit(complete_event(pid_wire, tid, fault_items[i].start,
                                 fault_items[i].end, name, "fault", args));
      } else {
        sink.emit("{\"ph\":\"i\",\"s\":\"t\",\"pid\":" +
                  std::to_string(pid_wire) + ",\"tid\":" + std::to_string(tid) +
                  ",\"ts\":" + fmt_us(span.start) + ",\"name\":\"" +
                  json_escape(name) + "\",\"cat\":\"fault\",\"args\":{" + args +
                  "}}");
      }
    }
  }

  // --- task-runtime tracks: the scheduler's view of each rank — comm
  // transfer spans, compute charges and *exposed* join waits (what the
  // critical-path analyzer counts as reclaimable idle). Forked comm runs
  // concurrently with compute on the same rank, so lanes spill like the
  // collective tracks above.
  if (!recorder.tasks().empty()) {
    sink.emit(metadata_event(pid_tasks, 0, "process_name",
                             session.label + " tasks"));
    int task_ranks = 0;
    for (const TaskSpan& span : recorder.tasks())
      task_ranks = std::max(task_ranks, span.rank + 1);
    std::vector<std::vector<TimedItem>> per_rank_tasks(
        static_cast<std::size_t>(task_ranks));
    for (std::size_t i = 0; i < recorder.tasks().size(); ++i) {
      const TaskSpan& span = recorder.tasks()[i];
      if (span.rank < 0) continue;
      per_rank_tasks[static_cast<std::size_t>(span.rank)].push_back(
          {span.start, std::max(span.end, span.start), false, i});
    }
    int task_tid = 0;
    for (std::size_t r = 0; r < per_rank_tasks.size(); ++r) {
      const std::vector<int> lanes = assign_lanes(per_rank_tasks[r]);
      int lane_count = 1;
      for (int lane : lanes) lane_count = std::max(lane_count, lane + 1);
      for (int lane = 0; lane < lane_count; ++lane) {
        std::string name = "rank " + std::to_string(r) + " tasks";
        if (lane > 0) name += " ~" + std::to_string(lane);
        sink.emit(metadata_event(pid_tasks, task_tid + lane, "thread_name",
                                 name));
      }
      for (std::size_t i = 0; i < per_rank_tasks[r].size(); ++i) {
        const TimedItem& item = per_rank_tasks[r][i];
        const TaskSpan& span = recorder.tasks()[item.index];
        const std::string_view kind = to_string(span.kind);
        std::string name(span.label);
        if (name.empty()) name = kind;
        if (span.kind == TaskSpanKind::Wait) name = "wait: " + name;
        sink.emit(complete_event(
            pid_tasks, task_tid + lanes[i], item.start, item.end, name,
            std::string("task-") + std::string(kind),
            "\"kind\":\"" + std::string(kind) +
                "\",\"step\":" + std::to_string(span.step) + ",\"phase\":\"" +
                std::string(to_string(span.phase)) + "\""));
      }
      task_tid += lane_count;
    }
  }

  // --- counters ----------------------------------------------------------
  // Cumulative wire bytes over virtual time, sampled at each completion
  // (point-to-point transfers plus ClosedForm site charges).
  std::vector<std::pair<double, std::uint64_t>> charges;
  charges.reserve(recorder.wires().size() + recorder.sites().size());
  for (const WireSpan& wire : recorder.wires())
    charges.emplace_back(wire.end, wire.bytes);
  for (const SiteSpan& site : recorder.sites())
    charges.emplace_back(site.end, site.wire_bytes);
  std::stable_sort(charges.begin(), charges.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::uint64_t cumulative = 0;
  for (const auto& [end, bytes] : charges) {
    cumulative += bytes;
    sink.emit("{\"ph\":\"C\",\"pid\":" + std::to_string(pid_wire) +
              ",\"tid\":0,\"ts\":" + fmt_us(end) +
              ",\"name\":\"cumulative wire bytes\",\"args\":{\"bytes\":" +
              std::to_string(cumulative) + "}}");
  }

  // Per-rank cumulative port busy time (send and receive series).
  if (ranks > 0 && ranks <= kMaxBusyCounterRanks && !recorder.wires().empty()) {
    std::vector<const WireSpan*> by_end;
    by_end.reserve(recorder.wires().size());
    for (const WireSpan& wire : recorder.wires()) by_end.push_back(&wire);
    std::stable_sort(by_end.begin(), by_end.end(),
                     [](const WireSpan* a, const WireSpan* b) {
                       return a->end < b->end;
                     });
    std::vector<double> send_busy(static_cast<std::size_t>(ranks), 0.0);
    std::vector<double> recv_busy(static_cast<std::size_t>(ranks), 0.0);
    auto emit_busy = [&](int rank, double ts) {
      sink.emit("{\"ph\":\"C\",\"pid\":" + std::to_string(pid_ranks) +
                ",\"tid\":0,\"ts\":" + fmt_us(ts) +
                ",\"name\":\"port busy s (rank " + std::to_string(rank) +
                ")\",\"args\":{\"send\":" +
                fmt_double(send_busy[static_cast<std::size_t>(rank)]) +
                ",\"recv\":" +
                fmt_double(recv_busy[static_cast<std::size_t>(rank)]) + "}}");
    };
    for (const WireSpan* wire : by_end) {
      const double busy = wire->end - wire->start;
      if (wire->src >= 0 && wire->src < ranks) {
        send_busy[static_cast<std::size_t>(wire->src)] += busy;
        emit_busy(wire->src, wire->end);
      }
      if (wire->dst >= 0 && wire->dst < ranks) {
        recv_busy[static_cast<std::size_t>(wire->dst)] += busy;
        emit_busy(wire->dst, wire->end);
      }
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        std::span<const TraceSession> sessions) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  EventSink sink(out);
  for (std::size_t s = 0; s < sessions.size(); ++s)
    write_session(sink, sessions[s], s);
  out << "\n]}\n";
}

void write_chrome_trace(std::ostream& out, const Recorder& recorder,
                        std::string_view label) {
  const TraceSession session{&recorder, std::string(label)};
  write_chrome_trace(out, std::span<const TraceSession>(&session, 1));
}

}  // namespace hs::trace
