// Per-rank phase accounting (communication vs computation virtual time).
//
// The paper reports both overall execution time and communication-only
// time; every algorithm in hs::core fills one RankStats per rank, and
// TimingReport aggregates them the way the paper does: the *maximum* over
// ranks (the critical path determines when the answer is ready).
//
// PhaseTimer is coroutine-safe: its destructor runs when the enclosing
// scope of the coroutine frame exits, even across co_await suspensions, so
//   { PhaseTimer t(stats.comm_time, engine); co_await bcast(...); }
// charges exactly the virtual time the broadcast took.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "desim/engine.hpp"

namespace hs::trace {

struct RankStats {
  double comm_time = 0.0;  // virtual seconds in communication calls
  double comp_time = 0.0;  // virtual seconds in local compute
  /// Hierarchical algorithms additionally split communication into the
  /// inter-group (outer) and intra-group (inner) phases of the paper's
  /// Tables I/II. Zero for flat algorithms.
  double outer_comm_time = 0.0;
  double inner_comm_time = 0.0;
  /// Multi-level hierarchies further split communication per chain level
  /// (slot l = level l of the factor chain; the trailing remainder phase
  /// lands one past the deepest applied factor). Empty for flat/2-level
  /// legacy algorithms.
  std::vector<double> level_comm_time = {};
  std::uint64_t flops = 0;

  RankStats& operator+=(const RankStats& other) noexcept {
    comm_time += other.comm_time;
    comp_time += other.comp_time;
    outer_comm_time += other.outer_comm_time;
    inner_comm_time += other.inner_comm_time;
    if (level_comm_time.size() < other.level_comm_time.size())
      level_comm_time.resize(other.level_comm_time.size());
    for (std::size_t i = 0; i < other.level_comm_time.size(); ++i)
      level_comm_time[i] += other.level_comm_time[i];
    flops += other.flops;
    return *this;
  }
};

/// Accumulates elapsed virtual time into `slot` on scope exit.
class PhaseTimer {
 public:
  PhaseTimer(double& slot, desim::Engine& engine)
      : slot_(&slot), engine_(&engine), start_(engine.now()) {}
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer() { *slot_ += engine_->now() - start_; }

 private:
  double* slot_;
  desim::Engine* engine_;
  double start_;
};

/// Aggregate view over all ranks of one run.
struct TimingReport {
  double total_time = 0.0;     // wall (virtual) time of the whole run
  double max_comm_time = 0.0;  // critical-path communication time
  double max_comp_time = 0.0;
  double mean_comm_time = 0.0;
  double mean_comp_time = 0.0;
  /// Per-phase maxima for hierarchical runs: outer is chain level 0 (the
  /// inter-group broadcasts), inner aggregates every level >= 1. For
  /// depth-L chains the full per-level split is max_level_comm_time; the
  /// pair here is its two-level projection, kept because the paper's
  /// Tables I/II (and the critical-path analyzer's outer/inner sums, which
  /// these bound level by level) speak in exactly these two phases.
  double max_outer_comm_time = 0.0;
  double max_inner_comm_time = 0.0;
  /// Per-chain-level communication maxima (multi-level hierarchies only;
  /// mirrors RankStats::level_comm_time). Entry l bounds the analyzer's
  /// level_comm[l] on ClosedForm non-overlapped runs.
  std::vector<double> max_level_comm_time;
  std::uint64_t total_flops = 0;

  static TimingReport aggregate(double total_time,
                                std::span<const RankStats> per_rank);

  std::string summary() const;
};

}  // namespace hs::trace
