#include "trace/phase.hpp"

#include <algorithm>
#include <sstream>

#include "common/table.hpp"
#include "common/units.hpp"

namespace hs::trace {

TimingReport TimingReport::aggregate(double total_time,
                                     std::span<const RankStats> per_rank) {
  TimingReport report;
  report.total_time = total_time;
  if (per_rank.empty()) return report;
  double comm_sum = 0.0;
  double comp_sum = 0.0;
  for (const auto& stats : per_rank) {
    report.max_comm_time = std::max(report.max_comm_time, stats.comm_time);
    report.max_comp_time = std::max(report.max_comp_time, stats.comp_time);
    report.max_outer_comm_time =
        std::max(report.max_outer_comm_time, stats.outer_comm_time);
    report.max_inner_comm_time =
        std::max(report.max_inner_comm_time, stats.inner_comm_time);
    if (report.max_level_comm_time.size() < stats.level_comm_time.size())
      report.max_level_comm_time.resize(stats.level_comm_time.size());
    for (std::size_t i = 0; i < stats.level_comm_time.size(); ++i)
      report.max_level_comm_time[i] =
          std::max(report.max_level_comm_time[i], stats.level_comm_time[i]);
    comm_sum += stats.comm_time;
    comp_sum += stats.comp_time;
    report.total_flops += stats.flops;
  }
  report.mean_comm_time = comm_sum / static_cast<double>(per_rank.size());
  report.mean_comp_time = comp_sum / static_cast<double>(per_rank.size());
  return report;
}

std::string TimingReport::summary() const {
  std::ostringstream os;
  os << "total " << hs::format_seconds(total_time) << ", comm(max) "
     << hs::format_seconds(max_comm_time) << ", comp(max) "
     << hs::format_seconds(max_comp_time);
  // Achieved aggregate flop rate over the whole run (all ranks together).
  if (total_flops > 0 && total_time > 0.0)
    os << ", "
       << hs::format_flops(static_cast<double>(total_flops) / total_time);
  // Depth >= 3 chains get per-level continuation lines; flat and two-level
  // runs keep the single head line byte-identical to the historical format
  // (outer/inner maxima already tell the whole story there).
  if (max_level_comm_time.size() >= 3)
    for (std::size_t l = 0; l < max_level_comm_time.size(); ++l)
      os << "\n  level " << l << " comm(max) "
         << hs::format_seconds(max_level_comm_time[l]);
  return os.str();
}

}  // namespace hs::trace
