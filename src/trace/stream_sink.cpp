#include "trace/stream_sink.hpp"

#include <cstring>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/check.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/recorder.hpp"

namespace hs::trace {

namespace {

// Record kind tags. Append-only: existing values are part of the on-disk
// format ("HSSPANS1") and must not be renumbered.
enum class RecordKind : std::uint8_t {
  Collective = 0,
  Compute = 1,
  Step = 2,
  Wire = 3,
  Site = 4,
  Fault = 5,
  Task = 6,
};

/// Buffered little-endian field writer: records are serialized field by
/// field (never struct-dumped) so padding and ABI never leak into the file.
class FieldWriter {
 public:
  explicit FieldWriter(std::ofstream& out) : out_(out) {}
  ~FieldWriter() { flush(); }

  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw_le(v); }
  void i32(std::int32_t v) { raw_le(static_cast<std::uint32_t>(v)); }
  void u64(std::uint64_t v) { raw_le(v); }
  void i64(std::int64_t v) { raw_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    raw_le(bits);
  }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  void flush() {
    if (!buf_.empty()) {
      out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
      buf_.clear();
    }
  }

 private:
  template <typename T>
  void raw_le(T v) {
    char bytes[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i)
      bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    raw(bytes, sizeof(T));
  }
  void raw(const void* data, std::size_t n) {
    const char* p = static_cast<const char*>(data);
    buf_.insert(buf_.end(), p, p + n);
    if (buf_.size() >= (1u << 16)) flush();
  }

  std::ofstream& out_;
  std::vector<char> buf_;
};

/// Whole-file field reader (chunk files are only ever read back whole).
class FieldReader {
 public:
  FieldReader(std::vector<char> data) : data_(std::move(data)) {}

  bool done() const noexcept { return pos_ >= data_.size(); }
  std::size_t pos() const noexcept { return pos_; }

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::uint64_t u64() { return le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string_view str() {
    const std::uint32_t n = u32();
    return {take(n), n};
  }

 private:
  const char* take(std::size_t n) {
    HS_REQUIRE_MSG(pos_ + n <= data_.size(),
                   "truncated span chunk record at byte " << pos_);
    const char* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }
  std::uint64_t le(std::size_t n) {
    const char* p = take(n);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    return v;
  }

  std::vector<char> data_;
  std::size_t pos_ = 0;
};

/// TaskSpan::label is a `const char*` into static storage when recorded
/// live; loaded labels are interned here so the pointer contract survives a
/// round trip. Process-lifetime pool, mutex-guarded for parallel loaders
/// (unordered_set references are stable across inserts).
const char* intern_label(std::string_view label) {
  static std::mutex mutex;
  static std::unordered_set<std::string> pool;
  const std::lock_guard<std::mutex> lock(mutex);
  return pool.emplace(label).first->c_str();
}

void write_record(FieldWriter& w, const CollectiveSpan& s) {
  w.u8(static_cast<std::uint8_t>(RecordKind::Collective));
  w.f64(s.start);
  w.f64(s.end);
  w.i32(s.rank);
  w.u8(static_cast<std::uint8_t>(s.op));
  w.i32(s.algo);
  w.i32(s.ctx);
  w.u64(s.seq);
  w.i32(s.root);
  w.u64(s.bytes);
  w.i64(s.step);
  w.u8(static_cast<std::uint8_t>(s.phase));
  w.i32(s.level);
  w.u8(s.closed_form ? 1 : 0);
}

void write_record(FieldWriter& w, const ComputeSpan& s) {
  w.u8(static_cast<std::uint8_t>(RecordKind::Compute));
  w.f64(s.start);
  w.f64(s.end);
  w.i32(s.rank);
  w.f64(s.flops);
  w.i64(s.step);
  w.u8(static_cast<std::uint8_t>(s.phase));
  w.i32(s.level);
}

void write_record(FieldWriter& w, const StepMark& s) {
  w.u8(static_cast<std::uint8_t>(RecordKind::Step));
  w.f64(s.time);
  w.i32(s.rank);
  w.i64(s.step);
  w.u8(static_cast<std::uint8_t>(s.phase));
}

void write_record(FieldWriter& w, const WireSpan& s) {
  w.u8(static_cast<std::uint8_t>(RecordKind::Wire));
  w.f64(s.start);
  w.f64(s.end);
  w.i32(s.src);
  w.i32(s.dst);
  w.u64(s.bytes);
  w.i32(s.ctx);
  w.i32(s.tag);
}

void write_record(FieldWriter& w, const SiteSpan& s) {
  w.u8(static_cast<std::uint8_t>(RecordKind::Site));
  w.f64(s.start);
  w.f64(s.end);
  w.u8(static_cast<std::uint8_t>(s.op));
  w.i32(s.ctx);
  w.u64(s.seq);
  w.i32(s.root);
  w.u64(s.wire_bytes);
  w.i32(s.members);
}

void write_record(FieldWriter& w, const FaultSpan& s) {
  w.u8(static_cast<std::uint8_t>(RecordKind::Fault));
  w.f64(s.start);
  w.f64(s.end);
  w.u8(static_cast<std::uint8_t>(s.kind));
  w.i32(s.a);
  w.i32(s.b);
  w.f64(s.factor);
}

void write_record(FieldWriter& w, const TaskSpan& s) {
  w.u8(static_cast<std::uint8_t>(RecordKind::Task));
  w.f64(s.start);
  w.f64(s.end);
  w.i32(s.rank);
  w.u8(static_cast<std::uint8_t>(s.kind));
  w.i64(s.step);
  w.u8(static_cast<std::uint8_t>(s.phase));
  w.i32(s.level);
  w.str(s.label == nullptr ? std::string_view() : std::string_view(s.label));
}

}  // namespace

std::uint64_t SpanChunkWriter::spill(const Recorder& recorder) {
  if (!opened_) {
    out_.open(path_, std::ios::binary | std::ios::trunc);
    HS_REQUIRE_MSG(out_.good(),
                   "cannot open span chunk file '" << path_ << "'");
    out_.write(kSpanChunkMagic.data(),
               static_cast<std::streamsize>(kSpanChunkMagic.size()));
    opened_ = true;
  }
  FieldWriter w(out_);
  std::uint64_t written = 0;
  for (const auto& s : recorder.collectives()) write_record(w, s), ++written;
  for (const auto& s : recorder.computes()) write_record(w, s), ++written;
  for (const auto& s : recorder.steps()) write_record(w, s), ++written;
  for (const auto& s : recorder.wires()) write_record(w, s), ++written;
  for (const auto& s : recorder.sites()) write_record(w, s), ++written;
  for (const auto& s : recorder.faults()) write_record(w, s), ++written;
  for (const auto& s : recorder.tasks()) write_record(w, s), ++written;
  w.flush();
  HS_REQUIRE_MSG(out_.good(), "write to span chunk file '" << path_
                                                           << "' failed");
  spans_ += written;
  return written;
}

void SpanChunkWriter::finish() {
  if (!opened_) return;
  out_.flush();
  out_.close();
  opened_ = false;
}

std::uint64_t load_span_chunks(const std::string& path, Recorder& out) {
  std::ifstream in(path, std::ios::binary);
  HS_REQUIRE_MSG(in.good(), "cannot open span chunk file '" << path << "'");
  std::vector<char> data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  HS_REQUIRE_MSG(data.size() >= kSpanChunkMagic.size() &&
                     std::string_view(data.data(), kSpanChunkMagic.size()) ==
                         kSpanChunkMagic,
                 "'" << path << "' is not a span chunk file (bad magic)");
  FieldReader r(std::move(data));
  for (std::size_t i = 0; i < kSpanChunkMagic.size(); ++i) r.u8();

  std::uint64_t loaded = 0;
  while (!r.done()) {
    const auto kind = static_cast<RecordKind>(r.u8());
    switch (kind) {
      case RecordKind::Collective: {
        CollectiveSpan s;
        s.start = r.f64();
        s.end = r.f64();
        s.rank = r.i32();
        s.op = static_cast<CollectiveOp>(r.u8());
        s.algo = r.i32();
        s.ctx = r.i32();
        s.seq = r.u64();
        s.root = r.i32();
        s.bytes = r.u64();
        s.step = r.i64();
        s.phase = static_cast<Phase>(r.u8());
        s.level = r.i32();
        s.closed_form = r.u8() != 0;
        out.restore(s);
        break;
      }
      case RecordKind::Compute: {
        ComputeSpan s;
        s.start = r.f64();
        s.end = r.f64();
        s.rank = r.i32();
        s.flops = r.f64();
        s.step = r.i64();
        s.phase = static_cast<Phase>(r.u8());
        s.level = r.i32();
        out.restore(s);
        break;
      }
      case RecordKind::Step: {
        StepMark s;
        s.time = r.f64();
        s.rank = r.i32();
        s.step = r.i64();
        s.phase = static_cast<Phase>(r.u8());
        out.restore(s);
        break;
      }
      case RecordKind::Wire: {
        WireSpan s;
        s.start = r.f64();
        s.end = r.f64();
        s.src = r.i32();
        s.dst = r.i32();
        s.bytes = r.u64();
        s.ctx = r.i32();
        s.tag = r.i32();
        out.restore(s);
        break;
      }
      case RecordKind::Site: {
        SiteSpan s;
        s.start = r.f64();
        s.end = r.f64();
        s.op = static_cast<CollectiveOp>(r.u8());
        s.ctx = r.i32();
        s.seq = r.u64();
        s.root = r.i32();
        s.wire_bytes = r.u64();
        s.members = r.i32();
        out.restore(s);
        break;
      }
      case RecordKind::Fault: {
        FaultSpan s;
        s.start = r.f64();
        s.end = r.f64();
        s.kind = static_cast<FaultKind>(r.u8());
        s.a = r.i32();
        s.b = r.i32();
        s.factor = r.f64();
        out.restore(s);
        break;
      }
      case RecordKind::Task: {
        TaskSpan s;
        s.start = r.f64();
        s.end = r.f64();
        s.rank = r.i32();
        s.kind = static_cast<TaskSpanKind>(r.u8());
        s.step = r.i64();
        s.phase = static_cast<Phase>(r.u8());
        s.level = r.i32();
        s.label = intern_label(r.str());
        out.restore(s);
        break;
      }
      default:
        HS_REQUIRE_MSG(false, "unknown span chunk record kind "
                                  << static_cast<int>(kind) << " at byte "
                                  << (r.pos() - 1) << " of '" << path << "'");
    }
    ++loaded;
  }
  return loaded;
}

std::uint64_t convert_span_chunks_to_chrome(const std::string& chunk_path,
                                            std::ostream& out,
                                            std::string_view label) {
  Recorder recorder;
  const std::uint64_t loaded = load_span_chunks(chunk_path, recorder);
  write_chrome_trace(out, recorder, label);
  return loaded;
}

}  // namespace hs::trace
