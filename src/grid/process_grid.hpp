// Two-dimensional logical process grid.
//
// Maps a communicator's p = rows*cols ranks onto an s x t grid in row-major
// order (rank = row*t + col) and exposes the row and column
// sub-communicators every 2-D matrix algorithm needs. `near_square_shape`
// reproduces the usual choice (largest divisor pair closest to square,
// rows <= cols), matching how the paper lays out its experiments.
#pragma once

#include "mpc/collectives.hpp"
#include "mpc/comm.hpp"

namespace hs::grid {

struct GridShape {
  int rows = 1;
  int cols = 1;
  int size() const noexcept { return rows * cols; }
  bool operator==(const GridShape&) const = default;
};

/// Most-square factorization rows*cols == p with rows <= cols.
GridShape near_square_shape(int p);

class ProcessGrid {
 public:
  /// `comm.size()` must equal shape.size().
  ProcessGrid(mpc::Comm comm, GridShape shape);

  const mpc::Comm& comm() const noexcept { return comm_; }
  GridShape shape() const noexcept { return shape_; }
  int rows() const noexcept { return shape_.rows; }
  int cols() const noexcept { return shape_.cols; }

  int my_row() const noexcept { return comm_.rank() / shape_.cols; }
  int my_col() const noexcept { return comm_.rank() % shape_.cols; }
  int rank_at(int row, int col) const {
    HS_REQUIRE(row >= 0 && row < shape_.rows && col >= 0 && col < shape_.cols);
    return row * shape_.cols + col;
  }

  /// Communicator over this process's grid row (ranks ordered by column).
  const mpc::Comm& row_comm() const noexcept { return row_comm_; }
  /// Communicator over this process's grid column (ranks ordered by row).
  const mpc::Comm& col_comm() const noexcept { return col_comm_; }

 private:
  mpc::Comm comm_;
  GridShape shape_;
  mpc::Comm row_comm_;
  mpc::Comm col_comm_;
};

}  // namespace hs::grid
