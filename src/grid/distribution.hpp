// Data distributions of a global matrix over a 2-D process grid.
//
// BlockDistribution is the paper's block-checkerboard layout: process (r,c)
// of an s x t grid owns the contiguous rows [r*m/s, (r+1)*m/s) and columns
// [c*n/t, (c+1)*n/t). Non-divisible extents are handled by giving the first
// (m mod s) rows of processes one extra row (ditto columns).
//
// BlockCyclicDistribution is the ScaLAPACK-style layout the paper lists as
// future work: blocks of nb rows/columns are dealt round-robin to grid rows
// and columns. Provided for the block-cyclic HSUMMA extension.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "la/generate.hpp"
#include "la/matrix.hpp"

namespace hs::grid {

using la::index_t;

/// One dimension of a block distribution: `extent` items over `parts`
/// owners.
class BlockDim {
 public:
  BlockDim(index_t extent, int parts) : extent_(extent), parts_(parts) {
    HS_REQUIRE(extent >= 0 && parts >= 1);
  }

  index_t extent() const noexcept { return extent_; }
  int parts() const noexcept { return parts_; }

  index_t local_size(int part) const {
    HS_REQUIRE(part >= 0 && part < parts_);
    const index_t base = extent_ / parts_;
    const index_t remainder = extent_ % parts_;
    return base + (part < remainder ? 1 : 0);
  }

  index_t offset(int part) const {
    HS_REQUIRE(part >= 0 && part <= parts_);
    const index_t base = extent_ / parts_;
    const index_t remainder = extent_ % parts_;
    const index_t r = std::min<index_t>(part, remainder);
    return static_cast<index_t>(part) * base + r;
  }

  /// Which part owns global index g.
  int owner(index_t g) const {
    HS_REQUIRE(g >= 0 && g < extent_);
    // Inverse of offset(); binary-search-free closed form.
    const index_t base = extent_ / parts_;
    const index_t remainder = extent_ % parts_;
    const index_t big = base + 1;
    if (base == 0) return static_cast<int>(g);  // degenerate: extent < parts
    if (g < remainder * big) return static_cast<int>(g / big);
    return static_cast<int>(remainder + (g - remainder * big) / base);
  }

 private:
  index_t extent_;
  int parts_;
};

/// Block-checkerboard distribution of an m x n matrix over an s x t grid.
class BlockDistribution {
 public:
  BlockDistribution(index_t m, index_t n, int grid_rows, int grid_cols)
      : rows_(m, grid_rows), cols_(n, grid_cols) {}

  index_t global_rows() const noexcept { return rows_.extent(); }
  index_t global_cols() const noexcept { return cols_.extent(); }

  index_t local_rows(int grid_row) const { return rows_.local_size(grid_row); }
  index_t local_cols(int grid_col) const { return cols_.local_size(grid_col); }
  index_t row_offset(int grid_row) const { return rows_.offset(grid_row); }
  index_t col_offset(int grid_col) const { return cols_.offset(grid_col); }

  int row_owner(index_t global_row) const { return rows_.owner(global_row); }
  int col_owner(index_t global_col) const { return cols_.owner(global_col); }

  /// Allocate-and-fill helper: the local block of (grid_row, grid_col)
  /// evaluated from a global element generator.
  la::Matrix materialize_local(int grid_row, int grid_col,
                               const la::ElementFn& fn) const;

 private:
  BlockDim rows_;
  BlockDim cols_;
};

/// ScaLAPACK-style 2-D block-cyclic distribution with block size (mb, nb).
class BlockCyclicDistribution {
 public:
  BlockCyclicDistribution(index_t m, index_t n, index_t mb, index_t nb,
                          int grid_rows, int grid_cols)
      : m_(m), n_(n), mb_(mb), nb_(nb), s_(grid_rows), t_(grid_cols) {
    HS_REQUIRE(m >= 0 && n >= 0);
    HS_REQUIRE(mb >= 1 && nb >= 1);
    HS_REQUIRE(grid_rows >= 1 && grid_cols >= 1);
  }

  index_t global_rows() const noexcept { return m_; }
  index_t global_cols() const noexcept { return n_; }
  index_t row_block() const noexcept { return mb_; }
  index_t col_block() const noexcept { return nb_; }

  /// Number of local rows/cols stored by a given grid row/col (ScaLAPACK
  /// numroc semantics).
  index_t local_rows(int grid_row) const { return numroc(m_, mb_, grid_row, s_); }
  index_t local_cols(int grid_col) const { return numroc(n_, nb_, grid_col, t_); }

  int row_owner(index_t global_row) const {
    HS_REQUIRE(global_row >= 0 && global_row < m_);
    return static_cast<int>((global_row / mb_) % s_);
  }
  int col_owner(index_t global_col) const {
    HS_REQUIRE(global_col >= 0 && global_col < n_);
    return static_cast<int>((global_col / nb_) % t_);
  }

  /// Global row index of local row `l` on grid row `grid_row`.
  index_t global_row(int grid_row, index_t l) const {
    return to_global(l, mb_, grid_row, s_);
  }
  index_t global_col(int grid_col, index_t l) const {
    return to_global(l, nb_, grid_col, t_);
  }

  /// Local row index of global row g (must be owned by grid_row).
  index_t local_row(int grid_row, index_t g) const {
    HS_REQUIRE(row_owner(g) == grid_row);
    return to_local(g, mb_, s_);
  }
  index_t local_col(int grid_col, index_t g) const {
    HS_REQUIRE(col_owner(g) == grid_col);
    return to_local(g, nb_, t_);
  }

  la::Matrix materialize_local(int grid_row, int grid_col,
                               const la::ElementFn& fn) const;

 private:
  static index_t numroc(index_t extent, index_t block, int part, int parts);
  static index_t to_global(index_t local, index_t block, int part, int parts);
  static index_t to_local(index_t global, index_t block, int parts);

  index_t m_, n_, mb_, nb_;
  int s_, t_;
};

}  // namespace hs::grid
