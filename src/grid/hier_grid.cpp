#include "grid/hier_grid.hpp"

#include <algorithm>
#include <cmath>

namespace hs::grid {

GridShape group_arrangement(GridShape grid, int groups) {
  if (groups < 1 || groups > grid.size()) return {0, 0};
  // Prefer the I x J split whose per-group sub-grid is closest to square
  // (so groups "look like" the grid, as in the paper's examples).
  GridShape best{0, 0};
  double best_score = -1.0;
  for (int i = 1; i <= groups; ++i) {
    if (groups % i != 0) continue;
    const int j = groups / i;
    if (grid.rows % i != 0 || grid.cols % j != 0) continue;
    const double sub_rows = grid.rows / i;
    const double sub_cols = grid.cols / j;
    const double score = sub_rows < sub_cols ? sub_rows / sub_cols
                                             : sub_cols / sub_rows;
    if (score > best_score) {
      best_score = score;
      best = {i, j};
    }
  }
  return best;
}

std::vector<int> valid_group_counts(GridShape grid) {
  // g is arrangeable exactly when g = i * j with i | rows and j | cols, so
  // enumerate divisor pairs instead of testing every g in [1, p] (the naive
  // scan is O(p^2) and p reaches 2^20 on the exascale preset).
  std::vector<int> row_divs, col_divs;
  for (int i = 1; i <= grid.rows; ++i)
    if (grid.rows % i == 0) row_divs.push_back(i);
  for (int j = 1; j <= grid.cols; ++j)
    if (grid.cols % j == 0) col_divs.push_back(j);
  std::vector<int> counts;
  counts.reserve(row_divs.size() * col_divs.size());
  for (const int i : row_divs)
    for (const int j : col_divs) counts.push_back(i * j);
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

HierGrid::HierGrid(mpc::Comm comm, GridShape grid_shape,
                   GridShape groups_shape)
    : flat_(comm, grid_shape), groups_(groups_shape) {
  HS_REQUIRE_MSG(groups_.rows >= 1 && groups_.cols >= 1 &&
                     grid_shape.rows % groups_.rows == 0 &&
                     grid_shape.cols % groups_.cols == 0,
                 "group arrangement " << groups_.rows << "x" << groups_.cols
                                      << " does not divide grid "
                                      << grid_shape.rows << "x"
                                      << grid_shape.cols);
  const GridShape local = local_shape();
  const int gx = group_row();
  const int gy = group_col();
  const int li = local_row();
  const int lj = local_col();

  std::vector<int> members;

  // P(x,*)(i,j): same group row and local position, ordered by group col.
  members.reserve(static_cast<std::size_t>(groups_.cols));
  for (int z = 0; z < groups_.cols; ++z)
    members.push_back(
        flat_.rank_at(gx * local.rows + li, z * local.cols + lj));
  group_row_comm_ = comm.sub(members);

  // P(*,y)(i,j): same group col and local position, ordered by group row.
  members.clear();
  members.reserve(static_cast<std::size_t>(groups_.rows));
  for (int x = 0; x < groups_.rows; ++x)
    members.push_back(
        flat_.rank_at(x * local.rows + li, gy * local.cols + lj));
  group_col_comm_ = comm.sub(members);

  // P(x,y)(i,*): my row inside my group, ordered by local column.
  members.clear();
  members.reserve(static_cast<std::size_t>(local.cols));
  for (int jj = 0; jj < local.cols; ++jj)
    members.push_back(
        flat_.rank_at(gx * local.rows + li, gy * local.cols + jj));
  row_comm_ = comm.sub(members);

  // P(x,y)(*,j): my column inside my group, ordered by local row.
  members.clear();
  members.reserve(static_cast<std::size_t>(local.rows));
  for (int ii = 0; ii < local.rows; ++ii)
    members.push_back(
        flat_.rank_at(gx * local.rows + ii, gy * local.cols + lj));
  col_comm_ = comm.sub(members);
}

}  // namespace hs::grid
