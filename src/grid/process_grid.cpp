#include "grid/process_grid.hpp"

namespace hs::grid {

GridShape near_square_shape(int p) {
  HS_REQUIRE(p >= 1);
  int best = 1;
  for (int d = 1; d * d <= p; ++d)
    if (p % d == 0) best = d;
  return {best, p / best};
}

ProcessGrid::ProcessGrid(mpc::Comm comm, GridShape shape)
    : comm_(comm), shape_(shape) {
  HS_REQUIRE_MSG(comm.size() == shape.size(),
                 "grid shape " << shape.rows << "x" << shape.cols
                               << " does not match communicator size "
                               << comm.size());
  // Membership lists are built arithmetically (not by filtering all p
  // ranks): at 16384 ranks the difference is O(p * (s + t)) vs O(p^2)
  // setup work.
  const int row = my_row();
  const int col = my_col();
  std::vector<int> members;
  members.reserve(static_cast<std::size_t>(shape_.cols));
  for (int c = 0; c < shape_.cols; ++c) members.push_back(rank_at(row, c));
  row_comm_ = comm_.sub(members);

  members.clear();
  members.reserve(static_cast<std::size_t>(shape_.rows));
  for (int r = 0; r < shape_.rows; ++r) members.push_back(rank_at(r, col));
  col_comm_ = comm_.sub(members);
}

}  // namespace hs::grid
