// Two-level hierarchical process grid — the paper's structural contribution.
//
// HSUMMA partitions the s x t grid into an I x J arrangement of rectangular
// groups, each holding an (s/I) x (t/J) sub-grid. This class derives, for
// the calling process P(x,y)(i,j), the four communicators of the paper's
// Algorithm 1:
//
//   group_row_comm — P(x,*)(i,j): my group row, same local position; carries
//                    the *inter-group* horizontal broadcast of A's pivot
//                    column (size J).
//   group_col_comm — P(*,y)(i,j): my group column, same local position;
//                    carries the inter-group vertical broadcast of B's pivot
//                    row (size I).
//   row_comm       — P(x,y)(i,*): my row inside the group (size t/J).
//   col_comm       — P(x,y)(*,j): my column inside the group (size s/I).
//
// With G = 1 or G = p the hierarchy degenerates and HSUMMA over this grid
// is exactly SUMMA, as the paper notes.
#pragma once

#include <vector>

#include "grid/process_grid.hpp"

namespace hs::grid {

/// Factor a total group count G into an I x J arrangement compatible with
/// an s x t grid (I | s, J | t), as close to the grid's aspect ratio as
/// possible. Returns {0,0} if no valid arrangement exists.
GridShape group_arrangement(GridShape grid, int groups);

/// All group counts G for which group_arrangement finds a valid I x J.
std::vector<int> valid_group_counts(GridShape grid);

class HierGrid {
 public:
  /// `grid_shape` = s x t over comm; `groups_shape` = I x J with I | s and
  /// J | t.
  HierGrid(mpc::Comm comm, GridShape grid_shape, GridShape groups_shape);

  const ProcessGrid& flat() const noexcept { return flat_; }
  GridShape groups_shape() const noexcept { return groups_; }
  int groups() const noexcept { return groups_.size(); }

  /// Sub-grid dimensions inside each group.
  GridShape local_shape() const noexcept {
    return {flat_.rows() / groups_.rows, flat_.cols() / groups_.cols};
  }

  /// My group coordinates (x, y) and local coordinates (i, j).
  int group_row() const noexcept { return flat_.my_row() / local_shape().rows; }
  int group_col() const noexcept { return flat_.my_col() / local_shape().cols; }
  int local_row() const noexcept { return flat_.my_row() % local_shape().rows; }
  int local_col() const noexcept { return flat_.my_col() % local_shape().cols; }

  const mpc::Comm& group_row_comm() const noexcept { return group_row_comm_; }
  const mpc::Comm& group_col_comm() const noexcept { return group_col_comm_; }
  const mpc::Comm& row_comm() const noexcept { return row_comm_; }
  const mpc::Comm& col_comm() const noexcept { return col_comm_; }

 private:
  ProcessGrid flat_;
  GridShape groups_;
  mpc::Comm group_row_comm_;
  mpc::Comm group_col_comm_;
  mpc::Comm row_comm_;
  mpc::Comm col_comm_;
};

}  // namespace hs::grid
