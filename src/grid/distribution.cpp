#include "grid/distribution.hpp"

#include "la/generate.hpp"

namespace hs::grid {

la::Matrix BlockDistribution::materialize_local(int grid_row, int grid_col,
                                                const la::ElementFn& fn) const {
  la::Matrix local(local_rows(grid_row), local_cols(grid_col));
  la::fill_from(local.view(), fn, row_offset(grid_row), col_offset(grid_col));
  return local;
}

la::index_t BlockCyclicDistribution::numroc(index_t extent, index_t block,
                                            int part, int parts) {
  // Number of items of a `block`-cyclic dealing of `extent` items over
  // `parts` owners that land on owner `part` (ScaLAPACK NUMROC).
  const index_t full_cycles = extent / (block * parts);
  index_t count = full_cycles * block;
  const index_t leftover = extent - full_cycles * block * parts;
  const index_t my_start = static_cast<index_t>(part) * block;
  if (leftover > my_start)
    count += std::min<index_t>(block, leftover - my_start);
  return count;
}

la::index_t BlockCyclicDistribution::to_global(index_t local, index_t block,
                                               int part, int parts) {
  const index_t cycle = local / block;
  const index_t within = local % block;
  return (cycle * parts + part) * block + within;
}

la::index_t BlockCyclicDistribution::to_local(index_t global, index_t block,
                                              int parts) {
  const index_t cycle = global / (block * parts);
  const index_t within = global % block;
  return cycle * block + within;
}

la::Matrix BlockCyclicDistribution::materialize_local(
    int grid_row, int grid_col, const la::ElementFn& fn) const {
  la::Matrix local(local_rows(grid_row), local_cols(grid_col));
  for (index_t i = 0; i < local.rows(); ++i) {
    const index_t gi = global_row(grid_row, i);
    for (index_t j = 0; j < local.cols(); ++j)
      local(i, j) = fn(gi, global_col(grid_col, j));
  }
  return local;
}

}  // namespace hs::grid
