#include "store/fingerprint.hpp"

#include <cstdio>

#include "core/kernel_registry.hpp"
#include "core/runner.hpp"

namespace hs::store {

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t hash = 14695981039346656037ull ^ seed;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string simulator_fingerprint() {
  std::uint64_t hash = fnv1a64(kSimulatorSalt);
  for (const core::KernelDescriptor& kernel : core::all_kernels())
    hash = fnv1a64(kernel.name, hash);
  hash = fnv1a64(std::to_string(sizeof(core::RunResult)), hash);
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

}  // namespace hs::store
