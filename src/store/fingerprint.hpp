// Simulator fingerprint: the version salt of the persistent result store.
//
// A cached RunResult is only reusable while the simulator that produced it
// still computes the same physics. The fingerprint condenses "the same
// physics" into one short stable token — a hash of a manually bumped salt,
// the registered kernel set, and the RunResult memory layout — and the
// on-disk store folds it into its namespace (store_root/<fingerprint>/...),
// so a simulator change never *corrupts* old results: it simply makes them
// invisible, and the stale namespace ages out under the byte budget.
//
// Bump kSimulatorSalt whenever a change alters simulated results without
// changing any cache_key byte (engine scheduling order, collective cost
// formulas, kernel math). Key-visible changes (new SimJob fields) need no
// bump: the keys themselves diverge.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hs::store {

/// The manual component of the fingerprint. Format: "<name>-v<N>".
inline constexpr std::string_view kSimulatorSalt = "hsumma-sim-v1";

/// FNV-1a 64-bit, the repo's stable string hash (also used for content
/// addressing in the result store).
std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed = 0);

/// 16 lowercase hex digits identifying the simulator build: hash of
/// kSimulatorSalt, every registered kernel name (in Algorithm order), and
/// sizeof(core::RunResult). Deterministic across runs of the same build.
std::string simulator_fingerprint();

}  // namespace hs::store
