// Content-addressed on-disk result store: the durable tier of the sweep
// result cache.
//
// The in-memory cache (exec::ParallelExecutor) dies with the process; this
// store keys completed core::RunResults by the same canonical
// SimJob::cache_key() — hexfloat specs make keys byte-stable across runs —
// and persists them under a directory any number of processes (benches,
// the tuner, the hsummad job server) can share:
//
//   <root>/<fingerprint>/objects/<hh>/<hash16>.json   one result per file
//   <root>/<fingerprint>/index.json                   LRU clock index
//
// where <hash16> is the FNV-1a-64 of the cache key (hex) and <hh> its
// first two digits (fan-out). Each object file embeds the full cache key
// and is verified on load, so a 64-bit hash collision degrades to a miss,
// never to a wrong result. Publishes are atomic: objects are written to a
// temp file in the same directory and renamed into place, so a concurrent
// reader (or a crashed writer) can never observe a torn entry.
//
// <fingerprint> is the simulator fingerprint (store/fingerprint.hpp):
// results from a simulator whose physics changed live in a different
// namespace and are simply never consulted — invalidation by invisibility.
//
// The index holds a monotonic access clock per entry; when a byte budget
// is set, publishing evicts least-recently-used objects (ties broken by
// hash for determinism) until the namespace fits. The index is advisory:
// if it is missing or stale the store rebuilds it by scanning the objects
// directory, so losing an index race between two processes costs accuracy
// of the LRU order, never correctness.
//
// All methods are thread-safe; one store instance may be shared by every
// executor worker and server connection in a process.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <map>

#include "core/runner.hpp"
#include "trace/metrics.hpp"

namespace hs::store {

struct StoreOptions {
  /// Store root directory; created (with parents) if absent.
  std::string root;
  /// Byte budget for this namespace's object files; 0 = unbounded. The
  /// budget is enforced on publish: save() evicts LRU entries until the
  /// namespace (including the new entry) fits.
  std::uint64_t byte_budget = 0;
  /// Namespace override; empty selects simulator_fingerprint(). Tests use
  /// explicit fingerprints to model simulator-version changes.
  std::string fingerprint;
};

/// Monotonic store counters plus the current footprint.
struct StoreStats {
  std::uint64_t hits = 0;         // load() served a result
  std::uint64_t misses = 0;       // load() found nothing usable
  std::uint64_t writes = 0;       // save() published an object
  std::uint64_t evictions = 0;    // objects removed by the byte budget
  std::uint64_t bad_entries = 0;  // corrupt/mismatched objects dropped
  std::uint64_t bytes = 0;        // current namespace footprint
  std::uint64_t entries = 0;      // current object count
};

class ResultStore {
 public:
  explicit ResultStore(StoreOptions options);
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;
  /// Flushes the LRU index.
  ~ResultStore();

  /// Look up `cache_key` (must be non-empty). A hit bumps the entry's LRU
  /// clock; corrupt or key-mismatched objects are dropped and counted as
  /// bad_entries + a miss.
  std::optional<core::RunResult> load(const std::string& cache_key);

  /// Publish `result` under `cache_key` (must be non-empty): atomic
  /// write-temp-then-rename, then LRU eviction down to the byte budget.
  /// Re-publishing an existing key overwrites it (results are pure
  /// functions of the key, so the bytes are identical anyway).
  void save(const std::string& cache_key, const core::RunResult& result);

  StoreStats stats() const;

  /// Dump counters + footprint under the store.* namespace.
  void collect_metrics(trace::MetricsRegistry& metrics) const;

  /// Persist the LRU index now (also done on destruction and after every
  /// save). Cheap: one small JSON file, atomically renamed.
  void flush();

  const std::string& fingerprint() const noexcept { return fingerprint_; }
  /// <root>/<fingerprint>
  const std::string& namespace_dir() const noexcept { return namespace_; }

  /// The 16-hex-digit object name for a cache key.
  static std::string object_name(const std::string& cache_key);

 private:
  struct Entry {
    std::uint64_t bytes = 0;
    std::uint64_t last_used = 0;
  };

  std::string object_path(const std::string& name) const;
  void load_index_locked();
  void write_index_locked();
  void evict_to_budget_locked();
  void drop_entry_locked(const std::string& name, bool count_eviction);

  mutable std::mutex mutex_;
  std::string namespace_;
  std::string fingerprint_;
  std::uint64_t byte_budget_ = 0;
  std::uint64_t clock_ = 0;
  std::uint64_t bytes_total_ = 0;
  std::map<std::string, Entry> entries_;  // object name -> entry
  StoreStats stats_;
};

}  // namespace hs::store
