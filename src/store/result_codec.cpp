#include "store/result_codec.hpp"

#include <cstdlib>

#include "net/model.hpp"

namespace hs::store {

namespace {

JsonValue hex_double(double value) {
  return {net::describe_double(value)};
}

JsonValue dec_u64(std::uint64_t value) {
  return {std::to_string(value)};
}

bool read_double(const JsonValue& object, const std::string& key, double* out,
                 std::string* error) {
  if (!object.has(key) || !object.at(key).is_string()) {
    if (error != nullptr) *error = "missing hexfloat field '" + key + "'";
    return false;
  }
  const std::string& text = object.at(key).string();
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || text.empty()) {
    if (error != nullptr) *error = "malformed hexfloat in '" + key + "'";
    return false;
  }
  *out = parsed;
  return true;
}

bool read_u64(const JsonValue& object, const std::string& key,
              std::uint64_t* out, std::string* error) {
  if (!object.has(key) || !object.at(key).is_string()) {
    if (error != nullptr) *error = "missing counter field '" + key + "'";
    return false;
  }
  const std::string& text = object.at(key).string();
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || text.empty()) {
    if (error != nullptr) *error = "malformed counter in '" + key + "'";
    return false;
  }
  *out = parsed;
  return true;
}

}  // namespace

JsonValue run_result_to_json(const core::RunResult& result) {
  JsonObject timing;
  timing["total_time"] = hex_double(result.timing.total_time);
  timing["max_comm_time"] = hex_double(result.timing.max_comm_time);
  timing["max_comp_time"] = hex_double(result.timing.max_comp_time);
  timing["mean_comm_time"] = hex_double(result.timing.mean_comm_time);
  timing["mean_comp_time"] = hex_double(result.timing.mean_comp_time);
  timing["max_outer_comm_time"] = hex_double(result.timing.max_outer_comm_time);
  timing["max_inner_comm_time"] = hex_double(result.timing.max_inner_comm_time);
  JsonArray levels;
  levels.reserve(result.timing.max_level_comm_time.size());
  for (const double level : result.timing.max_level_comm_time)
    levels.push_back(hex_double(level));
  timing["max_level_comm_time"] = {std::move(levels)};
  timing["total_flops"] = dec_u64(result.timing.total_flops);

  JsonObject object;
  object["timing"] = {std::move(timing)};
  object["max_error"] = hex_double(result.max_error);
  object["messages"] = dec_u64(result.messages);
  object["wire_bytes"] = dec_u64(result.wire_bytes);
  object["fault_drops"] = dec_u64(result.fault_drops);
  object["fault_retries"] = dec_u64(result.fault_retries);
  object["fault_timeouts"] = dec_u64(result.fault_timeouts);
  return {std::move(object)};
}

std::optional<core::RunResult> run_result_from_json(const JsonValue& json,
                                                    std::string* error) {
  if (!json.is_object() || !json.has("timing") ||
      !json.at("timing").is_object()) {
    if (error != nullptr) *error = "result is not an object with 'timing'";
    return std::nullopt;
  }
  core::RunResult result;
  const JsonValue& timing = json.at("timing");
  if (!read_double(timing, "total_time", &result.timing.total_time, error) ||
      !read_double(timing, "max_comm_time", &result.timing.max_comm_time,
                   error) ||
      !read_double(timing, "max_comp_time", &result.timing.max_comp_time,
                   error) ||
      !read_double(timing, "mean_comm_time", &result.timing.mean_comm_time,
                   error) ||
      !read_double(timing, "mean_comp_time", &result.timing.mean_comp_time,
                   error) ||
      !read_double(timing, "max_outer_comm_time",
                   &result.timing.max_outer_comm_time, error) ||
      !read_double(timing, "max_inner_comm_time",
                   &result.timing.max_inner_comm_time, error) ||
      !read_u64(timing, "total_flops", &result.timing.total_flops, error))
    return std::nullopt;
  if (!timing.has("max_level_comm_time") ||
      !timing.at("max_level_comm_time").is_array()) {
    if (error != nullptr) *error = "missing max_level_comm_time array";
    return std::nullopt;
  }
  for (const JsonValue& level : timing.at("max_level_comm_time").array()) {
    if (!level.is_string()) {
      if (error != nullptr) *error = "malformed max_level_comm_time entry";
      return std::nullopt;
    }
    char* end = nullptr;
    const std::string& text = level.string();
    const double parsed = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || text.empty()) {
      if (error != nullptr) *error = "malformed max_level_comm_time entry";
      return std::nullopt;
    }
    result.timing.max_level_comm_time.push_back(parsed);
  }
  if (!read_double(json, "max_error", &result.max_error, error) ||
      !read_u64(json, "messages", &result.messages, error) ||
      !read_u64(json, "wire_bytes", &result.wire_bytes, error) ||
      !read_u64(json, "fault_drops", &result.fault_drops, error) ||
      !read_u64(json, "fault_retries", &result.fault_retries, error) ||
      !read_u64(json, "fault_timeouts", &result.fault_timeouts, error))
    return std::nullopt;
  return result;
}

}  // namespace hs::store
