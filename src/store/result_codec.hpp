// Bit-exact JSON codec for core::RunResult.
//
// The on-disk result store and the serve protocol both ship RunResults as
// JSON, and both promise byte-identical downstream output (CSV cells,
// best-G picks) whether a result came from an engine, the in-memory cache,
// the disk store, or another client's run. That only holds if the codec is
// *exact*: every double is rendered as a hexfloat string (strtod parses %a
// output to the identical bit pattern) and every 64-bit counter as a
// decimal string (a JSON number would round through double above 2^53).
#pragma once

#include <optional>
#include <string>

#include "common/json.hpp"
#include "core/runner.hpp"

namespace hs::store {

/// RunResult -> canonical JSON object. write_json of equal results is
/// byte-identical (sorted keys, hexfloat doubles).
JsonValue run_result_to_json(const core::RunResult& result);

/// Inverse of run_result_to_json. nullopt on malformed input; `error`
/// (optional) receives a diagnostic.
std::optional<core::RunResult> run_result_from_json(const JsonValue& json,
                                                    std::string* error = nullptr);

}  // namespace hs::store
