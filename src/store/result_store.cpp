#include "store/result_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "store/fingerprint.hpp"
#include "store/result_codec.hpp"

namespace fs = std::filesystem;

namespace hs::store {

namespace {

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return buffer.str();
}

/// Atomic publish: write next to the target, then rename over it. rename(2)
/// within one directory is atomic on POSIX, so readers see either the old
/// object or the complete new one, never a prefix.
bool write_file_atomic(const fs::path& path, const std::string& bytes) {
  // The pid keeps two processes publishing the same object from clobbering
  // each other's temp file; the final rename still lets last-write win.
  const fs::path temp =
      path.string() + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out.good()) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      std::error_code ignored;
      fs::remove(temp, ignored);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(temp, path, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(temp, ignored);
    return false;
  }
  return true;
}

}  // namespace

ResultStore::ResultStore(StoreOptions options)
    : fingerprint_(options.fingerprint.empty() ? simulator_fingerprint()
                                               : options.fingerprint),
      byte_budget_(options.byte_budget) {
  HS_REQUIRE_MSG(!options.root.empty(), "ResultStore needs a root directory");
  namespace_ = (fs::path(options.root) / fingerprint_).string();
  std::error_code ec;
  fs::create_directories(fs::path(namespace_) / "objects", ec);
  HS_REQUIRE_MSG(!ec, "cannot create store directory " << namespace_ << ": "
                                                       << ec.message());
  std::lock_guard lock(mutex_);
  load_index_locked();
}

ResultStore::~ResultStore() { flush(); }

std::string ResultStore::object_name(const std::string& cache_key) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(fnv1a64(cache_key)));
  return buffer;
}

std::string ResultStore::object_path(const std::string& name) const {
  return (fs::path(namespace_) / "objects" / name.substr(0, 2) /
          (name + ".json"))
      .string();
}

void ResultStore::load_index_locked() {
  // The object scan is the source of truth for existence and size; the
  // index contributes only the LRU clocks. A missing or corrupt index
  // therefore costs recency information, never entries.
  std::map<std::string, std::uint64_t> clocks;
  if (const auto text = read_file(fs::path(namespace_) / "index.json")) {
    const JsonValue index = parse_json(*text);
    if (index.is_object() && index.has("clock") &&
        index.at("clock").is_string())
      clock_ = std::strtoull(index.at("clock").string().c_str(), nullptr, 10);
    if (index.is_object() && index.has("entries") &&
        index.at("entries").is_object())
      for (const auto& [name, used] : index.at("entries").object())
        if (used.is_string())
          clocks[name] =
              std::strtoull(used.string().c_str(), nullptr, 10);
  }
  entries_.clear();
  bytes_total_ = 0;
  std::error_code ec;
  for (const auto& shard :
       fs::directory_iterator(fs::path(namespace_) / "objects", ec)) {
    if (!shard.is_directory()) continue;
    for (const auto& object : fs::directory_iterator(shard.path(), ec)) {
      const fs::path& path = object.path();
      if (path.extension() != ".json") continue;  // skips orphan temp files
      Entry entry;
      entry.bytes = static_cast<std::uint64_t>(object.file_size(ec));
      if (ec) continue;
      const std::string name = path.stem().string();
      if (const auto used = clocks.find(name); used != clocks.end())
        entry.last_used = used->second;
      bytes_total_ += entry.bytes;
      entries_.emplace(name, entry);
    }
  }
  stats_.bytes = bytes_total_;
  stats_.entries = entries_.size();
}

void ResultStore::write_index_locked() {
  JsonObject clocks;
  for (const auto& [name, entry] : entries_)
    clocks[name] = {std::to_string(entry.last_used)};
  JsonObject index;
  index["clock"] = {std::to_string(clock_)};
  index["entries"] = {std::move(clocks)};
  write_file_atomic(fs::path(namespace_) / "index.json",
                    write_json(JsonValue{std::move(index)}));
}

void ResultStore::drop_entry_locked(const std::string& name,
                                    bool count_eviction) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return;
  // `name` may alias the map key itself (evict_to_budget_locked passes
  // victim->first), so build the path before erase frees that string.
  const std::string path = object_path(name);
  bytes_total_ -= std::min(bytes_total_, it->second.bytes);
  entries_.erase(it);
  std::error_code ignored;
  fs::remove(path, ignored);
  if (count_eviction) ++stats_.evictions;
  stats_.bytes = bytes_total_;
  stats_.entries = entries_.size();
}

void ResultStore::evict_to_budget_locked() {
  if (byte_budget_ == 0) return;
  while (bytes_total_ > byte_budget_ && !entries_.empty()) {
    // Least-recently-used; ties (e.g. a fresh scan where every clock is 0)
    // break on the object name so eviction order is deterministic.
    auto victim = entries_.begin();
    for (auto it = std::next(entries_.begin()); it != entries_.end(); ++it)
      if (it->second.last_used < victim->second.last_used) victim = it;
    drop_entry_locked(victim->first, /*count_eviction=*/true);
  }
}

std::optional<core::RunResult> ResultStore::load(const std::string& cache_key) {
  HS_REQUIRE_MSG(!cache_key.empty(), "ResultStore::load of an empty key");
  const std::string name = object_name(cache_key);
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  const auto text = read_file(object_path(name));
  if (!text.has_value()) {
    // Indexed but unreadable: another process evicted it, or the file is
    // gone. Drop the entry and miss.
    drop_entry_locked(name, /*count_eviction=*/false);
    ++stats_.misses;
    return std::nullopt;
  }
  const JsonValue object = parse_json(*text);
  std::optional<core::RunResult> result;
  if (object.is_object() && object.has("key") &&
      object.at("key").is_string() &&
      object.at("key").string() == cache_key && object.has("result"))
    result = run_result_from_json(object.at("result"));
  if (!result.has_value()) {
    // Corrupt bytes or a 64-bit hash collision with a different key:
    // either way the object is useless for this key — drop it so the next
    // save can republish cleanly.
    drop_entry_locked(name, /*count_eviction=*/false);
    ++stats_.bad_entries;
    ++stats_.misses;
    return std::nullopt;
  }
  it->second.last_used = ++clock_;
  ++stats_.hits;
  return result;
}

void ResultStore::save(const std::string& cache_key,
                       const core::RunResult& result) {
  HS_REQUIRE_MSG(!cache_key.empty(), "ResultStore::save of an empty key");
  const std::string name = object_name(cache_key);
  JsonObject object;
  object["key"] = {cache_key};
  object["fingerprint"] = {fingerprint_};
  object["result"] = run_result_to_json(result);
  const std::string bytes = write_json(JsonValue{std::move(object)});

  std::lock_guard lock(mutex_);
  const std::string path = object_path(name);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec || !write_file_atomic(path, bytes)) return;  // disk full etc.: the
                                                      // store is a cache,
                                                      // degrade silently
  if (const auto it = entries_.find(name); it != entries_.end())
    bytes_total_ -= std::min(bytes_total_, it->second.bytes);
  Entry entry;
  entry.bytes = bytes.size();
  entry.last_used = ++clock_;
  entries_[name] = entry;
  bytes_total_ += entry.bytes;
  ++stats_.writes;
  evict_to_budget_locked();
  stats_.bytes = bytes_total_;
  stats_.entries = entries_.size();
  write_index_locked();
}

StoreStats ResultStore::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void ResultStore::collect_metrics(trace::MetricsRegistry& metrics) const {
  const StoreStats snapshot = stats();
  metrics.add_counter("store.hits", snapshot.hits);
  metrics.add_counter("store.misses", snapshot.misses);
  metrics.add_counter("store.writes", snapshot.writes);
  metrics.add_counter("store.evictions", snapshot.evictions);
  metrics.add_counter("store.bad_entries", snapshot.bad_entries);
  metrics.set_gauge("store.bytes", static_cast<double>(snapshot.bytes));
  metrics.set_gauge("store.entries", static_cast<double>(snapshot.entries));
}

void ResultStore::flush() {
  std::lock_guard lock(mutex_);
  write_index_locked();
}

}  // namespace hs::store
