#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "serve/job_codec.hpp"
#include "serve/protocol.hpp"
#include "store/fingerprint.hpp"
#include "store/result_codec.hpp"

namespace hs::serve {

namespace {

JsonValue error_message(const std::string& message) {
  JsonObject object;
  object["type"] = {std::string("error")};
  object["message"] = {message};
  return {std::move(object)};
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  HS_REQUIRE_MSG(!options_.socket_path.empty(),
                 "hsummad needs a socket path");
  if (!options_.cache_dir.empty())
    store_ = std::make_shared<store::ResultStore>(store::StoreOptions{
        .root = options_.cache_dir, .byte_budget = options_.store_bytes});
  executor_ = std::make_unique<exec::ParallelExecutor>(exec::ExecutorOptions{
      .jobs = options_.jobs,
      .cache = true,
      .cache_bytes = options_.cache_bytes,
      .store = store_});
  fingerprint_ = store_ != nullptr ? store_->fingerprint()
                                   : store::simulator_fingerprint();
}

Server::~Server() { stop(); }

void Server::start() {
  {
    std::lock_guard lock(mutex_);
    HS_REQUIRE_MSG(!started_, "Server::start called twice");
    started_ = true;
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  HS_REQUIRE_MSG(listen_fd_ >= 0, "socket(AF_UNIX) failed");
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  HS_REQUIRE_MSG(options_.socket_path.size() < sizeof(address.sun_path),
                 "socket path too long for sun_path: "
                     << options_.socket_path);
  std::strncpy(address.sun_path, options_.socket_path.c_str(),
               sizeof(address.sun_path) - 1);
  ::unlink(options_.socket_path.c_str());  // stale socket from a dead server
  HS_REQUIRE_MSG(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                        sizeof(address)) == 0,
                 "cannot bind " << options_.socket_path);
  HS_REQUIRE_MSG(::listen(listen_fd_, 64) == 0,
                 "cannot listen on " << options_.socket_path);
  HS_REQUIRE_MSG(::pipe(stop_pipe_) == 0, "pipe() failed");
  accept_thread_ = std::thread([this] { accept_loop(); });
  HS_LOG_INFO << "hsummad listening on " << options_.socket_path
              << "  jobs=" << executor_->jobs() << "  store="
              << (store_ != nullptr ? store_->namespace_dir()
                                    : std::string("<memory only>"));
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0 || stopping_.load()) return;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;
    }
    std::lock_guard lock(mutex_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    live_fds_.push_back(fd);
    ++clients_served_;
    connections_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void Server::handle_submit(int fd, const JsonValue& message) {
  if (!message.has("jobs") || !message.at("jobs").is_array()) {
    write_frame(fd, write_json(error_message("submit without a jobs array")));
    return;
  }
  const double batch =
      message.has("batch") && message.at("batch").is_number()
          ? message.at("batch").number()
          : 0.0;
  const JsonArray& jobs = message.at("jobs").array();

  // Decode every job first, then submit the valid ones: the executor runs
  // them concurrently while we stream the completed prefix back in order.
  struct Pending {
    std::size_t submission = 0;
    std::string decode_error;
  };
  std::vector<Pending> pending(jobs.size());
  std::size_t decode_failures = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    std::string error;
    std::optional<exec::SimJob> job = sim_job_from_json(jobs[i], &error);
    if (!job.has_value()) {
      pending[i].decode_error = error.empty() ? "undecodable job" : error;
      ++decode_failures;
      continue;
    }
    pending[i].submission = executor_->submit(std::move(*job));
  }
  {
    std::lock_guard lock(mutex_);
    jobs_received_ += jobs.size();
    jobs_failed_ += decode_failures;
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    JsonObject frame;
    frame["type"] = {std::string("result")};
    frame["batch"] = {batch};
    frame["index"] = {static_cast<double>(i)};
    if (!pending[i].decode_error.empty()) {
      frame["error"] = {pending[i].decode_error};
    } else {
      try {
        // Blocks until job i is done; later jobs keep running underneath,
        // so the stream advances as the completed prefix grows.
        frame["result"] =
            store::run_result_to_json(executor_->result(pending[i].submission));
      } catch (const std::exception& e) {
        frame["error"] = {std::string(e.what())};
        std::lock_guard lock(mutex_);
        ++jobs_failed_;
      }
    }
    if (!write_frame(fd, write_json(JsonValue{std::move(frame)}))) return;
  }
  JsonObject done;
  done["type"] = {std::string("batch_done")};
  done["batch"] = {batch};
  done["jobs"] = {static_cast<double>(jobs.size())};
  write_frame(fd, write_json(JsonValue{std::move(done)}));
  std::lock_guard lock(mutex_);
  ++batches_served_;
}

void Server::handle_connection(int fd) {
  std::string payload, error;
  while (read_frame(fd, &payload, &error)) {
    std::string parse_error;
    const JsonValue message = parse_json(payload, &parse_error);
    if (!message.is_object() || !message.has("type") ||
        !message.at("type").is_string()) {
      write_frame(fd, write_json(error_message(
                          parse_error.empty() ? "frame is not a typed object"
                                              : parse_error)));
      break;
    }
    const std::string& type = message.at("type").string();
    if (type == "hello") {
      JsonObject reply;
      reply["type"] = {std::string("hello")};
      reply["version"] = {static_cast<double>(kProtocolVersion)};
      reply["fingerprint"] = {fingerprint_};
      reply["server"] = {std::string("hsummad")};
      write_frame(fd, write_json(JsonValue{std::move(reply)}));
    } else if (type == "submit") {
      handle_submit(fd, message);
    } else if (type == "stats") {
      write_frame(fd, write_json(stats_json()));
    } else if (type == "shutdown") {
      JsonObject reply;
      reply["type"] = {std::string("bye")};
      write_frame(fd, write_json(JsonValue{std::move(reply)}));
      {
        std::lock_guard lock(mutex_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
      break;
    } else {
      write_frame(fd,
                  write_json(error_message("unknown message type '" + type +
                                           "'")));
      break;
    }
  }
  if (!error.empty())
    write_frame(fd, write_json(error_message(error)));
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  std::lock_guard lock(mutex_);
  for (auto it = live_fds_.begin(); it != live_fds_.end(); ++it)
    if (*it == fd) {
      live_fds_.erase(it);
      break;
    }
}

JsonValue Server::stats_json() const {
  trace::MetricsRegistry metrics;
  executor_->collect_metrics(metrics);
  JsonObject counters;
  for (const auto& [name, value] : metrics.counters())
    counters[name] = {static_cast<double>(value)};
  for (const auto& [name, value] : metrics.gauges())
    counters[name] = {value};
  {
    std::lock_guard lock(mutex_);
    counters["serve.clients_served"] = {static_cast<double>(clients_served_)};
    counters["serve.batches_served"] = {static_cast<double>(batches_served_)};
    counters["serve.jobs_received"] = {static_cast<double>(jobs_received_)};
    counters["serve.jobs_failed"] = {static_cast<double>(jobs_failed_)};
  }
  JsonObject reply;
  reply["type"] = {std::string("stats")};
  reply["fingerprint"] = {fingerprint_};
  reply["counters"] = {std::move(counters)};
  return {std::move(reply)};
}

void Server::wait_for_shutdown() {
  std::unique_lock lock(mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void Server::stop() {
  bool was_stopping = stopping_.exchange(true);
  {
    std::lock_guard lock(mutex_);
    if (!started_) return;
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
  if (!was_stopping && stop_pipe_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t wrote = ::write(stop_pipe_[1], &byte, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Unblock every connection thread stuck in read_frame, then join.
  std::vector<std::thread> connections;
  {
    std::lock_guard lock(mutex_);
    for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
    connections.swap(connections_);
  }
  for (std::thread& connection : connections)
    if (connection.joinable()) connection.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  for (int& fd : stop_pipe_)
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
}

}  // namespace hs::serve
