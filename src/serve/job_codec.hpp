// JSON codec for exec::SimJob: the serve protocol's job description.
//
// A wire job is the *declarative* subset of SimJob — everything that is a
// value (platform Hockney parameters, kernel, grid, problem, hierarchy,
// look-ahead, seeds, noise, fault spec), nothing that is a pointer into
// the submitting process (explicit NetworkModel instances, observability
// sinks). That subset is exactly the cacheable subset, which is the point:
// every job a client can express round-trips through JSON into a job whose
// cache_key() is byte-identical on the server, so cross-client dedupe and
// the shared store work on the canonical key alone.
//
// Doubles travel as hexfloat strings (bit-exact; same convention as the
// cache key itself), 64-bit seeds as decimal strings.
#pragma once

#include <optional>
#include <string>

#include "common/json.hpp"
#include "exec/sim_job.hpp"

namespace hs::serve {

/// SimJob -> canonical JSON object. Requires a wire-expressible job:
/// network == nullptr and no recorder/metrics sinks (HS_REQUIRE otherwise).
/// Fields at their defaults are still written — the codec is explicit, not
/// sparse — so two encodings of equal jobs are byte-identical.
JsonValue sim_job_to_json(const exec::SimJob& job);

/// Inverse of sim_job_to_json. nullopt on malformed input; `error`
/// (optional) receives a diagnostic naming the offending field.
std::optional<exec::SimJob> sim_job_from_json(const JsonValue& json,
                                              std::string* error = nullptr);

}  // namespace hs::serve
