// Client side of the persistent sweep service.
//
// A Client owns one AF_UNIX connection to a running hsummad, performs the
// hello handshake on construction (verifying the protocol version and
// learning the server's simulator fingerprint), and exposes the message
// vocabulary as blocking calls. run_batch streams the per-job result
// frames as the server emits them, so a long sweep's early results are
// decoded while later jobs still simulate.
//
// The raw result-frame payloads are optionally surfaced verbatim: the
// serve stress test asserts that concurrent clients submitting the same
// batch receive byte-identical streams, which is the wire-level proof of
// cross-client dedupe + canonical encoding.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/runner.hpp"
#include "exec/sim_job.hpp"

namespace hs::serve {

/// One job's outcome from a batch: either a result or a server-side error
/// (decode failure or simulation failure), never both.
struct JobOutcome {
  core::RunResult result;
  std::string error;
  bool ok() const noexcept { return error.empty(); }
};

class Client {
 public:
  /// Connect to the server socket and handshake. Throws PreconditionError
  /// if the socket cannot be reached or the server speaks a different
  /// protocol version.
  explicit Client(const std::string& socket_path);
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// The server's simulator fingerprint (store namespace), from hello.
  const std::string& fingerprint() const noexcept { return fingerprint_; }

  /// Submit `jobs` as one batch and block until every job's result frame
  /// (and the batch_done frame) arrived. Outcomes are in job order. When
  /// `raw_frames` is non-null it receives the exact payload bytes of each
  /// result frame, in order, for byte-identity assertions.
  std::vector<JobOutcome> run_batch(
      const std::vector<exec::SimJob>& jobs,
      std::vector<std::string>* raw_frames = nullptr);

  /// The server's stats message (counters object under "counters").
  JsonValue stats();

  /// Convenience: one counter out of stats(), or nullopt if absent.
  std::optional<double> counter(const std::string& name);

  /// Ask the server to shut down; returns once the bye frame arrived.
  void shutdown_server();

 private:
  /// Send one message and read one reply frame (which must parse).
  JsonValue roundtrip(const JsonValue& message);

  int fd_ = -1;
  std::string fingerprint_;
  std::uint64_t next_batch_ = 0;
};

}  // namespace hs::serve
