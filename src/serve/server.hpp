// hsummad: the long-lived sweep job server.
//
// One server process owns one exec::ParallelExecutor (the worker pool) and
// optionally one store::ResultStore (the durable tier), and serves any
// number of concurrent clients over an AF_UNIX stream socket speaking the
// frame protocol in serve/protocol.hpp. Every client batch is decoded into
// SimJobs and submitted to the *shared* executor, which is what makes
// dedupe cross-client: two clients requesting the same configuration — at
// the same time or hours apart — trigger at most one engine run between
// them (in-flight coalescing, the memory cache, or the disk store serve
// the rest), and the dedupe is observable in the stats frame's counters
// (exec.engines_run vs serve.jobs_received).
//
// Results stream back per job in submission-index order as the completed
// prefix grows; the executor runs jobs concurrently underneath, so the
// stream is both pipelined and deterministic — equal batches produce
// byte-identical response frames for every client.
//
// Connection handling is one thread per client: the repo's clients are
// sweep tools holding a handful of long-lived connections, not a C10K
// workload, and a blocked read costs nothing while the executor works.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "exec/executor.hpp"

namespace hs::serve {

struct ServerOptions {
  /// AF_UNIX socket path (sun_path limit applies: keep it short). A stale
  /// socket file from a dead server is unlinked on start.
  std::string socket_path;
  /// Executor worker threads; <= 0 selects exec::default_jobs().
  int jobs = 0;
  /// On-disk result store root; empty serves from memory only.
  std::string cache_dir;
  /// In-memory cache byte budget (see ExecutorOptions::cache_bytes).
  std::uint64_t cache_bytes = 64ull << 20;
  /// Disk store byte budget; 0 = unbounded.
  std::uint64_t store_bytes = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  /// Stops if still running.
  ~Server();

  /// Bind + listen + spawn the accept thread. Throws on bind failure.
  void start();

  /// Block until a client sent {"type":"shutdown"} (or stop() was called).
  void wait_for_shutdown();

  /// Tear down: stop accepting, unblock and join every connection thread,
  /// unlink the socket. Idempotent.
  void stop();

  const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }
  exec::ParallelExecutor& executor() noexcept { return *executor_; }

  /// The stats-frame counter object: serve.* counters plus every exec.*
  /// / store.* counter and gauge from the executor.
  JsonValue stats_json() const;

 private:
  void accept_loop();
  void handle_connection(int fd);
  void handle_submit(int fd, const JsonValue& message);

  ServerOptions options_;
  std::shared_ptr<store::ResultStore> store_;
  std::unique_ptr<exec::ParallelExecutor> executor_;
  std::string fingerprint_;

  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool started_ = false;
  std::vector<std::thread> connections_;
  std::vector<int> live_fds_;

  // serve.* counters (monotonic, under mutex_).
  std::uint64_t clients_served_ = 0;
  std::uint64_t batches_served_ = 0;
  std::uint64_t jobs_received_ = 0;
  std::uint64_t jobs_failed_ = 0;
};

}  // namespace hs::serve
