#include "serve/protocol.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace hs::serve {

namespace {

bool write_all(int fd, const char* bytes, std::size_t count) {
  while (count > 0) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE instead of killing
    // the whole server with SIGPIPE. Falls back to write() so the frame
    // functions still work over plain pipes/socketpairs in tests.
    ssize_t wrote = ::send(fd, bytes, count, MSG_NOSIGNAL);
    if (wrote < 0 && errno == ENOTSOCK) wrote = ::write(fd, bytes, count);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes += wrote;
    count -= static_cast<std::size_t>(wrote);
  }
  return true;
}

/// Returns bytes read; short only at EOF.
std::size_t read_all(int fd, char* bytes, std::size_t count) {
  std::size_t total = 0;
  while (total < count) {
    const ssize_t got = ::read(fd, bytes + total, count - total);
    if (got < 0) {
      if (errno == EINTR) continue;
      return total;
    }
    if (got == 0) return total;  // EOF
    total += static_cast<std::size_t>(got);
  }
  return total;
}

}  // namespace

bool write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  char header[8];
  std::memcpy(header, kFrameMagic, 4);
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  header[4] = static_cast<char>(length & 0xFF);
  header[5] = static_cast<char>((length >> 8) & 0xFF);
  header[6] = static_cast<char>((length >> 16) & 0xFF);
  header[7] = static_cast<char>((length >> 24) & 0xFF);
  if (!write_all(fd, header, sizeof header)) return false;
  return write_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::string* payload, std::string* error) {
  if (error != nullptr) error->clear();
  char header[8];
  const std::size_t got = read_all(fd, header, sizeof header);
  if (got == 0) return false;  // clean EOF between frames
  if (got != sizeof header) {
    if (error != nullptr) *error = "torn frame header";
    return false;
  }
  if (std::memcmp(header, kFrameMagic, 4) != 0) {
    if (error != nullptr) *error = "bad frame magic";
    return false;
  }
  const std::uint32_t length =
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[4])) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[5])) << 8) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[6]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[7]))
       << 24);
  if (length > kMaxFrameBytes) {
    if (error != nullptr)
      *error = "frame length " + std::to_string(length) + " exceeds limit";
    return false;
  }
  payload->resize(length);
  if (read_all(fd, payload->data(), length) != length) {
    if (error != nullptr) *error = "torn frame payload";
    return false;
  }
  return true;
}

}  // namespace hs::serve
