#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "common/check.hpp"
#include "serve/job_codec.hpp"
#include "serve/protocol.hpp"
#include "store/result_codec.hpp"

namespace hs::serve {

Client::Client(const std::string& socket_path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  HS_REQUIRE_MSG(fd_ >= 0, "socket(AF_UNIX) failed");
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  HS_REQUIRE_MSG(socket_path.size() < sizeof(address.sun_path),
                 "socket path too long for sun_path: " << socket_path);
  std::strncpy(address.sun_path, socket_path.c_str(),
               sizeof(address.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd_);
    fd_ = -1;
    HS_REQUIRE_MSG(false, "cannot connect to hsummad at " << socket_path
                                                          << " (is it running?)");
  }
  JsonObject hello;
  hello["type"] = {std::string("hello")};
  hello["version"] = {static_cast<double>(kProtocolVersion)};
  const JsonValue reply = roundtrip({std::move(hello)});
  HS_REQUIRE_MSG(reply.has("type") && reply.at("type").is_string() &&
                     reply.at("type").string() == "hello",
                 "handshake failed: server did not answer hello");
  HS_REQUIRE_MSG(
      reply.has("version") && reply.at("version").is_number() &&
          static_cast<std::uint32_t>(reply.at("version").number()) ==
              kProtocolVersion,
      "protocol version mismatch (client speaks " << kProtocolVersion << ")");
  if (reply.has("fingerprint") && reply.at("fingerprint").is_string())
    fingerprint_ = reply.at("fingerprint").string();
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

JsonValue Client::roundtrip(const JsonValue& message) {
  HS_REQUIRE_MSG(write_frame(fd_, write_json(message)),
                 "connection to hsummad lost while writing");
  std::string payload, error;
  HS_REQUIRE_MSG(read_frame(fd_, &payload, &error),
                 "connection to hsummad lost while reading"
                     << (error.empty() ? std::string()
                                       : std::string(": ") + error));
  std::string parse_error;
  JsonValue reply = parse_json(payload, &parse_error);
  HS_REQUIRE_MSG(parse_error.empty(),
                 "undecodable frame from server: " << parse_error);
  return reply;
}

std::vector<JobOutcome> Client::run_batch(
    const std::vector<exec::SimJob>& jobs,
    std::vector<std::string>* raw_frames) {
  const double batch = static_cast<double>(next_batch_++);
  {
    JsonObject submit;
    submit["type"] = {std::string("submit")};
    submit["batch"] = {batch};
    JsonArray encoded;
    encoded.reserve(jobs.size());
    for (const exec::SimJob& job : jobs)
      encoded.push_back(sim_job_to_json(job));
    submit["jobs"] = {std::move(encoded)};
    HS_REQUIRE_MSG(write_frame(fd_, write_json(JsonValue{std::move(submit)})),
                   "connection to hsummad lost while submitting batch");
  }
  std::vector<JobOutcome> outcomes(jobs.size());
  std::size_t received = 0;
  for (;;) {
    std::string payload, error;
    HS_REQUIRE_MSG(read_frame(fd_, &payload, &error),
                   "connection to hsummad lost mid-batch ("
                       << received << "/" << jobs.size() << " results in)"
                       << (error.empty() ? std::string()
                                         : std::string(": ") + error));
    std::string parse_error;
    const JsonValue message = parse_json(payload, &parse_error);
    HS_REQUIRE_MSG(parse_error.empty() && message.has("type") &&
                       message.at("type").is_string(),
                   "undecodable frame from server mid-batch");
    const std::string& type = message.at("type").string();
    if (type == "batch_done") break;
    if (type == "error") {
      HS_REQUIRE_MSG(false, "server error: "
                                << (message.has("message")
                                        ? message.at("message").string()
                                        : std::string("<no message>")));
    }
    HS_REQUIRE_MSG(type == "result",
                   "unexpected '" << type << "' frame inside a batch");
    HS_REQUIRE_MSG(message.has("index") && message.at("index").is_number(),
                   "result frame without an index");
    const std::size_t index =
        static_cast<std::size_t>(message.at("index").number());
    HS_REQUIRE_MSG(index < outcomes.size(),
                   "result index " << index << " out of range");
    if (raw_frames != nullptr) raw_frames->push_back(payload);
    if (message.has("error") && message.at("error").is_string()) {
      outcomes[index].error = message.at("error").string();
    } else {
      HS_REQUIRE_MSG(message.has("result"),
                     "result frame carries neither result nor error");
      std::string decode_error;
      std::optional<core::RunResult> result =
          store::run_result_from_json(message.at("result"), &decode_error);
      HS_REQUIRE_MSG(result.has_value(),
                     "undecodable result payload: " << decode_error);
      outcomes[index].result = std::move(*result);
    }
    ++received;
  }
  HS_REQUIRE_MSG(received == jobs.size(),
                 "batch_done after " << received << " of " << jobs.size()
                                     << " results");
  return outcomes;
}

JsonValue Client::stats() {
  JsonObject request;
  request["type"] = {std::string("stats")};
  JsonValue reply = roundtrip({std::move(request)});
  HS_REQUIRE_MSG(reply.has("type") && reply.at("type").is_string() &&
                     reply.at("type").string() == "stats",
                 "server did not answer stats");
  return reply;
}

std::optional<double> Client::counter(const std::string& name) {
  const JsonValue reply = stats();
  if (!reply.has("counters") || !reply.at("counters").is_object())
    return std::nullopt;
  const JsonValue& counters = reply.at("counters");
  if (!counters.has(name) || !counters.at(name).is_number())
    return std::nullopt;
  return counters.at(name).number();
}

void Client::shutdown_server() {
  JsonObject request;
  request["type"] = {std::string("shutdown")};
  const JsonValue reply = roundtrip({std::move(request)});
  HS_REQUIRE_MSG(reply.has("type") && reply.at("type").is_string() &&
                     reply.at("type").string() == "bye",
                 "server did not acknowledge shutdown");
}

}  // namespace hs::serve
