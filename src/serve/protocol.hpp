// Frame protocol for the persistent sweep service (hsummad).
//
// Transport is a byte stream (the repo uses AF_UNIX SOCK_STREAM sockets);
// each message is one length-prefixed frame:
//
//   offset 0   4 bytes   magic "HSRV"
//   offset 4   4 bytes   payload length N, little-endian u32 (<= 64 MiB)
//   offset 8   N bytes   payload: one JSON document (hs::parse_json /
//                        hs::write_json — the canonical writer, so equal
//                        messages are equal bytes)
//
// Messages are JSON objects dispatched on their "type" field:
//
//   client -> server
//     {"type":"hello","version":1}
//     {"type":"submit","batch":B,"jobs":[<job_codec objects>...]}
//     {"type":"stats"}
//     {"type":"shutdown"}
//   server -> client
//     {"type":"hello","version":1,"fingerprint":"<hex16>"}
//     {"type":"result","batch":B,"index":I,"result":<result_codec object>}
//     {"type":"result","batch":B,"index":I,"error":"..."}     per-job failure
//     {"type":"batch_done","batch":B,"jobs":N}
//     {"type":"stats","counters":{...}}   executor + store + server counters
//     {"type":"bye"}                      shutdown acknowledged
//     {"type":"error","message":"..."}    malformed frame; connection closes
//
// A submit streams one "result" frame per job in *submission index order*
// as the completed prefix grows (deterministic streaming: every client
// asking for the same batch receives byte-identical frames, which the
// serve stress test asserts), then one "batch_done".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hs::serve {

inline constexpr std::uint32_t kProtocolVersion = 1;
inline constexpr char kFrameMagic[4] = {'H', 'S', 'R', 'V'};
/// Upper bound on one frame's payload; a million-point batch of wire jobs
/// fits comfortably, while a corrupt length field cannot OOM the peer.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Write one frame (header + payload) to `fd`, looping over partial
/// writes. Returns false on any write error (EPIPE when the peer hung up).
bool write_frame(int fd, std::string_view payload);

/// Read one frame from `fd` into `payload`, looping over partial reads.
/// Returns false on EOF before a header (clean close), a torn header/
/// payload, bad magic, or an oversized length; `error` (optional) gets a
/// diagnostic for the non-clean cases and stays empty on clean EOF.
bool read_frame(int fd, std::string* payload, std::string* error = nullptr);

}  // namespace hs::serve
