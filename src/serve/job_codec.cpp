#include "serve/job_codec.hpp"

#include <cstdlib>

#include "common/check.hpp"
#include "core/kernel_registry.hpp"
#include "net/model.hpp"

namespace hs::serve {

namespace {

JsonValue hex_double(double value) { return {net::describe_double(value)}; }

JsonValue dec_u64(std::uint64_t value) { return {std::to_string(value)}; }

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

bool read_hex_double(const JsonValue& object, const std::string& key,
                     double* out, std::string* error) {
  if (!object.has(key) || !object.at(key).is_string())
    return fail(error, "job field '" + key + "' missing or not a string");
  const std::string& text = object.at(key).string();
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size())
    return fail(error, "job field '" + key + "' is not a parseable double");
  return true;
}

bool read_u64(const JsonValue& object, const std::string& key,
              std::uint64_t* out, std::string* error) {
  if (!object.has(key) || !object.at(key).is_string())
    return fail(error, "job field '" + key + "' missing or not a string");
  const std::string& text = object.at(key).string();
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size())
    return fail(error, "job field '" + key + "' is not a counter");
  return true;
}

bool read_int(const JsonValue& object, const std::string& key, int* out,
              std::string* error) {
  if (!object.has(key) || !object.at(key).is_number())
    return fail(error, "job field '" + key + "' missing or not a number");
  *out = static_cast<int>(object.at(key).number());
  return true;
}

bool read_index(const JsonValue& object, const std::string& key,
                long long* out, std::string* error) {
  if (!object.has(key) || !object.at(key).is_number())
    return fail(error, "job field '" + key + "' missing or not a number");
  *out = static_cast<long long>(object.at(key).number());
  return true;
}

bool read_bool(const JsonValue& object, const std::string& key, bool* out,
               std::string* error) {
  if (!object.has(key) || !std::holds_alternative<bool>(object.at(key).value))
    return fail(error, "job field '" + key + "' missing or not a bool");
  *out = std::get<bool>(object.at(key).value);
  return true;
}

bool read_string(const JsonValue& object, const std::string& key,
                 std::string* out, std::string* error) {
  if (!object.has(key) || !object.at(key).is_string())
    return fail(error, "job field '" + key + "' missing or not a string");
  *out = object.at(key).string();
  return true;
}

JsonValue int_levels(const std::vector<int>& levels) {
  JsonArray array;
  array.reserve(levels.size());
  for (const int level : levels)
    array.push_back({static_cast<double>(level)});
  return {std::move(array)};
}

bool read_levels(const JsonValue& object, const std::string& key,
                 std::vector<int>* out, std::string* error) {
  if (!object.has(key) || !object.at(key).is_array())
    return fail(error, "job field '" + key + "' missing or not an array");
  for (const JsonValue& level : object.at(key).array()) {
    if (!level.is_number())
      return fail(error, "job field '" + key + "' has a non-number entry");
    out->push_back(static_cast<int>(level.number()));
  }
  return true;
}

}  // namespace

JsonValue sim_job_to_json(const exec::SimJob& job) {
  HS_REQUIRE_MSG(job.network == nullptr,
                 "only platform-described jobs are wire-expressible; this "
                 "job carries an explicit NetworkModel");
  HS_REQUIRE_MSG(job.recorder == nullptr && job.metrics == nullptr,
                 "jobs with observability sinks cannot be serialized");
  JsonObject object;
  object["platform"] = {job.platform.name};
  object["alpha"] = hex_double(job.platform.alpha);
  object["beta"] = hex_double(job.platform.beta);
  object["gamma"] = hex_double(job.gamma_flop);
  object["collective_mode"] = {
      job.collective_mode == mpc::CollectiveMode::PointToPoint
          ? std::string("p2p")
          : std::string("closed")};
  object["machine_bcast"] = {std::string(to_string(job.machine_bcast_algo))};
  object["algorithm"] = {std::string(core::to_string(job.algorithm))};
  object["grid_rows"] = {static_cast<double>(job.grid.rows)};
  object["grid_cols"] = {static_cast<double>(job.grid.cols)};
  object["ranks"] = {static_cast<double>(job.ranks)};
  object["layers"] = {static_cast<double>(job.layers)};
  object["groups"] = {static_cast<double>(job.groups)};
  object["hierarchy"] = {job.hierarchy.to_string()};
  object["row_levels"] = int_levels(job.row_levels);
  object["col_levels"] = int_levels(job.col_levels);
  object["m"] = {static_cast<double>(job.problem.m)};
  object["k"] = {static_cast<double>(job.problem.k)};
  object["n"] = {static_cast<double>(job.problem.n)};
  object["block"] = {static_cast<double>(job.problem.block)};
  object["outer_block"] = {static_cast<double>(job.problem.outer_block)};
  object["mode"] = {job.mode == core::PayloadMode::Real
                        ? std::string("real")
                        : std::string("phantom")};
  object["bcast"] = {job.bcast_algo.has_value()
                         ? std::string(to_string(*job.bcast_algo))
                         : std::string("default")};
  object["overlap"] = {job.overlap};
  object["lookahead"] = {static_cast<double>(job.lookahead)};
  object["verify"] = {job.verify};
  object["seed"] = dec_u64(job.seed);
  JsonArray gammas;
  gammas.reserve(job.rank_gamma.size());
  for (const double g : job.rank_gamma) gammas.push_back(hex_double(g));
  object["rank_gamma"] = {std::move(gammas)};
  object["noise_sigma"] = hex_double(job.noise_sigma);
  object["noise_seed"] = dec_u64(job.noise_seed);
  object["faults"] = {job.faults != nullptr ? job.faults->canonical()
                                            : std::string()};
  return {std::move(object)};
}

std::optional<exec::SimJob> sim_job_from_json(const JsonValue& json,
                                              std::string* error) {
  if (!json.is_object()) {
    fail(error, "job is not a JSON object");
    return std::nullopt;
  }
  exec::SimJob job;
  std::string platform_name, collective, machine_bcast, algorithm, hierarchy,
      mode, bcast, faults;
  long long m = 0, k = 0, n = 0, block = 0, outer_block = 0;
  if (!read_string(json, "platform", &platform_name, error) ||
      !read_hex_double(json, "alpha", &job.platform.alpha, error) ||
      !read_hex_double(json, "beta", &job.platform.beta, error) ||
      !read_hex_double(json, "gamma", &job.gamma_flop, error) ||
      !read_string(json, "collective_mode", &collective, error) ||
      !read_string(json, "machine_bcast", &machine_bcast, error) ||
      !read_string(json, "algorithm", &algorithm, error) ||
      !read_int(json, "grid_rows", &job.grid.rows, error) ||
      !read_int(json, "grid_cols", &job.grid.cols, error) ||
      !read_int(json, "ranks", &job.ranks, error) ||
      !read_int(json, "layers", &job.layers, error) ||
      !read_int(json, "groups", &job.groups, error) ||
      !read_string(json, "hierarchy", &hierarchy, error) ||
      !read_levels(json, "row_levels", &job.row_levels, error) ||
      !read_levels(json, "col_levels", &job.col_levels, error) ||
      !read_index(json, "m", &m, error) ||
      !read_index(json, "k", &k, error) ||
      !read_index(json, "n", &n, error) ||
      !read_index(json, "block", &block, error) ||
      !read_index(json, "outer_block", &outer_block, error) ||
      !read_string(json, "mode", &mode, error) ||
      !read_string(json, "bcast", &bcast, error) ||
      !read_bool(json, "overlap", &job.overlap, error) ||
      !read_int(json, "lookahead", &job.lookahead, error) ||
      !read_bool(json, "verify", &job.verify, error) ||
      !read_u64(json, "seed", &job.seed, error) ||
      !read_hex_double(json, "noise_sigma", &job.noise_sigma, error) ||
      !read_u64(json, "noise_seed", &job.noise_seed, error) ||
      !read_string(json, "faults", &faults, error))
    return std::nullopt;
  job.platform.name = platform_name;
  job.problem.m = m;
  job.problem.k = k;
  job.problem.n = n;
  job.problem.block = block;
  job.problem.outer_block = outer_block;
  if (collective == "p2p") {
    job.collective_mode = mpc::CollectiveMode::PointToPoint;
  } else if (collective == "closed") {
    job.collective_mode = mpc::CollectiveMode::ClosedForm;
  } else {
    fail(error, "unknown collective_mode '" + collective + "'");
    return std::nullopt;
  }
  if (mode == "real") {
    job.mode = core::PayloadMode::Real;
  } else if (mode == "phantom") {
    job.mode = core::PayloadMode::Phantom;
  } else {
    fail(error, "unknown payload mode '" + mode + "'");
    return std::nullopt;
  }
  // Name lookups throw PreconditionError with the full legal list; convert
  // to a soft decode error so one bad job fails, not the server connection.
  try {
    job.machine_bcast_algo = net::bcast_algo_from_string(machine_bcast);
    job.algorithm = core::algorithm_from_string(algorithm);
    job.hierarchy = core::GroupHierarchy::parse(hierarchy);
    if (bcast != "default") job.bcast_algo = net::bcast_algo_from_string(bcast);
    if (!faults.empty())
      job.faults =
          std::make_shared<const fault::FaultPlan>(fault::FaultPlan::parse(faults));
  } catch (const std::exception& e) {
    fail(error, e.what());
    return std::nullopt;
  }
  if (json.has("rank_gamma") && json.at("rank_gamma").is_array()) {
    for (const JsonValue& g : json.at("rank_gamma").array()) {
      if (!g.is_string()) {
        fail(error, "job field 'rank_gamma' has a non-hexfloat entry");
        return std::nullopt;
      }
      char* end = nullptr;
      const std::string& text = g.string();
      const double parsed = std::strtod(text.c_str(), &end);
      if (text.empty() || end != text.c_str() + text.size()) {
        fail(error, "job field 'rank_gamma' has a malformed entry");
        return std::nullopt;
      }
      job.rank_gamma.push_back(parsed);
    }
  } else {
    fail(error, "job field 'rank_gamma' missing or not an array");
    return std::nullopt;
  }
  return job;
}

}  // namespace hs::serve
