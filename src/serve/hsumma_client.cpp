// hsumma-client: thin command-line front end for a running hsummad.
//
//   hsumma-client --socket /tmp/hsummad.sock --example > jobs.json
//   hsumma-client --socket /tmp/hsummad.sock --submit jobs.json --csv out.csv
//   hsumma-client --socket /tmp/hsummad.sock --stats
//   hsumma-client --socket /tmp/hsummad.sock --shutdown
//
// The submit file is a JSON array of job objects in the serve/job_codec
// format (see --example for a template). Results print as one CSV row per
// job, in job order, bit-exact across cold runs, warm-store runs and other
// clients' runs of the same batch.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "serve/client.hpp"
#include "serve/job_codec.hpp"

namespace {

void write_csv(std::ostream& out,
               const std::vector<hs::serve::JobOutcome>& outcomes) {
  out << "job,total_time,comm_time,comp_time,messages,wire_bytes,max_error,"
         "status\n";
  char buffer[64];
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const hs::serve::JobOutcome& outcome = outcomes[i];
    if (!outcome.ok()) {
      out << i << ",,,,,,," << "failed: " << outcome.error << "\n";
      continue;
    }
    out << i;
    for (const double value :
         {outcome.result.timing.total_time, outcome.result.timing.max_comm_time,
          outcome.result.timing.max_comp_time}) {
      std::snprintf(buffer, sizeof buffer, "%.6f", value);
      out << ',' << buffer;
    }
    out << ',' << outcome.result.messages << ',' << outcome.result.wire_bytes
        << ',' << outcome.result.max_error << ",ok\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/hsummad.sock";
  std::string submit_path;
  std::string csv_path;
  bool stats = false;
  bool shutdown = false;
  bool example = false;

  hs::CliParser cli("hsumma-client — submit job batches to a running hsummad");
  cli.add_string("socket", "AF_UNIX socket path of the server", &socket_path);
  cli.add_string("submit", "JSON file holding an array of wire jobs",
                 &submit_path);
  cli.add_string("csv", "write submit results here instead of stdout",
                 &csv_path);
  cli.add_flag("stats", "print the server's counters and exit", &stats);
  cli.add_flag("shutdown", "ask the server to shut down and exit", &shutdown);
  cli.add_flag("example", "print an example one-job submit file and exit",
               &example);
  if (!cli.parse(argc, argv)) return 1;

  if (example) {
    // A small runnable template the user can edit.
    hs::exec::SimJob job;
    job.platform = hs::net::Platform::by_name("grid5000");
    job.gamma_flop = job.platform.gamma_flop;
    job.ranks = 16;
    job.groups = 4;
    job.problem = hs::core::ProblemSpec::square(256, 32);
    hs::JsonArray jobs;
    jobs.push_back(hs::serve::sim_job_to_json(job));
    std::cout << hs::write_json(hs::JsonValue{std::move(jobs)}) << "\n";
    return 0;
  }

  try {
    hs::serve::Client client(socket_path);
    if (stats) {
      std::cout << hs::write_json(client.stats()) << "\n";
      return 0;
    }
    if (shutdown) {
      client.shutdown_server();
      std::cout << "server shut down\n";
      return 0;
    }
    if (submit_path.empty()) {
      std::cerr << "nothing to do: pass --submit, --stats, --shutdown or "
                   "--example (see --help)\n";
      return 1;
    }
    std::ifstream in(submit_path);
    if (!in) {
      std::cerr << "cannot read " << submit_path << "\n";
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string parse_error;
    const hs::JsonValue batch = hs::parse_json(text.str(), &parse_error);
    if (!parse_error.empty() || !batch.is_array()) {
      std::cerr << submit_path << ": "
                << (parse_error.empty() ? "expected a JSON array of jobs"
                                        : parse_error)
                << "\n";
      return 1;
    }
    std::vector<hs::exec::SimJob> jobs;
    jobs.reserve(batch.array().size());
    for (std::size_t i = 0; i < batch.array().size(); ++i) {
      std::string decode_error;
      std::optional<hs::exec::SimJob> job =
          hs::serve::sim_job_from_json(batch.array()[i], &decode_error);
      if (!job.has_value()) {
        std::cerr << submit_path << ": job " << i << ": " << decode_error
                  << "\n";
        return 1;
      }
      jobs.push_back(std::move(*job));
    }
    const std::vector<hs::serve::JobOutcome> outcomes = client.run_batch(jobs);
    if (csv_path.empty()) {
      write_csv(std::cout, outcomes);
    } else {
      std::ofstream out(csv_path);
      if (!out) {
        std::cerr << "cannot write " << csv_path << "\n";
        return 1;
      }
      write_csv(out, outcomes);
      std::cout << "wrote " << outcomes.size() << " results to " << csv_path
                << "\n";
    }
    std::size_t failed = 0;
    for (const hs::serve::JobOutcome& outcome : outcomes)
      if (!outcome.ok()) ++failed;
    return failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
}
