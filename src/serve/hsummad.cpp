// hsummad: the persistent sweep service daemon.
//
// Runs one shared ParallelExecutor (and optionally one on-disk result
// store) behind an AF_UNIX socket; any number of sweep clients connect,
// submit job batches, and stream results back. Identical jobs — across
// batches, across clients, across server restarts when a --cache-dir is
// given — run at most one engine between them.
//
//   hsummad --socket /tmp/hsummad.sock --cache-dir ~/.cache/hsumma
//
// Shuts down on SIGINT/SIGTERM or a client's {"type":"shutdown"} frame.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <thread>

#include "common/cli.hpp"
#include "serve/server.hpp"

namespace {

int g_wake_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 's';
  // write() is async-signal-safe; everything interesting happens in main.
  [[maybe_unused]] const ssize_t wrote = ::write(g_wake_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/hsummad.sock";
  long long jobs = 0;
  std::string cache_dir;
  long long cache_mb = 64;
  long long store_mb = 0;

  hs::CliParser cli(
      "hsummad — long-lived sweep job server with cross-client dedupe and "
      "an optional content-addressed on-disk result store");
  cli.add_string("socket", "AF_UNIX socket path to listen on", &socket_path);
  cli.add_int("jobs", "worker threads (0 = one per hardware thread)", &jobs);
  cli.add_string("cache-dir",
                 "on-disk result store root (empty = memory only)",
                 &cache_dir);
  cli.add_int("cache-mb", "in-memory result cache budget in MiB", &cache_mb);
  cli.add_int("store-mb", "on-disk store budget in MiB (0 = unbounded)",
              &store_mb);
  if (!cli.parse(argc, argv)) return 1;

  if (::pipe(g_wake_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  hs::serve::Server server({
      .socket_path = socket_path,
      .jobs = static_cast<int>(jobs),
      .cache_dir = cache_dir,
      .cache_bytes = static_cast<std::uint64_t>(cache_mb) << 20,
      .store_bytes = static_cast<std::uint64_t>(store_mb) << 20,
  });
  server.start();

  // Wake on either shutdown source: a signal writes to the pipe directly;
  // a client shutdown frame trips wait_for_shutdown in the relay thread.
  std::thread relay([&server] {
    server.wait_for_shutdown();
    on_signal(0);
  });
  char byte = 0;
  while (::read(g_wake_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  server.stop();  // also releases wait_for_shutdown, so the relay exits
  relay.join();
  return 0;
}
