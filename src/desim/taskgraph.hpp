// Intra-rank task runtime: a per-rank dependency DAG over the desim engine.
//
// Ranks used to be phase-lockstep coroutines; communication/computation
// overlap existed only as hand-rolled double-buffered pipelines inside
// individual kernels. The task runtime generalizes that: each step's
// broadcasts, local GEMM updates and sends become *tasks* with declared
// data dependencies (read/write region sets hashed to RegionIds), and a
// per-rank scheduler interleaves ready tasks in virtual time. The
// look-ahead window is not scheduler state — it is expressed in the plan
// itself, as the number of buffer slots a kernel allocates (write-after-read
// edges on a slot ring cap how far communication may run ahead) plus
// optional pipeline-coupling edges (see core/task_plan.hpp).
//
// Dependency model (resolved at TaskGraph::add, all edges point backward):
//   * read-after-write: a task reading region R depends on R's last writer;
//   * write-after-read: a task writing R depends on every reader since the
//     last write (buffer reuse);
//   * write-after-write: a task writing R depends on R's previous writer;
//   * channel FIFO: communication tasks on the same channel (communicator
//     context) are serialized by *completion* — collectives on one
//     communicator must be issued in the same order on every rank, and the
//     machine layer matches them in call order;
//   * explicit `after` edges for pipeline structure no region captures.
//
// Scheduling (run_task_graph):
//   * lookahead == 0 runs every task inline, in insertion (program) order —
//     no forking at all, so the schedule is the kernel's classic blocking
//     loop, bit-identical in virtual time.
//   * lookahead >= 1 treats compute tasks as the rank's CPU occupancy:
//     computes run one at a time, picked among ready computes by
//     (priority desc, program order asc); communication tasks are forked
//     (desim::Async) as soon as their dependencies complete, but only at
//     deterministic decision points — dependency-join instants and compute
//     boundaries — so the schedule depends only on the DAG and the engine's
//     (time, seq) order, never on host scheduling.
//
// Determinism: every loop in the scheduler iterates tasks in id order and
// all forks go through Async::start (engine seq order), so equal graphs
// produce bit-identical schedules — the property the D=0/D=1 legacy
// goldens in tests/core/test_taskplan_goldens.cpp pin down.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "desim/engine.hpp"

namespace hs::desim {

enum class TaskKind : std::uint8_t { Comm, Compute };

/// Opaque data-region identity. Kernels hash (family, index) pairs —
/// e.g. ("a_panel", slot) — and declare them in TaskSpec::in/out.
using RegionId = std::uint64_t;

/// FNV-1a over the family name, mixed with the index. Stable across runs
/// (participates in nothing persistent, but determinism costs nothing).
constexpr RegionId region_id(std::string_view family, std::uint64_t index) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : family) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  h ^= index + 0x9e3779b97f4a7c15ull;
  h *= 1099511628211ull;
  return h;
}

/// A pipeline-step marker attached to a task: observers translate these to
/// trace step marks when the task is issued (so D=0 inline execution stamps
/// steps at exactly the legacy program points).
struct TaskStepMark {
  long long step = 0;
  int phase = 0;  // core maps this onto trace::Phase
};

struct TaskSpec {
  TaskKind kind = TaskKind::Compute;
  /// Stats/trace category (core maps onto trace::Phase: flat/outer/inner).
  int phase = 0;
  /// Comm FIFO domain (communicator context id); -1 = unserialized.
  int channel = -1;
  /// Compute selection priority (higher first; ties in program order).
  int priority = 0;
  /// Wait-accrual group: observers may fuse the scheduler's join waits on
  /// tasks sharing a non-negative group into one interval (matches the
  /// legacy kernels' PhaseTimer placement, where one timer wrapped the
  /// joins of a whole pipeline step). -1 = accrue individually.
  int wait_group = -1;
  /// Pipeline step for trace spans; -1 when not step-aligned.
  long long step = -1;
  /// Static label for trace spans ("bcast A", "trailing update", ...).
  const char* label = "";
  std::vector<RegionId> in;
  std::vector<RegionId> out;
  /// Explicit extra dependencies (task ids returned by add).
  std::vector<int> after;
  std::vector<TaskStepMark> marks;
};

class TaskGraph;

/// Scheduler event sink: stats accounting (core wraps RankStats), trace
/// step marks and task spans. All callbacks run at deterministic points of
/// the schedule and must not advance virtual time.
class TaskObserver {
 public:
  virtual ~TaskObserver() = default;
  /// Task issued: inline start, or fork for lookahead >= 1. Step marks on
  /// the task should be emitted here.
  virtual void task_issued(const TaskGraph& graph, int id) {
    (void)graph;
    (void)id;
  }
  /// The task's body occupied virtual time [t0, t1] (a comm task's actual
  /// transfer span; a compute task's charge). Fires once per task.
  virtual void task_finished(const TaskGraph& graph, int id, SimTime t0,
                             SimTime t1) {
    (void)graph;
    (void)id;
    (void)t0;
    (void)t1;
  }
  /// The scheduler was blocked on comm task `id` for [t0, t1] — the
  /// *exposed* (non-hidden) communication. Inline execution reports the
  /// full comm span; overlapped execution only the join wait.
  virtual void task_waited(const TaskGraph& graph, int id, SimTime t0,
                           SimTime t1) {
    (void)graph;
    (void)id;
    (void)t0;
    (void)t1;
  }
};

/// One rank's task DAG: build with add() in program order, then run once
/// with run_task_graph. Dependencies are resolved eagerly at add() time
/// from the region declarations, so tests can inspect deps(id) without
/// running anything.
class TaskGraph {
 public:
  /// Task body factory; called exactly once, when the task is issued.
  using Body = std::function<Task<void>()>;
  /// Host-side hooks around the body: `before` runs synchronously at issue
  /// time (Real-mode staging copies), `after` synchronously at completion
  /// (Real-mode GEMM application — virtual time does not advance in either).
  using Hook = std::function<void()>;

  int add(TaskSpec spec, Body body, Hook before = {}, Hook after = {});

  int size() const noexcept { return static_cast<int>(tasks_.size()); }
  const TaskSpec& spec(int id) const { return tasks_[check_id(id)].spec; }
  /// Resolved dependencies: sorted, deduplicated, all < id.
  const std::vector<int>& deps(int id) const {
    return tasks_[check_id(id)].deps;
  }

 private:
  friend class TaskGraphRunner;

  struct Record {
    TaskSpec spec;
    Body body;
    Hook before;
    Hook after;
    std::vector<int> deps;
  };

  struct RegionState {
    int last_writer = -1;
    std::vector<int> readers;  // since the last write
  };

  std::size_t check_id(int id) const {
    HS_REQUIRE_MSG(id >= 0 && id < size(), "task id " << id << " out of range");
    return static_cast<std::size_t>(id);
  }

  std::vector<Record> tasks_;
  // Builder-only bookkeeping (region -> writer/readers, channel -> last).
  std::vector<std::pair<RegionId, RegionState>> regions_;
  std::vector<std::pair<int, int>> channel_last_;  // (channel, task id)
};

/// Drive `graph` to completion inside the calling rank coroutine.
/// lookahead == 0 executes inline in program order; lookahead >= 1 runs the
/// dependency-driven overlapping scheduler (the window itself is encoded in
/// the graph's buffer-slot regions). The graph is consumed: bodies are
/// invoked once and the graph must not be run again.
Task<void> run_task_graph(Engine& engine, TaskGraph& graph, int lookahead,
                          TaskObserver* observer = nullptr);

}  // namespace hs::desim
