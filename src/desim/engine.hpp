// Discrete-event simulation engine.
//
// The Engine owns a virtual clock and a time-ordered event queue of
// coroutine handles. Simulated processes are coroutines (desim::Task) that
// suspend on `sleep_until` / `sleep` / `Gate::wait` awaitables; the engine
// resumes them in (time, FIFO-sequence) order, so simulations are exactly
// deterministic and independent of host scheduling.
//
// Ties are broken by insertion sequence: two events at the same virtual time
// run in the order they were scheduled. `run()` drives the queue to
// exhaustion; if any spawned process is still suspended afterwards, the
// simulation has deadlocked (e.g. a recv with no matching send) and run()
// throws DeadlockError naming the stuck processes. A process that throws
// aborts the whole run and its exception is re-thrown from run().
//
// Hot-path layout (see DESIGN.md "Performance & benchmarking"): the event
// queue is a hand-sifted 8-ary min-heap over a flat, reserved vector (no
// per-event allocation, no std::priority_queue indirection), with an O(1)
// FIFO side-queue for the common "resume at the current time" case (gates
// fired at `now`, zero-latency forks) and same-timestamp coalescing
// buckets for the bursts of bit-identical future times that synchronized
// ranks generate. All structures pop in exactly (time, seq) order, so the
// schedule is bit-for-bit identical to a single totally-ordered queue —
// asserted against seed-engine goldens by tests/desim/test_determinism.cpp.
// Coroutine frames (including the per-process supervise wrappers) are
// recycled through desim::FramePool.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "desim/task.hpp"

namespace hs::desim {

using SimTime = double;

/// Thrown by Engine::run when the event queue drains while spawned
/// processes are still suspended.
class DeadlockError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time (the timestamp of the event being processed).
  SimTime now() const noexcept { return now_; }

  /// Register a top-level process starting at the current virtual time.
  /// `name` is used in deadlock diagnostics.
  void spawn(Task<void> task, std::string name = {}) {
    spawn_at(now_, std::move(task), std::move(name));
  }

  /// Register a top-level process starting at virtual time `start` (>= now).
  void spawn_at(SimTime start, Task<void> task, std::string name = {});

  /// Register a top-level process named "<prefix> rank <index>" without
  /// materializing the string. Large runs spawn one process per rank
  /// (2^20 at the scale frontier); storing a composed std::string per rank
  /// costs a heap allocation and ~48 bytes each, while the diagnostics
  /// that need the name (deadlock reports) fire at most once per run. The
  /// prefix is interned — records store a small id + the rank index — and
  /// the full name is composed only inside error paths.
  void spawn_indexed(Task<void> task, std::string_view prefix, int index);

  /// Run until the event queue is empty. Re-throws the first process
  /// exception; throws DeadlockError if processes remain suspended.
  ///
  /// Thread affinity: the first run() pins the engine to the calling
  /// thread, and every later run() must come from that same thread. The
  /// coroutine frames, Request/Async states and collective bookkeeping an
  /// engine drives are all recycled through the *thread-local* desim
  /// FramePool; resuming them from another thread would silently migrate
  /// memory between per-thread pools, so cross-thread misuse fails loudly
  /// here instead (one thread-id compare per run() — not per event).
  void run();

  /// Total events processed so far (exposed for engine micro-benchmarks).
  std::uint64_t events_processed() const noexcept { return events_processed_; }

  /// Peak simultaneous population of the timed event heap (the now-queue
  /// and coalescing buckets are excluded). Exposed for metrics harvesting.
  std::size_t heap_peak() const noexcept { return heap_peak_; }

  /// Timed-heap population sampled every 256 processed events — the
  /// distribution behind heap_peak(), harvested into the desim.queue_depth
  /// histogram. Sampling keeps the cost off the per-event hot path; the
  /// stride is a power of two so the sample set is deterministic.
  const hs::Histogram& queue_depth_histogram() const noexcept {
    return queue_depth_;
  }

  /// Pre-size internal storage: `processes` further top-level spawns and a
  /// peak in-flight event population of `pending_events`. Purely a
  /// reallocation-avoidance hint; safe to skip or under-estimate.
  void reserve(std::size_t processes, std::size_t pending_events) {
    records_.reserve(records_.size() + processes);
    supervisors_.reserve(supervisors_.size() + processes);
    if (heap_.capacity() < pending_events) heap_.reserve(pending_events);
  }

  /// Schedule a raw handle (used by awaitables and by Gate).
  void schedule_at(SimTime time, std::coroutine_handle<> handle);

  /// Cancellable deadline timers (the primitive mpc's timeout-bounded
  /// send/recv race against rendezvous matching). A timer resumes `handle`
  /// at `time` like schedule_at, with two differences: it can be cancelled,
  /// and timers at time T fire *after* every regular event at T — so work
  /// completed exactly at the deadline still counts as on time. A cancelled
  /// timer is discarded unfired: its handle is never resumed and — unlike a
  /// parked regular event — it does not advance the virtual clock, so an
  /// abandoned deadline never stretches a run's reported time.
  using TimerId = std::uint64_t;
  TimerId schedule_timer_at(SimTime time, std::coroutine_handle<> handle);
  /// Returns true when the timer was still pending (its handle will not be
  /// resumed); false when it already fired or was never known.
  bool cancel_timer(TimerId id);
  /// Timers scheduled and not yet fired or cancelled.
  std::size_t live_timers() const noexcept { return live_timers_; }

  /// Awaitable: resume at absolute virtual time `time` (>= now).
  auto sleep_until(SimTime time) {
    struct Awaiter {
      Engine* engine;
      SimTime time;
      bool await_ready() const noexcept { return time <= engine->now(); }
      void await_suspend(std::coroutine_handle<> handle) const {
        engine->schedule_at(time, handle);
      }
      void await_resume() const noexcept {}
    };
    HS_REQUIRE_MSG(time >= now_, "sleep_until into the past: t=" << time
                                                                 << " now=" << now_);
    return Awaiter{this, time};
  }

  /// Awaitable: resume after `duration` virtual seconds.
  auto sleep(SimTime duration) {
    HS_REQUIRE_MSG(duration >= 0.0, "negative sleep " << duration);
    return sleep_until(now_ + duration);
  }

 private:
  struct Event {
    SimTime time;
    // High 48 bits: scheduling sequence number. Low 16 bits: index + 1 of
    // the coalescing bucket hanging off this entry (0 = none). Packing
    // keeps Event at 24 bytes — sift cost is cache-bound — and since seqs
    // are unique, comparing the packed word compares seqs.
    std::uint64_t seq_bucket;
    std::coroutine_handle<> handle;
  };
  static constexpr int kSeqShift = 16;
  static constexpr std::uint64_t kBucketMask = 0xFFFF;

  static bool event_before(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq_bucket < b.seq_bucket;
  }

  // 8-ary implicit heap: fewer levels (and so fewer serially dependent
  // cache misses) per sift than binary, at the cost of more comparisons per
  // level — the right trade when the event frontier dwarfs L1 (16384 ranks
  // => ~16k queued events) and compares are cheap relative to line fetches.
  static constexpr std::size_t kHeapArity = 8;

  struct ProcessRecord {
    std::string name;            // empty when (prefix_id, index) names it
    std::int32_t prefix_id = -1; // into name_prefixes_, -1 = use `name`
    std::int32_t index = -1;
    bool done = false;
  };
  /// The record's display name (deadlock diagnostics only).
  std::string record_name(const ProcessRecord& record) const;

  // Wraps a user task so completion and failure are recorded in O(1)
  // without scanning all processes per event.
  Task<void> supervise(Task<void> inner, std::size_t index);

  // Same-timestamp coalescing: simulated workloads are heavily
  // time-synchronized (a collective completion fires every participant's
  // gate at one instant; lock-stepped ranks all sleep until the same next
  // step time), so the heap would otherwise absorb thousands of entries
  // with bit-identical times. Consecutive pushes at the same time instead
  // append to a Bucket hanging off a single heap entry; the bucket drains
  // one handle per pop, so event accounting and (time, seq) order are
  // unchanged. Correctness argument: appends to a bucket carry strictly
  // increasing seqs, appends stop forever once any other time is pushed
  // (the cache moves on), and any later same-time entry therefore has a
  // first seq larger than everything in the bucket — so "whole bucket
  // before that entry" is exactly (time, seq) order.
  struct Bucket {
    std::vector<std::coroutine_handle<>> handles;
    std::size_t head = 0;
    std::int32_t next_free = -1;
  };

  /// A free bucket index in [0, kBucketMask - 1], or -1 if the index space
  /// is exhausted (the caller then pushes a standalone entry, which is
  /// merely slower, never wrong).
  std::int32_t bucket_alloc();
  void bucket_free(std::int32_t index);
  void bucket_reset() {
    bucket_pool_.clear();
    bucket_free_head_ = -1;
    draining_ = -1;
    cache_valid_ = false;
    cache_bucket_ = -1;
  }

  // Deadline timers live in their own little binary heap: they are rare
  // (one per timeout-bounded rendezvous), must be cancellable in place, and
  // deliberately sort *after* same-time regular events, so folding them into
  // the main (time, seq) order would buy nothing. Cancellation nulls the
  // handle where it sits; purge_timers() drops dead tops lazily.
  struct TimerEvent {
    SimTime time;
    std::uint64_t id;  // creation order: FIFO tie-break at equal times
    std::coroutine_handle<> handle;  // nullptr = cancelled
  };
  static bool timer_after(const TimerEvent& a, const TimerEvent& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.id > b.id;
  }
  void purge_timers();
  TimerEvent timer_pop();

  void heap_push(const Event& event);
  Event heap_pop();
  /// The globally next event in (time, seq) order, drawn from whichever of
  /// the draining bucket, the heap, and the now-queue holds it.
  Event pop_next();
  bool queues_empty() const noexcept {
    return heap_.empty() && now_head_ == now_queue_.size() && draining_ < 0;
  }
  void drop_pending_events() {
    heap_.clear();
    now_queue_.clear();
    now_head_ = 0;
    bucket_reset();
    timer_heap_.clear();
    live_timers_ = 0;
  }

  /// Timestamp of the earliest regular event; requires !queues_empty().
  SimTime regular_front_time() const noexcept {
    if (draining_ >= 0 || now_head_ < now_queue_.size()) return now_;
    return heap_.front().time;
  }

  // kHeapArity-ary min-heap over a flat vector, ordered by (time, seq).
  std::vector<Event> heap_;
  // O(1) fast path: events scheduled at exactly `now_` while running are
  // appended here (their seqs are necessarily increasing, so the queue is
  // FIFO-sorted by construction) and consumed before later heap entries.
  std::vector<Event> now_queue_;
  std::size_t now_head_ = 0;
  // Coalescing buckets (free-listed so handle vectors keep their capacity).
  std::vector<Bucket> bucket_pool_;
  std::int32_t bucket_free_head_ = -1;
  // Bucket currently being drained by pop_next, or -1. Its handles are
  // globally next: their seqs precede any later same-time heap entry and
  // any now-queue entry created during the drain.
  std::int32_t draining_ = -1;
  // Push cache: the time of the most recent heap push, and the bucket
  // collecting that time's handles (-1 until a second same-time push).
  SimTime cache_time_ = 0.0;
  std::int32_t cache_bucket_ = -1;
  bool cache_valid_ = false;
  // Deadline-timer lane (see schedule_timer_at). live_timers_ counts
  // entries whose handle is still non-null.
  std::vector<TimerEvent> timer_heap_;
  std::uint64_t next_timer_id_ = 1;
  std::size_t live_timers_ = 0;
  std::vector<ProcessRecord> records_;
  std::vector<std::string> name_prefixes_;  // interned spawn_indexed prefixes
  std::vector<Task<void>> supervisors_;
  std::exception_ptr failure_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::size_t heap_peak_ = 0;
  hs::Histogram queue_depth_;
  bool running_ = false;
  // Owning thread, recorded at the first run(); default-constructed id
  // means "not pinned yet".
  std::thread::id owner_;
};

/// One-shot synchronization point between simulated processes.
///
/// Exactly one process may wait on a Gate; another process fires it with a
/// completion time, at which the waiter resumes. This is the primitive the
/// message-passing layer builds rendezvous matching from: whichever side of
/// a send/recv pair arrives second computes the transfer completion time and
/// fires the first side's gate.
class Gate {
 public:
  explicit Gate(Engine& engine) : engine_(&engine) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;
  // Gates are pinned: pending waiters hold `this`.
  Gate(Gate&&) = delete;
  Gate& operator=(Gate&&) = delete;

  bool fired() const noexcept { return fired_; }

  /// The virtual time passed to fire_at; meaningful only once fired().
  SimTime fire_time() const noexcept { return fire_time_; }

  /// Fire the gate: the (current or future) waiter resumes at virtual time
  /// `time` (>= now). A gate can fire at most once.
  void fire_at(SimTime time);

  /// Park `handle` as the gate's waiter without going through the awaitable
  /// machinery. Used by deadline-bounded operations that race a timer
  /// against the gate: the coroutine suspends once, and whichever side wins
  /// resumes it (the loser must be cancelled/disarmed by the winner).
  void attach_waiter(std::coroutine_handle<> handle) {
    HS_REQUIRE_MSG(!fired_, "attach_waiter on a fired Gate");
    HS_REQUIRE_MSG(!waiter_, "Gate supports a single waiter");
    waiter_ = handle;
  }

  /// Awaitable: suspend until the gate has fired *and* its fire time has
  /// been reached.
  auto wait() {
    struct Awaiter {
      Gate* gate;
      bool await_ready() const noexcept {
        return gate->fired_ && gate->fire_time_ <= gate->engine_->now();
      }
      void await_suspend(std::coroutine_handle<> handle) {
        if (gate->fired_) {
          gate->engine_->schedule_at(gate->fire_time_, handle);
        } else {
          HS_REQUIRE_MSG(!gate->waiter_, "Gate supports a single waiter");
          gate->waiter_ = handle;
        }
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Engine* engine_;
  std::coroutine_handle<> waiter_;
  SimTime fire_time_ = 0.0;
  bool fired_ = false;
};

/// Fork/join concurrency *within* a simulated process.
///
/// Async::start schedules a task to run concurrently with its parent (at
/// the current virtual time); `co_await async.wait()` joins it. This is
/// what communication/computation overlap is built from: a rank forks the
/// next step's broadcasts, computes the current step, then joins.
///
/// An Async must be joined (or known complete) before destruction — a
/// dropped Async leaves the forked task running, which the engine then
/// reports as usual (completion, failure, or deadlock).
class Async {
 public:
  Async() = default;

  static Async start(Engine& engine, Task<void> task, std::string name = {}) {
    Async async;
    async.state_ = std::make_unique<State>(engine);
    engine.spawn(wrap(std::move(task), async.state_.get(), &engine),
                 std::move(name));
    return async;
  }

  bool valid() const noexcept { return state_ != nullptr; }
  bool complete() const noexcept { return state_ && state_->gate.fired(); }

  /// Awaitable: resumes when the forked task has finished.
  auto wait() {
    HS_REQUIRE_MSG(state_ != nullptr, "waiting on an empty Async");
    return state_->gate.wait();
  }

 private:
  struct State {
    explicit State(Engine& engine) : gate(engine) {}
    // Overlap schedules fork one Async per step per rank; recycle states.
    static void* operator new(std::size_t size) {
      return FramePool::allocate(size);
    }
    static void operator delete(void* ptr, std::size_t size) noexcept {
      FramePool::deallocate(ptr, size);
    }
    Gate gate;
  };

  static Task<void> wrap(Task<void> inner, State* state, Engine* engine) {
    co_await std::move(inner);
    state->gate.fire_at(engine->now());
  }

  std::unique_ptr<State> state_;
};

}  // namespace hs::desim
