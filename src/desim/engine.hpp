// Discrete-event simulation engine.
//
// The Engine owns a virtual clock and a time-ordered event queue of
// coroutine handles. Simulated processes are coroutines (desim::Task) that
// suspend on `sleep_until` / `sleep` / `Gate::wait` awaitables; the engine
// resumes them in (time, FIFO-sequence) order, so simulations are exactly
// deterministic and independent of host scheduling.
//
// Ties are broken by insertion sequence: two events at the same virtual time
// run in the order they were scheduled. `run()` drives the queue to
// exhaustion; if any spawned process is still suspended afterwards, the
// simulation has deadlocked (e.g. a recv with no matching send) and run()
// throws DeadlockError naming the stuck processes. A process that throws
// aborts the whole run and its exception is re-thrown from run().
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "desim/task.hpp"

namespace hs::desim {

using SimTime = double;

/// Thrown by Engine::run when the event queue drains while spawned
/// processes are still suspended.
class DeadlockError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time (the timestamp of the event being processed).
  SimTime now() const noexcept { return now_; }

  /// Register a top-level process starting at the current virtual time.
  /// `name` is used in deadlock diagnostics.
  void spawn(Task<void> task, std::string name = {}) {
    spawn_at(now_, std::move(task), std::move(name));
  }

  /// Register a top-level process starting at virtual time `start` (>= now).
  void spawn_at(SimTime start, Task<void> task, std::string name = {});

  /// Run until the event queue is empty. Re-throws the first process
  /// exception; throws DeadlockError if processes remain suspended.
  void run();

  /// Total events processed so far (exposed for engine micro-benchmarks).
  std::uint64_t events_processed() const noexcept { return events_processed_; }

  /// Schedule a raw handle (used by awaitables and by Gate).
  void schedule_at(SimTime time, std::coroutine_handle<> handle);

  /// Awaitable: resume at absolute virtual time `time` (>= now).
  auto sleep_until(SimTime time) {
    struct Awaiter {
      Engine* engine;
      SimTime time;
      bool await_ready() const noexcept { return time <= engine->now(); }
      void await_suspend(std::coroutine_handle<> handle) const {
        engine->schedule_at(time, handle);
      }
      void await_resume() const noexcept {}
    };
    HS_REQUIRE_MSG(time >= now_, "sleep_until into the past: t=" << time
                                                                 << " now=" << now_);
    return Awaiter{this, time};
  }

  /// Awaitable: resume after `duration` virtual seconds.
  auto sleep(SimTime duration) {
    HS_REQUIRE_MSG(duration >= 0.0, "negative sleep " << duration);
    return sleep_until(now_ + duration);
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const Event& other) const noexcept {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  struct ProcessRecord {
    std::string name;
    bool done = false;
  };

  // Wraps a user task so completion and failure are recorded in O(1)
  // without scanning all processes per event.
  Task<void> supervise(Task<void> inner, std::size_t index);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<ProcessRecord> records_;
  std::vector<Task<void>> supervisors_;
  std::exception_ptr failure_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  bool running_ = false;
};

/// One-shot synchronization point between simulated processes.
///
/// Exactly one process may wait on a Gate; another process fires it with a
/// completion time, at which the waiter resumes. This is the primitive the
/// message-passing layer builds rendezvous matching from: whichever side of
/// a send/recv pair arrives second computes the transfer completion time and
/// fires the first side's gate.
class Gate {
 public:
  explicit Gate(Engine& engine) : engine_(&engine) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;
  // Gates are pinned: pending waiters hold `this`.
  Gate(Gate&&) = delete;
  Gate& operator=(Gate&&) = delete;

  bool fired() const noexcept { return fired_; }

  /// Fire the gate: the (current or future) waiter resumes at virtual time
  /// `time` (>= now). A gate can fire at most once.
  void fire_at(SimTime time);

  /// Awaitable: suspend until the gate has fired *and* its fire time has
  /// been reached.
  auto wait() {
    struct Awaiter {
      Gate* gate;
      bool await_ready() const noexcept {
        return gate->fired_ && gate->fire_time_ <= gate->engine_->now();
      }
      void await_suspend(std::coroutine_handle<> handle) {
        if (gate->fired_) {
          gate->engine_->schedule_at(gate->fire_time_, handle);
        } else {
          HS_REQUIRE_MSG(!gate->waiter_, "Gate supports a single waiter");
          gate->waiter_ = handle;
        }
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Engine* engine_;
  std::coroutine_handle<> waiter_;
  SimTime fire_time_ = 0.0;
  bool fired_ = false;
};

/// Fork/join concurrency *within* a simulated process.
///
/// Async::start schedules a task to run concurrently with its parent (at
/// the current virtual time); `co_await async.wait()` joins it. This is
/// what communication/computation overlap is built from: a rank forks the
/// next step's broadcasts, computes the current step, then joins.
///
/// An Async must be joined (or known complete) before destruction — a
/// dropped Async leaves the forked task running, which the engine then
/// reports as usual (completion, failure, or deadlock).
class Async {
 public:
  Async() = default;

  static Async start(Engine& engine, Task<void> task, std::string name = {}) {
    Async async;
    async.state_ = std::make_unique<State>(engine);
    engine.spawn(wrap(std::move(task), async.state_.get(), &engine),
                 std::move(name));
    return async;
  }

  bool valid() const noexcept { return state_ != nullptr; }
  bool complete() const noexcept { return state_ && state_->gate.fired(); }

  /// Awaitable: resumes when the forked task has finished.
  auto wait() {
    HS_REQUIRE_MSG(state_ != nullptr, "waiting on an empty Async");
    return state_->gate.wait();
  }

 private:
  struct State {
    explicit State(Engine& engine) : gate(engine) {}
    Gate gate;
  };

  static Task<void> wrap(Task<void> inner, State* state, Engine* engine) {
    co_await std::move(inner);
    state->gate.fire_at(engine->now());
  }

  std::unique_ptr<State> state_;
};

}  // namespace hs::desim
