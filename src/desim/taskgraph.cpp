#include "desim/taskgraph.hpp"

#include <algorithm>
#include <utility>

namespace hs::desim {

namespace {

void push_dep(std::vector<int>& deps, int dep, int self) {
  if (dep >= 0 && dep != self) deps.push_back(dep);
}

}  // namespace

int TaskGraph::add(TaskSpec spec, Body body, Hook before, Hook after) {
  const int id = size();
  std::vector<int> deps;
  for (const int dep : spec.after) {
    HS_REQUIRE_MSG(dep >= 0 && dep < id,
                   "task " << id << ": after-edge on invalid task " << dep);
    deps.push_back(dep);
  }
  auto region = [this](RegionId key) -> RegionState& {
    for (auto& [region_key, state] : regions_)
      if (region_key == key) return state;
    return regions_.emplace_back(key, RegionState{}).second;
  };
  for (const RegionId r : spec.in) {
    RegionState& state = region(r);
    push_dep(deps, state.last_writer, id);  // read-after-write
    state.readers.push_back(id);
  }
  for (const RegionId r : spec.out) {
    RegionState& state = region(r);
    push_dep(deps, state.last_writer, id);  // write-after-write
    for (const int reader : state.readers)
      push_dep(deps, reader, id);  // write-after-read
    state.last_writer = id;
    state.readers.clear();
  }
  if (spec.kind == TaskKind::Comm && spec.channel >= 0) {
    bool known = false;
    for (auto& [channel, last] : channel_last_) {
      if (channel != spec.channel) continue;
      push_dep(deps, last, id);  // per-channel completion FIFO
      last = id;
      known = true;
      break;
    }
    if (!known) channel_last_.emplace_back(spec.channel, id);
  }
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  Record& record = tasks_.emplace_back();
  record.spec = std::move(spec);
  record.body = std::move(body);
  record.before = std::move(before);
  record.after = std::move(after);
  record.deps = std::move(deps);
  return id;
}

/// Drives one TaskGraph to completion. Lives for the duration of the
/// run_task_graph coroutine (which owns it by value via the frame).
class TaskGraphRunner {
 public:
  TaskGraphRunner(Engine& engine, TaskGraph& graph, TaskObserver* observer)
      : engine_(engine),
        graph_(graph),
        observer_(observer),
        state_(static_cast<std::size_t>(graph.size())) {}

  Task<void> run_inline() {
    const int n = graph_.size();
    for (int id = 0; id < n; ++id) {
      TaskGraph::Record& record = graph_.tasks_[static_cast<std::size_t>(id)];
      issue_marks(id);
      if (record.before) record.before();
      const SimTime t0 = engine_.now();
      co_await record.body();
      const SimTime t1 = engine_.now();
      state_[static_cast<std::size_t>(id)].complete = true;
      if (record.after) record.after();
      if (observer_ != nullptr) {
        // Inline communication is fully exposed: the wait IS the span.
        if (record.spec.kind == TaskKind::Comm)
          observer_->task_waited(graph_, id, t0, t1);
        observer_->task_finished(graph_, id, t0, t1);
      }
    }
  }

  Task<void> run_overlapped() {
    for (;;) {
      const int c = pick_compute();
      if (c < 0) break;
      if (!deps_complete(c)) {
        // Join phase: fork and await the compute's outstanding comm
        // dependencies in task order, forking newly enabled closure comms
        // at every join instant (this is where pipelined broadcasts of
        // later steps get issued while this step's are still in flight).
        const std::vector<int> closure = comm_closure(c);
        while (!deps_complete(c)) {
          fork_ready(closure);
          const int d = next_join(closure);
          HS_REQUIRE_MSG(d >= 0, "task plan stalled awaiting deps of task "
                                     << c << " ('" << graph_.spec(c).label
                                     << "'): dependency cycle or a comm "
                                        "task gated on an unrun compute");
          co_await join(d);
        }
      }
      fork_ready_all();  // pre-compute fork point
      co_await run_compute(c);
      fork_ready_all();  // post-compute fork point
    }
    // Drain trailing communication (tasks no compute depends on).
    for (;;) {
      fork_ready_all();
      const int d = next_join_any();
      if (d < 0) break;
      co_await join(d);
    }
    for (int id = 0; id < graph_.size(); ++id)
      HS_REQUIRE_MSG(state_[static_cast<std::size_t>(id)].complete,
                     "task " << id << " ('" << graph_.spec(id).label
                             << "') never became runnable (plan cycle?)");
  }

 private:
  struct State {
    bool issued = false;
    bool complete = false;
    bool ran = false;  // computes only
    Async async;
  };

  State& state(int id) { return state_[static_cast<std::size_t>(id)]; }
  TaskGraph::Record& record(int id) {
    return graph_.tasks_[static_cast<std::size_t>(id)];
  }

  void issue_marks(int id) {
    if (observer_ != nullptr) observer_->task_issued(graph_, id);
  }

  bool deps_complete(int id) {
    for (const int dep : graph_.deps(id))
      if (!state(dep).complete) return false;
    return true;
  }

  /// Best next compute: among computes whose compute-predecessors have run,
  /// prefer ready ones (all deps complete); order by (priority desc, id
  /// asc). Returns -1 when every compute has run.
  int pick_compute() {
    const int n = graph_.size();
    while (first_compute_ < n &&
           (record(first_compute_).spec.kind != TaskKind::Compute ||
            state(first_compute_).ran))
      ++first_compute_;
    int best_ready = -1;
    int best_candidate = -1;
    bool any_unrun = false;
    for (int id = first_compute_; id < n; ++id) {
      if (record(id).spec.kind != TaskKind::Compute || state(id).ran) continue;
      any_unrun = true;
      bool candidate = true;
      bool ready = true;
      for (const int dep : graph_.deps(id)) {
        if (state(dep).complete) continue;
        ready = false;
        if (record(dep).spec.kind == TaskKind::Compute) {
          candidate = false;
          break;
        }
      }
      if (!candidate) continue;
      int& best = ready ? best_ready : best_candidate;
      if (best < 0 ||
          record(id).spec.priority > record(best).spec.priority)
        best = id;
    }
    if (best_ready >= 0) return best_ready;
    if (best_candidate >= 0) return best_candidate;
    HS_REQUIRE_MSG(!any_unrun,
                   "task plan has unrunnable computes (dependency cycle)");
    return -1;
  }

  /// Incomplete comm tasks reachable backward from c's dependencies,
  /// sorted by id (= program order).
  std::vector<int> comm_closure(int c) {
    std::vector<int> out;
    std::vector<char> seen(static_cast<std::size_t>(graph_.size()), 0);
    std::vector<int> stack(graph_.deps(c).begin(), graph_.deps(c).end());
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      if (seen[static_cast<std::size_t>(id)]) continue;
      seen[static_cast<std::size_t>(id)] = 1;
      if (state(id).complete) continue;
      if (record(id).spec.kind == TaskKind::Comm) out.push_back(id);
      for (const int dep : graph_.deps(id)) stack.push_back(dep);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  void fork_comm(int id) {
    State& st = state(id);
    st.issued = true;
    TaskGraph::Record& rec = record(id);
    issue_marks(id);
    if (rec.before) rec.before();
    st.async = Async::start(engine_, timed_comm(this, id, rec.body()));
  }

  /// Fork every unissued comm task in `scope` whose deps are complete.
  /// Forking never completes anything, so one ordered pass suffices.
  void fork_ready(const std::vector<int>& scope) {
    for (const int id : scope)
      if (!state(id).issued && deps_complete(id)) fork_comm(id);
  }

  void fork_ready_all() {
    const int n = graph_.size();
    while (first_comm_ < n && (record(first_comm_).spec.kind != TaskKind::Comm ||
                               state(first_comm_).issued))
      ++first_comm_;
    for (int id = first_comm_; id < n; ++id) {
      if (record(id).spec.kind != TaskKind::Comm || state(id).issued) continue;
      if (deps_complete(id)) fork_comm(id);
    }
  }

  /// First (program order) issued-but-incomplete comm in `scope`; -1 = none.
  int next_join(const std::vector<int>& scope) {
    for (const int id : scope)
      if (state(id).issued && !state(id).complete) return id;
    return -1;
  }

  int next_join_any() {
    // Scans from its own hint, not first_comm_: that one advances past
    // *issued* comms, and an issued comm can still be in flight here.
    const int n = graph_.size();
    while (first_open_comm_ < n &&
           (record(first_open_comm_).spec.kind != TaskKind::Comm ||
            state(first_open_comm_).complete))
      ++first_open_comm_;
    for (int id = first_open_comm_; id < n; ++id)
      if (record(id).spec.kind == TaskKind::Comm && state(id).issued &&
          !state(id).complete)
        return id;
    return -1;
  }

  Task<void> join(int id) {
    const SimTime w0 = engine_.now();
    co_await state(id).async.wait();
    if (observer_ != nullptr)
      observer_->task_waited(graph_, id, w0, engine_.now());
  }

  Task<void> run_compute(int c) {
    TaskGraph::Record& rec = record(c);
    State& st = state(c);
    st.ran = true;
    issue_marks(c);
    if (rec.before) rec.before();
    const SimTime t0 = engine_.now();
    co_await rec.body();
    const SimTime t1 = engine_.now();
    st.complete = true;
    if (rec.after) rec.after();
    if (observer_ != nullptr) observer_->task_finished(graph_, c, t0, t1);
  }

  /// Wrapper the forked comm body runs inside: records the true transfer
  /// span and flips the completion flag the instant the body finishes (the
  /// Async gate fires strictly after, so joiners always observe it set).
  static Task<void> timed_comm(TaskGraphRunner* self, int id,
                               Task<void> body) {
    const SimTime t0 = self->engine_.now();
    co_await std::move(body);
    const SimTime t1 = self->engine_.now();
    self->state(id).complete = true;
    TaskGraph::Record& rec = self->record(id);
    if (rec.after) rec.after();
    if (self->observer_ != nullptr)
      self->observer_->task_finished(self->graph_, id, t0, t1);
  }

  Engine& engine_;
  TaskGraph& graph_;
  TaskObserver* observer_;
  std::vector<State> state_;
  int first_compute_ = 0;   // skip hint: lowest possibly-unrun compute
  int first_comm_ = 0;      // skip hint: lowest possibly-unissued comm
  int first_open_comm_ = 0; // skip hint: lowest possibly-incomplete comm
};

Task<void> run_task_graph(Engine& engine, TaskGraph& graph, int lookahead,
                          TaskObserver* observer) {
  HS_REQUIRE_MSG(lookahead >= 0, "negative lookahead " << lookahead);
  TaskGraphRunner runner(engine, graph, observer);
  if (lookahead == 0)
    co_await runner.run_inline();
  else
    co_await runner.run_overlapped();
}

}  // namespace hs::desim
