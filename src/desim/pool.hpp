// Pooled allocation for the simulation hot path.
//
// A 16384-rank simulation allocates millions of small, short-lived objects:
// coroutine frames (one per Task invocation), Request/Async states, pending
// send/recv queue nodes. Under the seed engine these all hit the global
// allocator; FramePool replaces that with a size-binned free list so
// steady-state simulation performs no heap allocation at all. The
// simulation is single-threaded by construction (the engine resumes one
// coroutine at a time), so the free lists are thread-local and unlocked.
//
// Memory is recycled, never returned to the OS until thread exit; peak
// usage is bounded by the peak live population of each size class, which
// for a simulation is reached within the first few steps.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace hs::desim {

class FramePool {
 public:
  /// Allocate `bytes` (rounded up to a 64-byte bin; > 4 KiB falls through
  /// to the global allocator).
  static void* allocate(std::size_t bytes) {
    const std::size_t bin = bin_index(bytes);
    if (bin < kBins) {
      auto& list = bins().free[bin];
      if (!list.empty()) {
        void* p = list.back();
        list.pop_back();
        return p;
      }
      return ::operator new((bin + 1) * kBinBytes);
    }
    return ::operator new(bytes);
  }

  static void deallocate(void* p, std::size_t bytes) noexcept {
    const std::size_t bin = bin_index(bytes);
    if (bin < kBins) {
      try {
        bins().free[bin].push_back(p);
        return;
      } catch (...) {
        // Free-list bookkeeping failed to grow; fall through and release.
      }
    }
    ::operator delete(p);
  }

 private:
  static constexpr std::size_t kBinBytes = 64;
  static constexpr std::size_t kBins = 64;  // bins cover 64 B .. 4 KiB

  static std::size_t bin_index(std::size_t bytes) noexcept {
    return bytes == 0 ? 0 : (bytes - 1) / kBinBytes;
  }

  struct BinSet {
    std::vector<void*> free[kBins];
    ~BinSet() {
      for (auto& list : free)
        for (void* p : list) ::operator delete(p);
    }
  };

  static BinSet& bins() {
    static thread_local BinSet set;
    return set;
  }
};

/// std::allocator drop-in backed by FramePool; used for the hot hash maps
/// and queues of the message-passing core (node and small-array churn).
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(FramePool::allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    FramePool::deallocate(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace hs::desim
