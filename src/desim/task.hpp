// Lazily-started coroutine task type for the discrete-event engine.
//
// desim::Task<T> is the return type of every simulated-process function.
// Tasks are lazy (they run only once awaited or spawned onto an Engine),
// move-only, and complete with symmetric transfer back to their awaiter so
// deeply nested call chains (algorithm -> collective -> p2p) neither recurse
// on the machine stack nor bounce through the event queue.
//
// Exceptions thrown inside a task are captured and re-thrown at the point
// where the task is awaited (or from Engine::run for top-level tasks).
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "common/check.hpp"
#include "desim/pool.hpp"

namespace hs::desim {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  // Coroutine frames are pooled: a simulation creates one frame per Task
  // invocation (collective call, supervised process, ...), and recycling
  // them through FramePool keeps the hot path allocation-free. Only the
  // sized delete is declared so the runtime passes the exact frame size.
  static void* operator new(std::size_t size) {
    return FramePool::allocate(size);
  }
  static void operator delete(void* ptr, std::size_t size) noexcept {
    FramePool::deallocate(ptr, size);
  }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> handle) const noexcept {
      auto continuation = handle.promise().continuation;
      return continuation ? continuation : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;
  Task<T> get_return_object() noexcept;
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object() noexcept;
  void return_void() noexcept {}
};

}  // namespace detail

/// Awaitable, move-only coroutine task. See file comment.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle handle) noexcept : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return handle_ != nullptr; }
  bool done() const noexcept { return handle_ && handle_.done(); }

  /// Awaiting a task starts it (symmetric transfer) and resumes the awaiter
  /// when the task finishes; the await expression yields the task's result.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> continuation) noexcept {
        handle.promise().continuation = continuation;
        return handle;
      }
      T await_resume() {
        auto& promise = handle.promise();
        if (promise.exception) std::rethrow_exception(promise.exception);
        if constexpr (!std::is_void_v<T>) return std::move(*promise.value);
      }
    };
    HS_REQUIRE(handle_ != nullptr);
    return Awaiter{handle_};
  }

  /// Engine internals: release ownership / inspect the raw handle.
  Handle raw_handle() const noexcept { return handle_; }
  Handle release() noexcept { return std::exchange(handle_, nullptr); }

  /// Re-throws the task's captured exception, if any (engine uses this for
  /// top-level tasks after the event loop drains).
  void rethrow_if_failed() const {
    if (handle_ && handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  Handle handle_;
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() noexcept {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail
}  // namespace hs::desim
