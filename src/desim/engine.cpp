#include "desim/engine.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace hs::desim {

Task<void> Engine::supervise(Task<void> inner, std::size_t index) {
  try {
    co_await std::move(inner);
  } catch (...) {
    if (!failure_) failure_ = std::current_exception();
  }
  records_[index].done = true;
}

void Engine::spawn_at(SimTime start, Task<void> task, std::string name) {
  HS_REQUIRE(task.valid());
  HS_REQUIRE_MSG(start >= now_, "spawn in the past");
  const std::size_t index = records_.size();
  records_.push_back({std::move(name), -1, -1, false});
  Task<void> wrapper = supervise(std::move(task), index);
  schedule_at(start, wrapper.raw_handle());
  supervisors_.push_back(std::move(wrapper));
}

void Engine::spawn_indexed(Task<void> task, std::string_view prefix,
                           int index) {
  HS_REQUIRE(task.valid());
  // Interned prefixes are few (one per kernel per run); linear scan.
  std::int32_t prefix_id = -1;
  for (std::size_t i = 0; i < name_prefixes_.size(); ++i)
    if (name_prefixes_[i] == prefix) {
      prefix_id = static_cast<std::int32_t>(i);
      break;
    }
  if (prefix_id < 0) {
    prefix_id = static_cast<std::int32_t>(name_prefixes_.size());
    name_prefixes_.emplace_back(prefix);
  }
  const std::size_t record = records_.size();
  records_.push_back({std::string{}, prefix_id, index, false});
  Task<void> wrapper = supervise(std::move(task), record);
  schedule_at(now_, wrapper.raw_handle());
  supervisors_.push_back(std::move(wrapper));
}

std::string Engine::record_name(const ProcessRecord& record) const {
  if (record.prefix_id >= 0) {
    const std::string& prefix =
        name_prefixes_[static_cast<std::size_t>(record.prefix_id)];
    const std::string rank = "rank " + std::to_string(record.index);
    return prefix.empty() ? rank : prefix + " " + rank;
  }
  return record.name;
}

void Engine::schedule_at(SimTime time, std::coroutine_handle<> handle) {
  HS_REQUIRE(handle != nullptr);
  HS_REQUIRE_MSG(time >= now_,
                 "schedule_at into the past: t=" << time << " now=" << now_);
  const std::uint64_t seq = next_seq_++ << kSeqShift;
  // Fast path: an event at the current time (fired gate, zero-latency fork)
  // necessarily sorts after everything already consumed and after all
  // earlier now-queue entries (its seq is the largest yet issued), so a
  // FIFO append preserves the global (time, seq) order exactly.
  if (running_ && time == now_) {
    now_queue_.push_back({time, seq, handle});
    return;
  }
  // Coalescing path: a push at the exact time of the previous push joins
  // that time's bucket instead of becoming its own heap entry. Bucket
  // appends are in seq order by construction, and the cache is abandoned
  // (never revisited) as soon as a different time is pushed, so a bucket
  // holds a seq-contiguous run — draining it front-to-back before any later
  // entry reproduces (time, seq) order exactly.
  if (cache_valid_ && time == cache_time_) {
    if (cache_bucket_ >= 0) {
      bucket_pool_[static_cast<std::size_t>(cache_bucket_)]
          .handles.push_back(handle);
      return;
    }
    // Second consecutive push at this time: open a bucket on this event
    // (the first push stays a standalone entry with a smaller seq).
    const std::int32_t bucket = bucket_alloc();
    if (bucket >= 0) {
      cache_bucket_ = bucket;
      heap_push({time, seq | static_cast<std::uint64_t>(bucket + 1), handle});
      return;
    }
    // Bucket index space exhausted: this entry stays standalone, and the
    // cache must stop collecting this time (later appends would sort
    // behind this entry's seq).
    cache_valid_ = false;
    heap_push({time, seq, handle});
    return;
  }
  cache_valid_ = true;
  cache_time_ = time;
  cache_bucket_ = -1;
  heap_push({time, seq, handle});
}

Engine::TimerId Engine::schedule_timer_at(SimTime time,
                                          std::coroutine_handle<> handle) {
  HS_REQUIRE(handle != nullptr);
  HS_REQUIRE_MSG(time >= now_,
                 "timer in the past: t=" << time << " now=" << now_);
  const TimerId id = next_timer_id_++;
  timer_heap_.push_back({time, id, handle});
  std::push_heap(timer_heap_.begin(), timer_heap_.end(), timer_after);
  ++live_timers_;
  return id;
}

bool Engine::cancel_timer(TimerId id) {
  // Timers are few (one per in-flight deadline-bounded op), so a linear
  // scan beats maintaining handle->index maps. Cancellation nulls the
  // handle in place; the heap shape is untouched and the corpse is dropped
  // by purge_timers()/timer_pop() when it surfaces.
  for (TimerEvent& timer : timer_heap_) {
    if (timer.id == id && timer.handle != nullptr) {
      timer.handle = nullptr;
      HS_ASSERT(live_timers_ > 0);
      --live_timers_;
      return true;
    }
  }
  return false;
}

void Engine::purge_timers() {
  while (!timer_heap_.empty() && timer_heap_.front().handle == nullptr) {
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), timer_after);
    timer_heap_.pop_back();
  }
}

Engine::TimerEvent Engine::timer_pop() {
  HS_ASSERT(!timer_heap_.empty() && timer_heap_.front().handle != nullptr);
  std::pop_heap(timer_heap_.begin(), timer_heap_.end(), timer_after);
  const TimerEvent top = timer_heap_.back();
  timer_heap_.pop_back();
  HS_ASSERT(live_timers_ > 0);
  --live_timers_;
  return top;
}

std::int32_t Engine::bucket_alloc() {
  if (bucket_free_head_ >= 0) {
    const std::int32_t index = bucket_free_head_;
    Bucket& bucket = bucket_pool_[static_cast<std::size_t>(index)];
    bucket_free_head_ = bucket.next_free;
    bucket.next_free = -1;
    return index;
  }
  if (bucket_pool_.size() >= kBucketMask) return -1;
  bucket_pool_.emplace_back();
  return static_cast<std::int32_t>(bucket_pool_.size() - 1);
}

void Engine::bucket_free(std::int32_t index) {
  Bucket& bucket = bucket_pool_[static_cast<std::size_t>(index)];
  bucket.handles.clear();
  bucket.head = 0;
  bucket.next_free = bucket_free_head_;
  bucket_free_head_ = index;
  if (cache_bucket_ == index) {
    cache_valid_ = false;
    cache_bucket_ = -1;
  }
}

// The heap is kHeapArity-ary (children of i at A*i+1..A*i+A): against a
// binary heap this divides the number of levels a sift touches by log2(A),
// and a 16384-event frontier is far larger than L1, so pop cost is
// dominated by per-level cache misses, not comparisons. Sifts move a
// "hole" instead of swapping (one store per level instead of three).

void Engine::heap_push(const Event& event) {
  heap_.push_back(event);
  if (heap_.size() > heap_peak_) heap_peak_ = heap_.size();
  std::size_t hole = heap_.size() - 1;
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / kHeapArity;
    if (!event_before(event, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = event;
}

Engine::Event Engine::heap_pop() {
  HS_ASSERT(!heap_.empty());
  const Event top = heap_.front();
  const Event last = heap_.back();
  heap_.pop_back();
  const std::size_t size = heap_.size();
  if (size > 0) {
    // Sift the former last element down from the root hole.
    std::size_t hole = 0;
    for (;;) {
      const std::size_t first_child = kHeapArity * hole + 1;
      if (first_child >= size) break;
      const std::size_t limit = std::min(first_child + kHeapArity, size);
      std::size_t best = first_child;
      for (std::size_t child = first_child + 1; child < limit; ++child)
        if (event_before(heap_[child], heap_[best])) best = child;
      if (!event_before(heap_[best], last)) break;
      heap_[hole] = heap_[best];
      hole = best;
    }
    heap_[hole] = last;
  }
  return top;
}

Engine::Event Engine::pop_next() {
  // A draining bucket is globally next: its handles' seqs precede any later
  // same-time heap entry (appends to it ceased before that entry was
  // pushed) and any now-queue entry (those were sequenced during the
  // drain, i.e. later).
  if (draining_ >= 0) {
    Bucket& bucket = bucket_pool_[static_cast<std::size_t>(draining_)];
    const Event event{now_, 0, bucket.handles[bucket.head++]};
    if (bucket.head == bucket.handles.size()) {
      const std::int32_t done = draining_;
      draining_ = -1;
      bucket_free(done);
    }
    return event;
  }
  // The now-queue holds only events with time == now_ in increasing seq
  // order; the heap may still hold an equal-time event with a *smaller*
  // seq (scheduled before now_ was reached), so compare fronts.
  if (now_head_ < now_queue_.size()) {
    const Event fast = now_queue_[now_head_];
    if (heap_.empty() || !event_before(heap_.front(), fast)) {
      ++now_head_;
      if (now_head_ == now_queue_.size()) {
        now_queue_.clear();
        now_head_ = 0;
      } else {
        // The queue is FIFO; start fetching the next frame's header now.
        __builtin_prefetch(now_queue_[now_head_].handle.address());
      }
      return fast;
    }
  }
  Event event = heap_pop();
  const std::int32_t index =
      static_cast<std::int32_t>(event.seq_bucket & kBucketMask) - 1;
  if (index >= 0) {
    const Bucket& bucket = bucket_pool_[static_cast<std::size_t>(index)];
    if (bucket.head < bucket.handles.size()) {
      draining_ = index;
    } else {
      bucket_free(index);
    }
  }
  return event;
}

void Engine::run() {
  HS_REQUIRE_MSG(!running_, "Engine::run is not reentrant");
  if (owner_ == std::thread::id{}) {
    owner_ = std::this_thread::get_id();
  } else {
    HS_REQUIRE_MSG(owner_ == std::this_thread::get_id(),
                   "Engine::run called from a different thread than the one "
                   "that first ran this engine; engines are pinned to one "
                   "thread (their coroutine frames live in that thread's "
                   "desim::FramePool)");
  }
  running_ = true;
  for (;;) {
    if (failure_) break;
    purge_timers();
    const bool have_regular = !queues_empty();
    const bool have_timer = !timer_heap_.empty();
    if (!have_regular && !have_timer) break;
    // Timers at time T deliberately fire after every regular event at T
    // (work finished exactly at a deadline is on time), so a timer wins
    // only on a strictly earlier timestamp.
    if (have_timer &&
        (!have_regular || timer_heap_.front().time < regular_front_time())) {
      const TimerEvent timer = timer_pop();
      HS_ASSERT(timer.time >= now_);
      now_ = timer.time;
      ++events_processed_;
      if ((events_processed_ & 255u) == 0)
        queue_depth_.add(static_cast<double>(heap_.size()));
      timer.handle.resume();
      continue;
    }
    Event event = pop_next();
    HS_ASSERT(event.time >= now_);
    now_ = event.time;
    ++events_processed_;
    if ((events_processed_ & 255u) == 0)
      queue_depth_.add(static_cast<double>(heap_.size()));
    event.handle.resume();
    // Batched same-timestamp delivery: when the popped event opened a
    // coalescing bucket, every handle in it is globally next (same time,
    // contiguous seqs — see pop_next) and timers at this time fire only
    // after all of them, so the per-event timer/queue checks above are
    // provably no-ops. Drain the bucket in a tight loop instead of going
    // around the full loop per handle — this is the collective-completion
    // fan-out path, where one instant resumes thousands of ranks.
    while (draining_ >= 0 && !failure_) {
      Bucket& bucket = bucket_pool_[static_cast<std::size_t>(draining_)];
      const std::coroutine_handle<> handle = bucket.handles[bucket.head++];
      // The fan-out's frames are cold (thousands of ranks parked for one
      // completion instant); the drain order is already known, so pull the
      // next frames' headers toward cache while this one runs.
      if (bucket.head + 3 < bucket.handles.size())
        __builtin_prefetch(bucket.handles[bucket.head + 3].address());
      if (bucket.head == bucket.handles.size()) {
        const std::int32_t done = draining_;
        draining_ = -1;
        bucket_free(done);
      }
      ++events_processed_;
      if ((events_processed_ & 255u) == 0)
        queue_depth_.add(static_cast<double>(heap_.size()));
      handle.resume();
    }
  }
  running_ = false;

  if (failure_) {
    // Drop remaining events; suspended coroutine frames are reclaimed when
    // their owning Task objects (supervisors_, and pending-op tasks held by
    // them) are destroyed with the engine.
    drop_pending_events();
    std::exception_ptr failure = failure_;
    failure_ = nullptr;
    std::rethrow_exception(failure);
  }

  std::ostringstream stuck;
  int stuck_count = 0;
  for (const auto& record : records_) {
    if (!record.done) {
      ++stuck_count;
      if (stuck_count > 1) stuck << ", ";
      if (stuck_count <= 8) {
        const std::string name = record_name(record);
        stuck << (name.empty() ? "<unnamed>" : name);
      }
    }
  }
  if (stuck_count > 0) {
    std::ostringstream message;
    message << "simulation deadlock: " << stuck_count
            << " process(es) still suspended after event queue drained: "
            << stuck.str();
    if (stuck_count > 8) message << ", ...";
    throw DeadlockError(message.str());
  }
}

void Gate::fire_at(SimTime time) {
  HS_REQUIRE_MSG(!fired_, "Gate fired twice");
  HS_REQUIRE_MSG(time >= engine_->now(), "Gate fired into the past");
  fired_ = true;
  fire_time_ = time;
  if (waiter_) {
    engine_->schedule_at(time, waiter_);
    waiter_ = nullptr;
  }
}

}  // namespace hs::desim
