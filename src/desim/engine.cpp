#include "desim/engine.hpp"

#include <sstream>

namespace hs::desim {

Task<void> Engine::supervise(Task<void> inner, std::size_t index) {
  try {
    co_await std::move(inner);
  } catch (...) {
    if (!failure_) failure_ = std::current_exception();
  }
  records_[index].done = true;
}

void Engine::spawn_at(SimTime start, Task<void> task, std::string name) {
  HS_REQUIRE(task.valid());
  HS_REQUIRE_MSG(start >= now_, "spawn in the past");
  const std::size_t index = records_.size();
  records_.push_back({std::move(name), false});
  Task<void> wrapper = supervise(std::move(task), index);
  schedule_at(start, wrapper.raw_handle());
  supervisors_.push_back(std::move(wrapper));
}

void Engine::schedule_at(SimTime time, std::coroutine_handle<> handle) {
  HS_REQUIRE(handle != nullptr);
  HS_REQUIRE_MSG(time >= now_,
                 "schedule_at into the past: t=" << time << " now=" << now_);
  queue_.push(Event{time, next_seq_++, handle});
}

void Engine::run() {
  HS_REQUIRE_MSG(!running_, "Engine::run is not reentrant");
  running_ = true;
  while (!queue_.empty() && !failure_) {
    Event event = queue_.top();
    queue_.pop();
    HS_ASSERT(event.time >= now_);
    now_ = event.time;
    ++events_processed_;
    event.handle.resume();
  }
  running_ = false;

  if (failure_) {
    // Drop remaining events; suspended coroutine frames are reclaimed when
    // their owning Task objects (supervisors_, and pending-op tasks held by
    // them) are destroyed with the engine.
    std::exception_ptr failure = failure_;
    failure_ = nullptr;
    std::rethrow_exception(failure);
  }

  std::ostringstream stuck;
  int stuck_count = 0;
  for (const auto& record : records_) {
    if (!record.done) {
      ++stuck_count;
      if (stuck_count > 1) stuck << ", ";
      if (stuck_count <= 8)
        stuck << (record.name.empty() ? "<unnamed>" : record.name);
    }
  }
  if (stuck_count > 0) {
    std::ostringstream message;
    message << "simulation deadlock: " << stuck_count
            << " process(es) still suspended after event queue drained: "
            << stuck.str();
    if (stuck_count > 8) message << ", ...";
    throw DeadlockError(message.str());
  }
}

void Gate::fire_at(SimTime time) {
  HS_REQUIRE_MSG(!fired_, "Gate fired twice");
  HS_REQUIRE_MSG(time >= engine_->now(), "Gate fired into the past");
  fired_ = true;
  fire_time_ = time;
  if (waiter_) {
    engine_->schedule_at(time, waiter_);
    waiter_ = nullptr;
  }
}

}  // namespace hs::desim
