// Parallel sweep executor: run independent simulations concurrently with
// deterministic aggregation and a config-keyed result cache.
//
// Every figure bench and the autotuner sweep configurations by running a
// serial loop of fresh-engine simulations; the simulations are pure
// functions of their SimJob, so they parallelize embarrassingly. The
// executor runs submitted jobs on a fixed pool of worker threads — each
// job's engine is created, run and destroyed entirely on one worker, which
// keeps it pinned to that thread's desim::FramePool (enforced by the
// engine's owner-thread check) — and exposes results by *submission index*,
// so callers aggregate in program order and sweep output (tables, CSVs,
// best-G selection) is byte-identical for any worker count, including 1.
//
// The result cache memoizes completed jobs by SimJob::cache_key(): the
// SUMMA baseline and shared G points re-simulated across fig5/fig6/fig8
// and the autotuner's verification sweep become map lookups. Identical
// jobs submitted while the first is still queued or running are coalesced
// onto it (in-flight dedupe), so a duplicate never runs an engine
// regardless of timing. Jobs whose network model is not describable bypass
// the cache and simply run.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exec/sim_job.hpp"

namespace hs::exec {

/// Worker count used for `jobs <= 0`: one per hardware thread (at least 1).
int default_jobs();

struct ExecutorOptions {
  /// Worker threads; <= 0 selects default_jobs().
  int jobs = 0;
  /// Config-keyed result memoization (and in-flight dedupe).
  bool cache = true;
};

class ParallelExecutor {
 public:
  explicit ParallelExecutor(ExecutorOptions options = {});
  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;
  /// Drains any still-queued jobs, then joins the workers.
  ~ParallelExecutor();

  /// Enqueue a job; returns its submission index. Never blocks on the job.
  std::size_t submit(SimJob job);

  /// Result of submission `index`; blocks until that job has finished and
  /// re-throws its exception if it failed. The reference stays valid for
  /// the executor's lifetime.
  const core::RunResult& result(std::size_t index);

  /// Block until every submitted job has finished (does not re-throw; use
  /// result() to observe failures).
  void wait_all();

  /// Worker thread count.
  int jobs() const noexcept { return static_cast<int>(workers_.size()); }

  // Counters (monotonic; safe to read while jobs are in flight).
  std::uint64_t jobs_submitted() const;
  /// Jobs that actually built and ran an engine.
  std::uint64_t engines_run() const;
  /// Jobs served without running an engine: completed-cache hits plus
  /// in-flight coalescing onto an identical queued/running job.
  std::uint64_t cache_hits() const;
  /// The in-flight-coalesce share of cache_hits().
  std::uint64_t coalesced() const;
  /// Total wall-clock nanoseconds workers spent inside run_sim_job.
  std::uint64_t run_ns_total() const;
  /// Wall-clock nanoseconds job `index` spent in run_sim_job (0 for cache
  /// hits, coalesced jobs, and jobs still in flight). Requires index <
  /// jobs_submitted().
  std::uint64_t run_ns(std::size_t index) const;

  /// Dump executor counters into `metrics` under the exec.* namespace.
  void collect_metrics(trace::MetricsRegistry& metrics) const;

  /// Drop all memoized results (in-flight jobs are unaffected).
  void clear_cache();

 private:
  struct Slot {
    SimJob job;
    std::string key;  // empty: uncacheable
    bool done = false;
    core::RunResult result;
    std::exception_ptr error;
    std::uint64_t run_ns = 0;  // wall time inside run_sim_job
  };

  void worker_loop();
  void finish_slot(Slot& slot, const core::RunResult& result,
                   std::exception_ptr error);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait for queue items
  std::condition_variable done_cv_;   // result()/wait_all() wait here
  // unique_ptr keeps Slot addresses stable across slots_ growth, so
  // result() can hand out references while submissions continue.
  std::vector<std::unique_ptr<Slot>> slots_;
  std::deque<std::size_t> queue_;
  std::unordered_map<std::string, core::RunResult> cache_;
  // key -> submission indices coalesced onto the in-flight primary job.
  std::unordered_map<std::string, std::vector<std::size_t>> inflight_;
  std::vector<std::thread> workers_;
  std::size_t outstanding_ = 0;  // submitted, not yet done
  bool cache_enabled_ = true;
  bool stop_ = false;
  std::uint64_t engines_run_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t run_ns_total_ = 0;
};

}  // namespace hs::exec
