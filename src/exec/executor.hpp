// Parallel sweep executor: run independent simulations concurrently with
// deterministic aggregation and a two-tier (memory + disk) result cache.
//
// Every figure bench and the autotuner sweep configurations by running a
// serial loop of fresh-engine simulations; the simulations are pure
// functions of their SimJob, so they parallelize embarrassingly. The
// executor runs submitted jobs on a fixed pool of worker threads — each
// job's engine is created, run and destroyed entirely on one worker, which
// keeps it pinned to that thread's desim::FramePool (enforced by the
// engine's owner-thread check) — and exposes results by *submission index*,
// so callers aggregate in program order and sweep output (tables, CSVs,
// best-G selection) is byte-identical for any worker count, including 1.
//
// The result cache memoizes completed jobs by SimJob::cache_key(): the
// SUMMA baseline and shared G points re-simulated across fig5/fig6/fig8
// and the autotuner's verification sweep become map lookups. The in-memory
// tier is LRU-bounded by a byte budget (long sweeps no longer grow without
// bound); an optional store::ResultStore adds a durable tier shared across
// processes — a submit that misses memory consults the disk store before
// queueing an engine, and every completed engine run is published back.
// Identical jobs submitted while the first is still queued, running, or
// being looked up on disk are coalesced onto it (in-flight dedupe), so a
// duplicate never runs an engine regardless of timing. Jobs whose network
// model is not describable bypass the cache and simply run.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exec/sim_job.hpp"
#include "store/result_store.hpp"

namespace hs::exec {

/// Worker count used for `jobs <= 0`: one per hardware thread (at least 1).
int default_jobs();

struct ExecutorOptions {
  /// Worker threads; <= 0 selects default_jobs().
  int jobs = 0;
  /// Config-keyed result memoization (and in-flight dedupe).
  bool cache = true;
  /// Byte budget for the in-memory result cache; 0 = unbounded. The
  /// default bounds even million-point sweeps (a cached entry is a few
  /// hundred bytes) while evicting nothing in any workload the repo ships.
  std::uint64_t cache_bytes = 64ull << 20;
  /// Optional durable tier (see store/result_store.hpp). Shared: several
  /// executors — or several processes — may point at one store directory.
  /// Requires `cache`.
  std::shared_ptr<store::ResultStore> store;
};

class ParallelExecutor {
 public:
  explicit ParallelExecutor(ExecutorOptions options = {});
  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;
  /// Drains any still-queued jobs, then joins the workers.
  ~ParallelExecutor();

  /// Enqueue a job; returns its submission index. Never blocks on the job
  /// (a disk-store lookup may perform one small file read).
  std::size_t submit(SimJob job);

  /// Result of submission `index`; blocks until that job has finished and
  /// re-throws its exception if it failed. The reference stays valid for
  /// the executor's lifetime.
  const core::RunResult& result(std::size_t index);

  /// Block until every submitted job has finished (does not re-throw; use
  /// result() to observe failures).
  void wait_all();

  /// Worker thread count.
  int jobs() const noexcept { return static_cast<int>(workers_.size()); }

  /// The durable tier, when one is attached.
  const std::shared_ptr<store::ResultStore>& store() const noexcept {
    return store_;
  }

  // Counters (monotonic; safe to read while jobs are in flight).
  std::uint64_t jobs_submitted() const;
  /// Jobs that actually built and ran an engine.
  std::uint64_t engines_run() const;
  /// Jobs served without running an engine: memory-cache and disk-store
  /// hits plus in-flight coalescing onto an identical queued/running job.
  std::uint64_t cache_hits() const;
  /// Cacheable jobs that found no prior result anywhere and ran an engine.
  std::uint64_t cache_misses() const;
  /// The in-flight-coalesce share of cache_hits().
  std::uint64_t coalesced() const;
  /// The disk-store share of cache_hits().
  std::uint64_t store_hits() const;
  /// Memory-cache entries dropped by the LRU byte budget.
  std::uint64_t cache_evictions() const;
  /// Current in-memory cache footprint estimate.
  std::uint64_t cache_bytes() const;
  /// Total wall-clock nanoseconds workers spent inside run_sim_job.
  std::uint64_t run_ns_total() const;
  /// Wall-clock nanoseconds job `index` spent in run_sim_job (0 for cache
  /// hits, coalesced jobs, and jobs still in flight). Requires index <
  /// jobs_submitted().
  std::uint64_t run_ns(std::size_t index) const;

  /// Dump executor counters into `metrics` under the exec.* namespace
  /// (plus the attached store's store.* counters, when one is set).
  void collect_metrics(trace::MetricsRegistry& metrics) const;

  /// Drop all in-memory memoized results (in-flight jobs and the disk
  /// store are unaffected).
  void clear_cache();

 private:
  struct Slot {
    SimJob job;
    std::string key;  // empty: uncacheable
    bool done = false;
    core::RunResult result;
    std::exception_ptr error;
    std::uint64_t run_ns = 0;  // wall time inside run_sim_job
  };

  struct CacheEntry {
    core::RunResult result;
    std::uint64_t bytes = 0;
    std::list<std::string>::iterator lru;  // position in lru_
  };

  void worker_loop();
  void finish_slot(Slot& slot, const core::RunResult& result,
                   std::exception_ptr error);
  /// Finish the in-flight primary `index` plus every coalesced alias, and
  /// memoize the result. Caller holds mutex_.
  void complete_primary_locked(std::size_t index,
                               const core::RunResult& result,
                               std::exception_ptr error);
  void cache_insert_locked(const std::string& key,
                           const core::RunResult& result);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait for queue items
  std::condition_variable done_cv_;   // result()/wait_all() wait here
  // unique_ptr keeps Slot addresses stable across slots_ growth, so
  // result() can hand out references while submissions continue.
  std::vector<std::unique_ptr<Slot>> slots_;
  std::deque<std::size_t> queue_;
  // In-memory tier: key -> entry, with lru_ ordered most-recent-first.
  std::unordered_map<std::string, CacheEntry> cache_;
  std::list<std::string> lru_;
  // key -> submission indices coalesced onto the in-flight primary job.
  std::unordered_map<std::string, std::vector<std::size_t>> inflight_;
  std::shared_ptr<store::ResultStore> store_;
  std::vector<std::thread> workers_;
  std::size_t outstanding_ = 0;  // submitted, not yet done
  bool cache_enabled_ = true;
  bool stop_ = false;
  std::uint64_t cache_byte_budget_ = 0;  // 0 = unbounded
  std::uint64_t cache_bytes_ = 0;
  std::uint64_t engines_run_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cache_evictions_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t store_hits_ = 0;
  std::uint64_t run_ns_total_ = 0;
};

}  // namespace hs::exec
