// SimJob: the canonical, hashable description of one simulation.
//
// Every sweep in this repo — the fig5-fig10 figure benches, the ablations,
// the group-count autotuner — is a series of *independent* simulations:
// each point builds a fresh engine + machine, runs one configuration, and
// keeps only the aggregate RunResult. SimJob captures exactly the inputs
// that determine such a run (network, machine config, algorithm, grid,
// groups, problem, payload mode, seeds), so that
//
//   * run_sim_job(job) is a pure function: equal jobs produce bit-identical
//     RunResults on any thread, in any order — the property the parallel
//     sweep executor's determinism guarantee rests on; and
//   * cache_key() gives a canonical byte-exact identity for result
//     memoization (doubles rendered as hexfloats; an empty key means "not
//     cacheable", never "equal to another empty key").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "fault/fault_plan.hpp"
#include "net/model.hpp"
#include "net/platform.hpp"
#include "trace/metrics.hpp"

namespace hs::exec {

struct SimJob {
  // --- machine -----------------------------------------------------------
  /// Explicit network model; when null, a HockneyModel is built from
  /// `platform`. Shared across concurrently running jobs, so it must be
  /// safe for concurrent const use (all hs::net models are).
  std::shared_ptr<const net::NetworkModel> network;
  /// Hockney parameters + gamma when `network` is null. `platform.name`
  /// does not participate in the cache key (behavior is fully determined
  /// by alpha/beta).
  net::Platform platform;
  /// Seconds per flop charged by Machine::compute.
  double gamma_flop = 0.0;
  mpc::CollectiveMode collective_mode = mpc::CollectiveMode::ClosedForm;
  /// Machine-level default broadcast algorithm (MachineConfig::bcast_algo).
  net::BcastAlgo machine_bcast_algo = net::BcastAlgo::MpichAuto;

  // --- run ---------------------------------------------------------------
  core::Algorithm algorithm = core::Algorithm::Summa;
  /// Explicit grid; {0, 0} means near_square_shape(ranks).
  grid::GridShape grid{0, 0};
  /// Used only when grid is {0, 0}.
  int ranks = 0;
  int layers = 1;  // Summa25D only
  /// Group count, adapted per kernel by core::adapt_groups: for the
  /// SUMMA/HSUMMA families <= 1 selects the flat algorithm and > 1 the
  /// hierarchical one with group_arrangement(grid, G); for the
  /// factorizations (Lu, Cholesky) G > 1 becomes hierarchical panel
  /// broadcast level factors. One job description covers a whole G-sweep.
  int groups = 1;
  /// Multi-level group hierarchy, adapted by core::adapt_hierarchy. Flat
  /// (the default) defers to the scalar `groups`; a non-flat chain requires
  /// groups <= 1 (one spine per job, no ambiguity). Depth <= 1 chains are
  /// cache-key-identical to the equivalent scalar job; depth >= 2 chains
  /// append a `;h=` component.
  core::GroupHierarchy hierarchy;
  std::vector<int> row_levels;  // HsummaMultilevel, Lu, Cholesky
  std::vector<int> col_levels;
  core::ProblemSpec problem;
  core::PayloadMode mode = core::PayloadMode::Phantom;
  std::optional<net::BcastAlgo> bcast_algo;  // run-level override
  bool overlap = false;
  /// Task-plan look-ahead depth; -1 derives it from `overlap` (see
  /// core::RunOptions::lookahead). Participates in cache_key.
  int lookahead = -1;
  bool verify = false;
  std::uint64_t seed = 2013;  // input generator seed (Real mode)

  // --- heterogeneity ------------------------------------------------------
  /// Per-rank compute speed multipliers (MachineConfig::rank_gamma): empty
  /// means homogeneous; otherwise one entry per rank, flop charges on rank
  /// r are scaled by rank_gamma[r]. Participates in cache_key (`;rg=`).
  std::vector<double> rank_gamma;

  // --- per-transfer noise (run_repeated statistics) ----------------------
  /// sigma > 0 wraps the network in a deterministic net::NoisyModel seeded
  /// with `noise_seed` and forces CollectiveMode::PointToPoint (noisy
  /// networks are not homogeneous Hockney). One repetition = one job; a
  /// repeated measurement submits `repetitions` jobs with noise_seed
  /// seed + rep, which parallelizes the repetitions too.
  double noise_sigma = 0.0;
  std::uint64_t noise_seed = 0;

  // --- scripted faults ----------------------------------------------------
  /// Non-empty fault plans run the job under a fresh fault::FaultInjector
  /// and force CollectiveMode::PointToPoint (faulty networks are not
  /// homogeneous Hockney, same reason as noise). The plan participates in
  /// cache_key via its canonical string, so distinct plans never collide
  /// in the sweep cache. Null or empty plans perturb nothing: results are
  /// byte-identical to a faultless run. Shared across concurrently running
  /// jobs (plans are immutable; each job builds its own injector).
  std::shared_ptr<const fault::FaultPlan> faults;

  // --- observability sinks (both optional; must outlive the run) ---------
  /// Structured event recorder attached for the run (see
  /// trace/recorder.hpp). One recorder per job: sinks are filled by the
  /// thread running the job, so sharing one across concurrently submitted
  /// jobs would race.
  trace::Recorder* recorder = nullptr;
  /// Rank-sampling spec for the recorder (trace::TraceSample syntax;
  /// see core::RunOptions::trace_sample). Ignored without a recorder.
  std::string trace_sample;
  /// Harvests machine + engine counters after the run (see
  /// trace/metrics.hpp), plus the runner's per-rank histograms. Same
  /// ownership rule as `recorder`.
  trace::MetricsRegistry* metrics = nullptr;

  /// The hierarchy this job actually runs: the explicit chain when one is
  /// set, else the legacy scalar group count lifted via from_scalar.
  core::GroupHierarchy effective_hierarchy() const {
    return hierarchy.is_flat() ? core::GroupHierarchy::from_scalar(groups)
                               : hierarchy;
  }

  /// Canonical identity for result caching: two jobs with equal non-empty
  /// keys run bit-identical simulations. Empty when the job is not
  /// cacheable (an explicit network whose describe() is empty, or a job
  /// with observability sinks attached — a cache hit would skip filling
  /// them).
  std::string cache_key() const;
};

/// Run one job on a fresh engine + machine and return its result. The
/// engine is created, run and destroyed on the calling thread (engines are
/// thread-pinned; see desim::Engine::run).
core::RunResult run_sim_job(const SimJob& job);

}  // namespace hs::exec
