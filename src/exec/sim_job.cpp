#include "exec/sim_job.hpp"

#include <optional>
#include <sstream>

#include "core/kernel_registry.hpp"
#include "fault/injector.hpp"

namespace hs::exec {

namespace {

grid::GridShape resolve_grid(const SimJob& job) {
  if (job.grid.rows > 0 && job.grid.cols > 0) return job.grid;
  HS_REQUIRE_MSG(job.ranks >= 1, "SimJob needs either a grid or a rank count");
  return grid::near_square_shape(job.ranks);
}

}  // namespace

std::string SimJob::cache_key() const {
  // Jobs with observability sinks must actually run: a cache or coalesce
  // hit would return the RunResult without ever filling the sinks.
  if (recorder != nullptr || metrics != nullptr) return {};
  std::string net_part;
  if (network != nullptr) {
    net_part = network->describe();
    if (net_part.empty()) return {};  // indescribable network: uncacheable
  } else {
    // Identical to HockneyModel::describe() of platform.make_network().
    net_part = "hockney(" + net::describe_double(platform.alpha) + "," +
               net::describe_double(platform.beta) + ")";
  }
  const grid::GridShape shape = grid.rows > 0 && grid.cols > 0
                                    ? grid
                                    : grid::near_square_shape(ranks);
  std::ostringstream key;
  key << "net=" << net_part << ";gamma=" << net::describe_double(gamma_flop)
      << ";cm=" << static_cast<int>(collective_mode)
      << ";mba=" << static_cast<int>(machine_bcast_algo)
      << ";alg=" << static_cast<int>(algorithm) << ";grid=" << shape.rows
      << "x" << shape.cols << ";layers=" << layers << ";groups=" << groups
      << ";rl=";
  for (int level : row_levels) key << level << ",";
  key << ";cl=";
  for (int level : col_levels) key << level << ",";
  key << ";prob=" << problem.m << "," << problem.k << "," << problem.n << ","
      << problem.block << "," << problem.outer_block
      << ";mode=" << static_cast<int>(mode)
      << ";bcast=" << (bcast_algo ? static_cast<int>(*bcast_algo) : -1)
      << ";ovl=" << overlap << ";la=" << lookahead << ";verify=" << verify
      << ";seed=" << seed
      << ";ns=" << net::describe_double(noise_sigma)
      << ";nseed=" << noise_seed;
  if (faults != nullptr && !faults->empty())
    key << ";fault=" << faults->canonical();
  return key.str();
}

core::RunResult run_sim_job(const SimJob& job) {
  const grid::GridShape shape = resolve_grid(job);
  HS_REQUIRE(shape.size() >= 1);
  HS_REQUIRE(job.layers >= 1);

  std::shared_ptr<const net::NetworkModel> network =
      job.network != nullptr ? job.network : job.platform.make_network();
  mpc::CollectiveMode collective_mode = job.collective_mode;
  if (job.noise_sigma > 0.0) {
    network = std::make_shared<net::NoisyModel>(std::move(network),
                                                job.noise_sigma,
                                                job.noise_seed);
    collective_mode = mpc::CollectiveMode::PointToPoint;
  }
  const bool faulty = job.faults != nullptr && !job.faults->empty();
  if (faulty) collective_mode = mpc::CollectiveMode::PointToPoint;

  desim::Engine engine;
  mpc::Machine machine(engine, std::move(network),
                       {.ranks = shape.size() * job.layers,
                        .collective_mode = collective_mode,
                        .bcast_algo = job.machine_bcast_algo,
                        .gamma_flop = job.gamma_flop});

  core::RunOptions options;
  options.grid = shape;
  options.problem = job.problem;
  options.mode = job.mode;
  options.bcast_algo = job.bcast_algo;
  options.layers = job.layers;
  options.algorithm = job.algorithm;
  options.overlap = job.overlap;
  options.lookahead = job.lookahead;
  options.verify = job.verify;
  options.seed = job.seed;
  options.row_levels = job.row_levels;
  options.col_levels = job.col_levels;

  // The registry's group-adaptation policy: the SUMMA families pick flat
  // vs hierarchical from the group count (G = 1 is exactly SUMMA, as the
  // paper notes) and the factorizations map G onto hierarchical panel
  // broadcast level factors, so one job description covers a whole G-sweep.
  core::adapt_groups(job.groups, options);
  options.recorder = job.recorder;
  // One injector per job, living exactly as long as the run: determinism
  // needs fresh per-link drop ordinals for every simulation.
  std::optional<fault::FaultInjector> injector;
  if (faulty) {
    injector.emplace(*job.faults);
    if (job.recorder != nullptr) {
      injector->set_recorder(job.recorder);
      injector->emit_plan_spans(*job.recorder);
    }
    options.fault_injector = &*injector;
  }
  core::RunResult result = core::run(machine, options);
  if (job.metrics != nullptr) {
    machine.collect_metrics(*job.metrics);
    // core::run detaches the injector before returning, so its counters
    // must be harvested here, not through the machine.
    if (injector.has_value()) injector->collect_metrics(*job.metrics);
    trace::collect_engine_metrics(engine, *job.metrics);
  }
  return result;
}

}  // namespace hs::exec
