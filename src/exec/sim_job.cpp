#include "exec/sim_job.hpp"

#include <optional>
#include <sstream>

#include "core/kernel_registry.hpp"
#include "fault/injector.hpp"

namespace hs::exec {

namespace {

grid::GridShape resolve_grid(const SimJob& job) {
  if (job.grid.rows > 0 && job.grid.cols > 0) return job.grid;
  HS_REQUIRE_MSG(job.ranks >= 1, "SimJob needs either a grid or a rank count");
  return grid::near_square_shape(job.ranks);
}

}  // namespace

std::string SimJob::cache_key() const {
  // Jobs with observability sinks must actually run: a cache or coalesce
  // hit would return the RunResult without ever filling the sinks.
  if (recorder != nullptr || metrics != nullptr) return {};
  std::string net_part;
  if (network != nullptr) {
    net_part = network->describe();
    if (net_part.empty()) return {};  // indescribable network: uncacheable
  } else {
    // Identical to HockneyModel::describe() of platform.make_network().
    net_part = "hockney(" + net::describe_double(platform.alpha) + "," +
               net::describe_double(platform.beta) + ")";
  }
  const grid::GridShape shape = grid.rows > 0 && grid.cols > 0
                                    ? grid
                                    : grid::near_square_shape(ranks);
  // Depth <= 1 hierarchies collapse onto the legacy scalar `;groups=` field
  // byte-for-byte (a depth-1 chain {G} and the scalar job G run the same
  // simulation, so they must share a cache entry — and every pre-hierarchy
  // key stays valid). Only real chains append the `;h=` component below.
  int groups_key = groups;
  if (!hierarchy.is_flat())
    groups_key = hierarchy.is_scalar() ? hierarchy.scalar() : 1;
  std::ostringstream key;
  key << "net=" << net_part << ";gamma=" << net::describe_double(gamma_flop)
      << ";cm=" << static_cast<int>(collective_mode)
      << ";mba=" << static_cast<int>(machine_bcast_algo)
      << ";alg=" << static_cast<int>(algorithm) << ";grid=" << shape.rows
      << "x" << shape.cols << ";layers=" << layers << ";groups=" << groups_key
      << ";rl=";
  for (int level : row_levels) key << level << ",";
  key << ";cl=";
  for (int level : col_levels) key << level << ",";
  key << ";prob=" << problem.m << "," << problem.k << "," << problem.n << ","
      << problem.block << "," << problem.outer_block
      << ";mode=" << static_cast<int>(mode)
      << ";bcast=" << (bcast_algo ? static_cast<int>(*bcast_algo) : -1)
      << ";ovl=" << overlap << ";la=" << lookahead << ";verify=" << verify
      << ";seed=" << seed
      << ";ns=" << net::describe_double(noise_sigma)
      << ";nseed=" << noise_seed;
  if (hierarchy.depth() >= 2) key << ";h=" << hierarchy.to_string();
  if (!rank_gamma.empty()) {
    key << ";rg=";
    for (double g : rank_gamma) key << net::describe_double(g) << ",";
  }
  if (faults != nullptr && !faults->empty())
    key << ";fault=" << faults->canonical();
  return key.str();
}

core::RunResult run_sim_job(const SimJob& job) {
  const grid::GridShape shape = resolve_grid(job);
  HS_REQUIRE(shape.size() >= 1);
  HS_REQUIRE(job.layers >= 1);

  std::shared_ptr<const net::NetworkModel> network =
      job.network != nullptr ? job.network : job.platform.make_network();
  mpc::CollectiveMode collective_mode = job.collective_mode;
  if (job.noise_sigma > 0.0) {
    network = std::make_shared<net::NoisyModel>(std::move(network),
                                                job.noise_sigma,
                                                job.noise_seed);
    collective_mode = mpc::CollectiveMode::PointToPoint;
  }
  const bool faulty = job.faults != nullptr && !job.faults->empty();
  if (faulty) collective_mode = mpc::CollectiveMode::PointToPoint;

  desim::Engine engine;
  mpc::Machine machine(engine, std::move(network),
                       {.ranks = shape.size() * job.layers,
                        .collective_mode = collective_mode,
                        .bcast_algo = job.machine_bcast_algo,
                        .gamma_flop = job.gamma_flop,
                        .rank_gamma = job.rank_gamma});

  core::RunOptions options;
  options.grid = shape;
  options.problem = job.problem;
  options.mode = job.mode;
  options.bcast_algo = job.bcast_algo;
  options.layers = job.layers;
  options.algorithm = job.algorithm;
  options.overlap = job.overlap;
  options.lookahead = job.lookahead;
  options.verify = job.verify;
  options.seed = job.seed;
  options.row_levels = job.row_levels;
  options.col_levels = job.col_levels;

  // The registry's hierarchy-adaptation policy: the SUMMA families pick
  // flat vs hierarchical vs multi-level from the chain (G = 1 is exactly
  // SUMMA, as the paper notes; depth >= 2 recurses into the multilevel
  // kernel) and the factorizations map the chain onto hierarchical panel
  // broadcast level factors, so one job description covers a whole sweep.
  HS_REQUIRE_MSG(job.hierarchy.is_flat() || job.groups <= 1,
                 "SimJob got both a scalar group count ("
                     << job.groups << ") and a hierarchy ("
                     << job.hierarchy.to_string() << "); set only one");
  core::adapt_hierarchy(job.effective_hierarchy(), options);
  options.recorder = job.recorder;
  options.trace_sample = job.trace_sample;
  options.metrics = job.metrics;
  // One injector per job, living exactly as long as the run: determinism
  // needs fresh per-link drop ordinals for every simulation.
  std::optional<fault::FaultInjector> injector;
  if (faulty) {
    injector.emplace(*job.faults);
    if (job.recorder != nullptr) {
      injector->set_recorder(job.recorder);
      injector->emit_plan_spans(*job.recorder);
    }
    options.fault_injector = &*injector;
  }
  core::RunResult result = core::run(machine, options);
  if (job.metrics != nullptr) {
    machine.collect_metrics(*job.metrics);
    // core::run detaches the injector before returning, so its counters
    // must be harvested here, not through the machine.
    if (injector.has_value()) injector->collect_metrics(*job.metrics);
    trace::collect_engine_metrics(engine, *job.metrics);
  }
  return result;
}

}  // namespace hs::exec
