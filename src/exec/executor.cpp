#include "exec/executor.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "common/check.hpp"

namespace hs::exec {

namespace {

/// Footprint estimate of one memoized entry: the key (stored twice — map
/// node and LRU list node), the fixed-size result, its per-level vector,
/// and a constant for node/bucket overhead.
std::uint64_t cache_entry_bytes(const std::string& key,
                                const core::RunResult& result) {
  return 2 * key.size() + sizeof(core::RunResult) +
         result.timing.max_level_comm_time.capacity() * sizeof(double) + 128;
}

}  // namespace

int default_jobs() {
  const unsigned hint = std::thread::hardware_concurrency();
  return hint == 0 ? 1 : static_cast<int>(hint);
}

ParallelExecutor::ParallelExecutor(ExecutorOptions options)
    : store_(std::move(options.store)) {
  const int jobs = options.jobs > 0 ? options.jobs : default_jobs();
  if (!options.cache) {
    cache_enabled_ = false;
    store_.reset();  // the durable tier rides on the cache keys
  }
  cache_byte_budget_ = options.cache_bytes;
  workers_.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ParallelExecutor::submit(SimJob job) {
  // The key is a pure function of the job; build it before locking.
  std::string key = cache_enabled_ ? job.cache_key() : std::string{};
  std::size_t index;
  bool consult_store = false;
  {
    std::lock_guard lock(mutex_);
    index = slots_.size();
    auto slot = std::make_unique<Slot>();
    slot->job = std::move(job);
    slot->key = key;

    if (!slot->key.empty()) {
      if (auto hit = cache_.find(slot->key); hit != cache_.end()) {
        // Memory hit: the slot is born done, no engine runs. Touch the
        // entry's LRU position.
        lru_.splice(lru_.begin(), lru_, hit->second.lru);
        slot->done = true;
        slot->result = hit->second.result;
        ++cache_hits_;
        slots_.push_back(std::move(slot));
        done_cv_.notify_all();
        return index;
      }
      if (auto running = inflight_.find(slot->key);
          running != inflight_.end()) {
        // An identical job is queued, running, or mid-store-lookup:
        // coalesce onto it. The slot is filled when the primary completes.
        running->second.push_back(index);
        ++cache_hits_;
        ++coalesced_;
        ++outstanding_;
        slots_.push_back(std::move(slot));
        return index;
      }
      // This submission is the in-flight primary for its key from here on:
      // concurrent identical submits coalesce onto it even while the disk
      // lookup below is still in progress.
      inflight_.emplace(slot->key, std::vector<std::size_t>{});
      if (store_ != nullptr) {
        slots_.push_back(std::move(slot));
        ++outstanding_;
        consult_store = true;
      } else {
        ++cache_misses_;
        slots_.push_back(std::move(slot));
        queue_.push_back(index);
        ++outstanding_;
      }
    } else {
      slots_.push_back(std::move(slot));
      queue_.push_back(index);
      ++outstanding_;
    }
  }
  if (!consult_store) {
    work_cv_.notify_one();
    return index;
  }

  // Durable-tier consult, outside the executor lock — one small file read
  // must never serialize the worker pool. `key` is the local copy: slots_
  // may reallocate while we are unlocked.
  std::optional<core::RunResult> hit = store_->load(key);
  {
    std::lock_guard lock(mutex_);
    if (hit.has_value()) {
      ++cache_hits_;
      ++store_hits_;
      complete_primary_locked(index, *hit, nullptr);
    } else {
      ++cache_misses_;
      queue_.push_back(index);
    }
  }
  if (hit.has_value())
    done_cv_.notify_all();
  else
    work_cv_.notify_one();
  return index;
}

void ParallelExecutor::worker_loop() {
  for (;;) {
    std::size_t index;
    SimJob job;
    std::string key;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: every submitted job completes.
      if (queue_.empty()) return;
      index = queue_.front();
      queue_.pop_front();
      job = slots_[index]->job;  // copies: run outside the lock
      key = slots_[index]->key;
    }

    core::RunResult result{};
    std::exception_ptr error;
    const auto run_start = std::chrono::steady_clock::now();
    try {
      result = run_sim_job(job);
    } catch (...) {
      error = std::current_exception();
    }
    const auto run_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - run_start)
            .count());

    // Publish to the durable tier BEFORE marking the slot done: once any
    // waiter (result()/wait_all(), and therefore a fresh executor on the
    // same store root) can observe the result, it is already on disk. The
    // store locks itself; a concurrent identical submit coalesces onto
    // this still-in-flight primary, so nobody re-runs during the write.
    if (!error && store_ != nullptr && !key.empty()) store_->save(key, result);

    {
      std::lock_guard lock(mutex_);
      ++engines_run_;
      run_ns_total_ += run_ns;
      slots_[index]->run_ns = run_ns;
      complete_primary_locked(index, result, error);
    }
    done_cv_.notify_all();
  }
}

void ParallelExecutor::complete_primary_locked(std::size_t index,
                                               const core::RunResult& result,
                                               std::exception_ptr error) {
  Slot& primary = *slots_[index];
  finish_slot(primary, result, error);
  if (primary.key.empty()) return;
  // Fill every coalesced duplicate; errors propagate to them too but are
  // never cached (a resubmission after failure runs again).
  if (auto running = inflight_.find(primary.key); running != inflight_.end()) {
    for (std::size_t alias : running->second)
      finish_slot(*slots_[alias], result, error);
    inflight_.erase(running);
  }
  if (!error) cache_insert_locked(primary.key, result);
}

void ParallelExecutor::cache_insert_locked(const std::string& key,
                                           const core::RunResult& result) {
  if (cache_.find(key) != cache_.end()) return;
  lru_.push_front(key);
  CacheEntry entry{result, cache_entry_bytes(key, result), lru_.begin()};
  cache_bytes_ += entry.bytes;
  cache_.emplace(key, std::move(entry));
  if (cache_byte_budget_ == 0) return;
  while (cache_bytes_ > cache_byte_budget_ && cache_.size() > 1) {
    // Evict least-recently-used, but never the entry just inserted (the
    // cache must always be able to hold the current result).
    const std::string& victim_key = lru_.back();
    if (victim_key == key) break;
    const auto victim = cache_.find(victim_key);
    HS_ASSERT(victim != cache_.end());
    cache_bytes_ -= std::min(cache_bytes_, victim->second.bytes);
    cache_.erase(victim);
    lru_.pop_back();
    ++cache_evictions_;
  }
}

void ParallelExecutor::finish_slot(Slot& slot, const core::RunResult& result,
                                   std::exception_ptr error) {
  slot.result = result;
  slot.error = error;
  slot.done = true;
  HS_ASSERT(outstanding_ > 0);
  --outstanding_;
}

const core::RunResult& ParallelExecutor::result(std::size_t index) {
  std::unique_lock lock(mutex_);
  HS_REQUIRE_MSG(index < slots_.size(),
                 "result(" << index << ") out of range; " << slots_.size()
                           << " jobs submitted");
  Slot& slot = *slots_[index];
  done_cv_.wait(lock, [&slot] { return slot.done; });
  if (slot.error) std::rethrow_exception(slot.error);
  return slot.result;
}

void ParallelExecutor::wait_all() {
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

std::uint64_t ParallelExecutor::jobs_submitted() const {
  std::lock_guard lock(mutex_);
  return static_cast<std::uint64_t>(slots_.size());
}

std::uint64_t ParallelExecutor::engines_run() const {
  std::lock_guard lock(mutex_);
  return engines_run_;
}

std::uint64_t ParallelExecutor::cache_hits() const {
  std::lock_guard lock(mutex_);
  return cache_hits_;
}

std::uint64_t ParallelExecutor::cache_misses() const {
  std::lock_guard lock(mutex_);
  return cache_misses_;
}

std::uint64_t ParallelExecutor::coalesced() const {
  std::lock_guard lock(mutex_);
  return coalesced_;
}

std::uint64_t ParallelExecutor::store_hits() const {
  std::lock_guard lock(mutex_);
  return store_hits_;
}

std::uint64_t ParallelExecutor::cache_evictions() const {
  std::lock_guard lock(mutex_);
  return cache_evictions_;
}

std::uint64_t ParallelExecutor::cache_bytes() const {
  std::lock_guard lock(mutex_);
  return cache_bytes_;
}

std::uint64_t ParallelExecutor::run_ns_total() const {
  std::lock_guard lock(mutex_);
  return run_ns_total_;
}

std::uint64_t ParallelExecutor::run_ns(std::size_t index) const {
  std::lock_guard lock(mutex_);
  HS_REQUIRE_MSG(index < slots_.size(),
                 "run_ns(" << index << ") out of range; " << slots_.size()
                           << " jobs submitted");
  return slots_[index]->run_ns;
}

void ParallelExecutor::collect_metrics(trace::MetricsRegistry& metrics) const {
  {
    std::lock_guard lock(mutex_);
    metrics.add_counter("exec.jobs_submitted",
                        static_cast<std::uint64_t>(slots_.size()));
    metrics.add_counter("exec.engines_run", engines_run_);
    metrics.add_counter("exec.cache_hits", cache_hits_);
    metrics.add_counter("exec.cache_misses", cache_misses_);
    metrics.add_counter("exec.cache_evictions", cache_evictions_);
    metrics.add_counter("exec.inflight_coalesced", coalesced_);
    metrics.add_counter("exec.store_hits", store_hits_);
    metrics.add_counter("exec.run_ns_total", run_ns_total_);
    std::uint64_t run_ns_max = 0;
    for (const auto& slot : slots_)
      run_ns_max = std::max(run_ns_max, slot->run_ns);
    metrics.add_counter("exec.run_ns_max", run_ns_max);
    metrics.set_gauge("exec.workers", static_cast<double>(workers_.size()));
    metrics.set_gauge("exec.cache_bytes", static_cast<double>(cache_bytes_));
  }
  if (store_ != nullptr) store_->collect_metrics(metrics);
}

void ParallelExecutor::clear_cache() {
  std::lock_guard lock(mutex_);
  cache_.clear();
  lru_.clear();
  cache_bytes_ = 0;
}

}  // namespace hs::exec
