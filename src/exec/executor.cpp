#include "exec/executor.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.hpp"

namespace hs::exec {

int default_jobs() {
  const unsigned hint = std::thread::hardware_concurrency();
  return hint == 0 ? 1 : static_cast<int>(hint);
}

ParallelExecutor::ParallelExecutor(ExecutorOptions options) {
  const int jobs = options.jobs > 0 ? options.jobs : default_jobs();
  if (!options.cache) cache_enabled_ = false;
  workers_.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ParallelExecutor::submit(SimJob job) {
  std::lock_guard lock(mutex_);
  const std::size_t index = slots_.size();
  auto slot = std::make_unique<Slot>();
  slot->job = std::move(job);
  if (cache_enabled_) slot->key = slot->job.cache_key();

  if (!slot->key.empty()) {
    if (auto hit = cache_.find(slot->key); hit != cache_.end()) {
      // Completed-cache hit: the slot is born done, no engine runs.
      slot->done = true;
      slot->result = hit->second;
      ++cache_hits_;
      slots_.push_back(std::move(slot));
      done_cv_.notify_all();
      return index;
    }
    if (auto running = inflight_.find(slot->key); running != inflight_.end()) {
      // An identical job is queued or running: coalesce onto it. The slot
      // is filled by finish_slot when the primary completes.
      running->second.push_back(index);
      ++cache_hits_;
      ++coalesced_;
      ++outstanding_;
      slots_.push_back(std::move(slot));
      return index;
    }
    inflight_.emplace(slot->key, std::vector<std::size_t>{});
  }
  slots_.push_back(std::move(slot));
  queue_.push_back(index);
  ++outstanding_;
  work_cv_.notify_one();
  return index;
}

void ParallelExecutor::worker_loop() {
  for (;;) {
    std::size_t index;
    SimJob job;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: every submitted job completes.
      if (queue_.empty()) return;
      index = queue_.front();
      queue_.pop_front();
      job = slots_[index]->job;  // copy: run outside the lock
    }

    core::RunResult result{};
    std::exception_ptr error;
    const auto run_start = std::chrono::steady_clock::now();
    try {
      result = run_sim_job(job);
    } catch (...) {
      error = std::current_exception();
    }
    const auto run_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - run_start)
            .count());

    {
      std::lock_guard lock(mutex_);
      ++engines_run_;
      run_ns_total_ += run_ns;
      slots_[index]->run_ns = run_ns;
      Slot& primary = *slots_[index];
      finish_slot(primary, result, error);
      if (!primary.key.empty()) {
        // Fill every coalesced duplicate; errors propagate to them too but
        // are never cached (a resubmission after failure runs again).
        if (auto running = inflight_.find(primary.key);
            running != inflight_.end()) {
          for (std::size_t alias : running->second)
            finish_slot(*slots_[alias], result, error);
          inflight_.erase(running);
        }
        if (!error) cache_.emplace(primary.key, result);
      }
    }
    done_cv_.notify_all();
  }
}

void ParallelExecutor::finish_slot(Slot& slot, const core::RunResult& result,
                                   std::exception_ptr error) {
  slot.result = result;
  slot.error = error;
  slot.done = true;
  HS_ASSERT(outstanding_ > 0);
  --outstanding_;
}

const core::RunResult& ParallelExecutor::result(std::size_t index) {
  std::unique_lock lock(mutex_);
  HS_REQUIRE_MSG(index < slots_.size(),
                 "result(" << index << ") out of range; " << slots_.size()
                           << " jobs submitted");
  Slot& slot = *slots_[index];
  done_cv_.wait(lock, [&slot] { return slot.done; });
  if (slot.error) std::rethrow_exception(slot.error);
  return slot.result;
}

void ParallelExecutor::wait_all() {
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

std::uint64_t ParallelExecutor::jobs_submitted() const {
  std::lock_guard lock(mutex_);
  return static_cast<std::uint64_t>(slots_.size());
}

std::uint64_t ParallelExecutor::engines_run() const {
  std::lock_guard lock(mutex_);
  return engines_run_;
}

std::uint64_t ParallelExecutor::cache_hits() const {
  std::lock_guard lock(mutex_);
  return cache_hits_;
}

std::uint64_t ParallelExecutor::coalesced() const {
  std::lock_guard lock(mutex_);
  return coalesced_;
}

std::uint64_t ParallelExecutor::run_ns_total() const {
  std::lock_guard lock(mutex_);
  return run_ns_total_;
}

std::uint64_t ParallelExecutor::run_ns(std::size_t index) const {
  std::lock_guard lock(mutex_);
  HS_REQUIRE_MSG(index < slots_.size(),
                 "run_ns(" << index << ") out of range; " << slots_.size()
                           << " jobs submitted");
  return slots_[index]->run_ns;
}

void ParallelExecutor::collect_metrics(trace::MetricsRegistry& metrics) const {
  std::lock_guard lock(mutex_);
  metrics.add_counter("exec.jobs_submitted",
                      static_cast<std::uint64_t>(slots_.size()));
  metrics.add_counter("exec.engines_run", engines_run_);
  metrics.add_counter("exec.cache_hits", cache_hits_);
  metrics.add_counter("exec.inflight_coalesced", coalesced_);
  metrics.add_counter("exec.run_ns_total", run_ns_total_);
  std::uint64_t run_ns_max = 0;
  for (const auto& slot : slots_)
    run_ns_max = std::max(run_ns_max, slot->run_ns);
  metrics.add_counter("exec.run_ns_max", run_ns_max);
  metrics.set_gauge("exec.workers", static_cast<double>(workers_.size()));
}

void ParallelExecutor::clear_cache() {
  std::lock_guard lock(mutex_);
  cache_.clear();
}

}  // namespace hs::exec
